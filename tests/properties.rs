//! Cross-crate property-based tests (proptest) on the model's invariants.

use proptest::prelude::*;

use eve::esql::{parse_view, AttrEvolution, CondEvolution, RelEvolution, ViewDef, ViewExtent};
use eve::misd::{
    AttributeInfo, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve::qc::cost::{cf_io, cf_messages, cf_transfer};
use eve::qc::rank::normalize_costs;
use eve::qc::{rank_rewritings, IoBound, MaintenancePlan, QcParams, WorkloadModel};
use eve::relational::{tup, ColumnRef, CompOp, DataType, PrimitiveClause, Relation, Value};
use eve::sync::{synchronize, EvolutionOp, SyncOptions};
use eve::system::{DataUpdate, EveEngine};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,6}".prop_map(|s| s)
}

fn attr_evolution() -> impl Strategy<Value = AttrEvolution> {
    (any::<bool>(), any::<bool>()).prop_map(|(d, r)| AttrEvolution {
        dispensable: d,
        replaceable: r,
    })
}

fn view_extent() -> impl Strategy<Value = ViewExtent> {
    prop_oneof![
        Just(ViewExtent::Approximate),
        Just(ViewExtent::Equal),
        Just(ViewExtent::Superset),
        Just(ViewExtent::Subset),
    ]
}

/// A random single-relation view over R(A0..A5) with random evolution
/// parameters and conditions.
fn arbitrary_view() -> impl Strategy<Value = ViewDef> {
    (
        ident(),
        view_extent(),
        prop::collection::vec((0usize..6, attr_evolution()), 1..5),
        prop::collection::vec((0usize..6, 0i64..100, any::<bool>(), any::<bool>()), 0..3),
    )
        .prop_map(|(name, ve, attrs, conds)| {
            let mut seen = std::collections::BTreeSet::new();
            let select: Vec<eve::esql::SelectItem> = attrs
                .into_iter()
                .filter(|(i, _)| seen.insert(*i))
                .map(|(i, ev)| eve::esql::SelectItem {
                    attr: ColumnRef::qualified("R", format!("A{i}")),
                    alias: None,
                    evolution: ev,
                })
                .collect();
            let conditions = conds
                .into_iter()
                .map(|(i, v, cd, cr)| eve::esql::ConditionItem {
                    clause: PrimitiveClause::lit(
                        ColumnRef::qualified("R", format!("A{i}")),
                        CompOp::Gt,
                        Value::Int(v),
                    ),
                    evolution: CondEvolution {
                        dispensable: cd,
                        replaceable: cr,
                    },
                })
                .collect();
            ViewDef {
                name,
                column_names: None,
                ve,
                select,
                from: vec![eve::esql::FromItem {
                    relation: "R".into(),
                    alias: None,
                    evolution: RelEvolution {
                        dispensable: false,
                        replaceable: true,
                    },
                }],
                conditions,
            }
        })
}

/// An MKB with R(A0..A5) plus `replicas` PC partners covering all attrs.
fn mkb_with_replicas(replicas: usize) -> Mkb {
    let mut mkb = Mkb::new();
    mkb.register_site(SiteId(1), "one").unwrap();
    let attrs = || {
        (0..6)
            .map(|i| AttributeInfo::new(format!("A{i}"), DataType::Int))
            .collect::<Vec<_>>()
    };
    mkb.register_relation(RelationInfo::new("R", SiteId(1), attrs(), 400))
        .unwrap();
    let names: Vec<String> = (0..6).map(|i| format!("A{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    for r in 0..replicas {
        let site = SiteId(u32::try_from(r).unwrap() + 2);
        mkb.register_site(site, format!("rep{r}")).unwrap();
        let rel_name = format!("Rep{r}");
        mkb.register_relation(RelationInfo::new(
            &rel_name,
            site,
            attrs(),
            400 + 100 * (r as u64),
        ))
        .unwrap();
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &name_refs),
            PcRelationship::Equivalent,
            PcSide::projection(&rel_name, &name_refs),
        ))
        .unwrap();
    }
    mkb
}

// ---------------------------------------------------------------------
// Differential harness: batched pipeline vs the legacy op-by-op paths.
// ---------------------------------------------------------------------

/// The canonical multi-site space, shared with the bench harness so the
/// differential suite and the speedup comparison exercise one workload
/// shape: per site, `R{i}_a ⋈ R{i}_b` under view `V{i}`, a selection view
/// `W{i}` over the colocated equivalent replica `R{i}_c ≡ R{i}_b`.
fn multi_site_engine(sites: u32) -> EveEngine {
    eve_bench::experiments::batch_pipeline::build_space(sites).unwrap()
}

/// Translates `(site, kind, k)` specs into a valid-by-construction op
/// sequence: data ops only ever target live relations, `R{i}_b` is dropped
/// at most once per site, and renames of `R{i}_a` thread the current name.
fn realize_ops(sites: u32, specs: &[(u32, u8, i64)]) -> Vec<EvolutionOp> {
    let mut dropped_b = vec![false; sites as usize + 1];
    let mut a_name: Vec<String> = (0..=sites).map(|i| format!("R{i}_a")).collect();
    let mut ops = Vec::new();
    for &(site, kind, k) in specs {
        let i = (site % sites + 1) as usize;
        match kind % 8 {
            0..=2 => ops.push(EvolutionOp::insert(a_name[i].clone(), vec![tup![k, k % 5]])),
            3 => ops.push(EvolutionOp::delete(
                a_name[i].clone(),
                vec![tup![k % 20, (k % 20) % 5]],
            )),
            4 | 5 => {
                let target = if dropped_b[i] {
                    format!("R{i}_c")
                } else {
                    format!("R{i}_b")
                };
                ops.push(EvolutionOp::insert(target, vec![tup![k, k % 5]]));
            }
            6 => {
                if !dropped_b[i] {
                    dropped_b[i] = true;
                    ops.push(EvolutionOp::change(SchemaChange::DeleteRelation {
                        relation: format!("R{i}_b"),
                    }));
                } else {
                    ops.push(EvolutionOp::insert(format!("R{i}_c"), vec![tup![k, k % 5]]));
                }
            }
            _ => {
                let from = a_name[i].clone();
                let to = format!("{from}x");
                a_name[i] = to.clone();
                ops.push(EvolutionOp::change(SchemaChange::RenameRelation {
                    from,
                    to,
                }));
            }
        }
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -------------------------------------------------------------------
    // Differential: `apply_batch(ops)` is observationally identical to the
    // legacy op-by-op paths — byte-identical view extents, identical
    // survival verdicts and identical total I/O + message accounting.
    // -------------------------------------------------------------------
    #[test]
    fn apply_batch_equals_sequential_application(
        sites in 2u32..4,
        specs in prop::collection::vec((0u32..8, 0u8..8, 0i64..60), 1..16),
    ) {
        let base = multi_site_engine(sites);
        let ops = realize_ops(sites, &specs);

        let mut batched = base.clone();
        batched.reset_io();
        let outcome = batched.apply_batch(ops.clone()).unwrap();

        let mut sequential = base;
        sequential.reset_io();
        let mut sequential_reports = Vec::new();
        for op in ops {
            match op {
                EvolutionOp::Data { relation, inserts, deletes } => {
                    sequential
                        .notify_data_update(&DataUpdate { relation, inserts, deletes })
                        .unwrap();
                }
                EvolutionOp::Capability { change, new_extent } => {
                    sequential_reports.extend(
                        sequential
                            .notify_capability_change_sequential(&change, new_extent)
                            .unwrap(),
                    );
                }
            }
        }

        // Survival verdicts and adopted definitions.
        let defs = |e: &EveEngine| -> Vec<String> {
            e.views().map(|mv| mv.def.to_string()).collect()
        };
        prop_assert_eq!(defs(&batched), defs(&sequential));
        // Byte-identical extents (same tuples in the same order).
        for (b, s) in batched.views().zip(sequential.views()) {
            prop_assert_eq!(b.extent.tuples(), s.extent.tuples(), "extent of {}", b.def.name);
            prop_assert_eq!(b.extent.schema(), s.extent.schema());
        }
        // Identical measured cost totals.
        prop_assert_eq!(batched.total_io(), sequential.total_io());
        prop_assert_eq!(batched.total_messages(), sequential.total_messages());
        // Identical evolution verdicts, report for report.
        prop_assert_eq!(outcome.reports.len(), sequential_reports.len());
        for (b, s) in outcome.reports.iter().zip(&sequential_reports) {
            prop_assert_eq!(&b.view_name, &s.view_name);
            prop_assert_eq!(b.affected, s.affected);
            prop_assert_eq!(b.survived, s.survived);
            prop_assert_eq!(b.candidates, s.candidates);
        }
    }

    // -------------------------------------------------------------------
    // Parser: printing then reparsing is the identity.
    // -------------------------------------------------------------------
    #[test]
    fn parser_roundtrip(view in arbitrary_view()) {
        let printed = view.to_string();
        let reparsed = parse_view(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(view, reparsed);
    }

    // -------------------------------------------------------------------
    // Cost model: all factors are non-negative and finite; transfer and
    // messages are monotone in the number of populated sites.
    // -------------------------------------------------------------------
    #[test]
    fn cost_factors_are_finite_and_nonnegative(
        dist in prop::collection::vec(1usize..5, 1..5),
        js in 1e-4f64..0.02,
    ) {
        let plan = MaintenancePlan::uniform(&dist, js).unwrap();
        for v in [
            cf_messages(&plan, true),
            cf_transfer(&plan),
            cf_io(&plan, IoBound::Lower),
            cf_io(&plan, IoBound::Upper),
        ] {
            prop_assert!(v.is_finite() && v >= 0.0, "factor {v}");
        }
        prop_assert!(cf_io(&plan, IoBound::Lower) <= cf_io(&plan, IoBound::Upper) + 1e-12);
        prop_assert!(
            cf_io(&plan, IoBound::Midpoint) <= cf_io(&plan, IoBound::Upper) + 1e-12
        );
    }

    #[test]
    fn splitting_a_site_never_reduces_transfer(
        dist in prop::collection::vec(1usize..4, 2..5),
    ) {
        // Moving the last site's relations out to a fresh site adds a round
        // trip: CF_T must not decrease.
        let merged = {
            let mut d = dist.clone();
            let last = d.pop().unwrap();
            *d.last_mut().unwrap() += last;
            d
        };
        let split_plan = MaintenancePlan::uniform(&dist, 0.005).unwrap();
        let merged_plan = MaintenancePlan::uniform(&merged, 0.005).unwrap();
        prop_assert!(cf_transfer(&merged_plan) <= cf_transfer(&split_plan) + 1e-9);
        prop_assert!(
            cf_messages(&merged_plan, true) <= cf_messages(&split_plan, true) + 1e-9
        );
    }

    // -------------------------------------------------------------------
    // Normalization: outputs in [0, 1], min → 0, max → 1, order-preserving.
    // -------------------------------------------------------------------
    #[test]
    fn normalization_bounds_and_monotonicity(
        costs in prop::collection::vec(0.0f64..1e6, 1..10),
    ) {
        let normalized = normalize_costs(&costs);
        prop_assert_eq!(normalized.len(), costs.len());
        for v in &normalized {
            prop_assert!((0.0..=1.0).contains(v), "normalized {v}");
        }
        for i in 0..costs.len() {
            for j in 0..costs.len() {
                if costs[i] < costs[j] {
                    prop_assert!(normalized[i] <= normalized[j]);
                }
            }
        }
    }

    // -------------------------------------------------------------------
    // Synchronize + rank: every emitted rewriting is VE-legal, scores lie
    // in [0, 1], the ranking is sorted, and all indispensable attributes
    // survive in every rewriting.
    // -------------------------------------------------------------------
    #[test]
    fn synchronization_and_ranking_invariants(
        view in arbitrary_view(),
        replicas in 0usize..3,
        drop_attr in 0usize..6,
    ) {
        let mkb = mkb_with_replicas(replicas);
        let change = SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: format!("A{drop_attr}"),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let params = QcParams::default();
        let scored = rank_rewritings(
            &view,
            &outcome.rewritings,
            &mkb,
            &params,
            WorkloadModel::SingleUpdate,
        )
        .unwrap();

        // Indispensable attributes must survive in every rewriting.
        let indispensable: Vec<&str> = view
            .select
            .iter()
            .filter(|s| !s.evolution.dispensable)
            .map(|s| s.output_name())
            .collect();
        for rw in &outcome.rewritings {
            let outputs = rw.view.output_columns();
            for attr in &indispensable {
                prop_assert!(
                    outputs.iter().any(|o| o == attr),
                    "indispensable `{attr}` lost in {}",
                    rw.view
                );
            }
            prop_assert!(rw.extent.satisfies(view.ve), "illegal extent {}", rw.extent);
        }

        // Scores bounded and sorted.
        let mut last = f64::INFINITY;
        for s in &scored {
            prop_assert!((0.0..=1.0).contains(&s.qc), "qc {}", s.qc);
            prop_assert!((0.0..=1.0).contains(&s.divergence.dd));
            prop_assert!((0.0..=1.0).contains(&s.divergence.dd_attr));
            prop_assert!((0.0..=1.0).contains(&s.divergence.dd_ext));
            prop_assert!((0.0..=1.0).contains(&s.normalized_cost));
            prop_assert!(s.cost >= 0.0 && s.cost.is_finite());
            prop_assert!(s.qc <= last + 1e-12, "not sorted");
            last = s.qc;
        }
    }

    // -------------------------------------------------------------------
    // Renames are always survivable and quality-neutral.
    // -------------------------------------------------------------------
    #[test]
    fn renames_are_lossless(view in arbitrary_view(), idx in 0usize..6) {
        let mkb = mkb_with_replicas(0);
        let change = SchemaChange::RenameAttribute {
            relation: "R".into(),
            from: format!("A{idx}"),
            to: "Renamed".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        if outcome.affected {
            prop_assert_eq!(outcome.rewritings.len(), 1);
            let rw = &outcome.rewritings[0];
            prop_assert_eq!(rw.extent, eve::sync::ExtentRelationship::Equal);
            // Interface is fully preserved.
            prop_assert_eq!(rw.view.output_columns(), view.output_columns());
        }
        prop_assert!(outcome.survives());
    }

    // -------------------------------------------------------------------
    // More replicas never hurt: the rewriting count under delete-relation
    // is monotone in the number of equivalent replicas.
    // -------------------------------------------------------------------
    #[test]
    fn redundancy_is_monotone(view in arbitrary_view(), n in 1usize..3) {
        let change = SchemaChange::DeleteRelation { relation: "R".into() };
        let smaller = synchronize(
            &view, &change, &mkb_with_replicas(n), &SyncOptions::default()
        ).unwrap();
        let larger = synchronize(
            &view, &change, &mkb_with_replicas(n + 1), &SyncOptions::default()
        ).unwrap();
        prop_assert!(larger.rewritings.len() >= smaller.rewritings.len());
    }
}

// ---------------------------------------------------------------------
// Physical planner differential: planned ≡ naive view evaluation
// ---------------------------------------------------------------------

/// Builds the `T0..T{n-1}` extents (schema `(K, P)`) from generated rows.
fn exec_extents(all_rows: &[Vec<(i64, i64)>]) -> std::collections::BTreeMap<String, Relation> {
    use eve::relational::Schema;
    let schema = Schema::of(&[("K", DataType::Int), ("P", DataType::Int)]).unwrap();
    all_rows
        .iter()
        .enumerate()
        .map(|(i, rows)| {
            let name = format!("T{i}");
            let rel = Relation::with_tuples(
                &name,
                schema.clone(),
                rows.iter().map(|&(k, p)| tup![k, p]).collect(),
            )
            .unwrap();
            (name, rel)
        })
        .collect()
}

/// A chain-join view over the first `n` extents with optional literal
/// conditions, as E-SQL source (bindings `B0..B{n-1}`).
fn exec_view_sql(n: usize, literals: &[(usize, i64)]) -> String {
    let select: Vec<String> = (0..n)
        .map(|i| format!("B{i}.P AS P{i}"))
        .chain(std::iter::once("B0.K AS K0".to_owned()))
        .collect();
    let from: Vec<String> = (0..n).map(|i| format!("T{i} B{i}")).collect();
    let mut conds: Vec<String> = (1..n).map(|i| format!("B{}.K = B{i}.K", i - 1)).collect();
    for &(j, v) in literals {
        conds.push(format!("B{}.P > {v}", j % n));
    }
    let where_clause = if conds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", conds.join(" AND "))
    };
    format!(
        "CREATE VIEW V AS SELECT {} FROM {}{}",
        select.join(", "),
        from.join(", "),
        where_clause
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -------------------------------------------------------------------
    // `evaluate_view` (cost-ordered planner) produces exactly the bag the
    // naive left-to-right reference produces, on every generated view and
    // extent set — with and without declared statistics.
    // -------------------------------------------------------------------
    #[test]
    fn planned_evaluate_view_equals_naive(
        n in 1usize..4,
        rows in prop::collection::vec(
            prop::collection::vec((-4i64..5, -4i64..5), 0..10), 3..=3
        ),
        literals in prop::collection::vec((0usize..3, -4i64..5), 0..2),
    ) {
        use eve::system::query::{evaluate_view, evaluate_view_naive, evaluate_view_with_stats};

        let extents = exec_extents(&rows);
        let view = parse_view(&exec_view_sql(n, &literals)).unwrap();

        let naive = evaluate_view_naive(&view, &extents).unwrap();
        let planned = evaluate_view(&view, &extents).unwrap();
        prop_assert_eq!(planned.name(), naive.name());
        prop_assert_eq!(planned.schema(), naive.schema());
        let mut a = naive.tuples().to_vec();
        let mut b = planned.tuples().to_vec();
        a.sort();
        b.sort();
        prop_assert_eq!(&a, &b, "planned ≢ naive for {}", view);

        // Declared statistics may change the join order, never the bag.
        let stats: std::collections::BTreeMap<String, eve::relational::RelationStats> = extents
            .iter()
            .map(|(name, rel)| {
                let mut s = eve::relational::RelationStats::from_relation(rel);
                s.cardinality = (s.cardinality + 7) * 3; // deliberately wrong scale
                (name.clone(), s)
            })
            .collect();
        let declared = evaluate_view_with_stats(&view, &extents, &stats).unwrap();
        let mut c = declared.tuples().to_vec();
        c.sort();
        prop_assert_eq!(&a, &c, "declared-stats plan diverged for {}", view);
    }
}

// ---------------------------------------------------------------------
// Engine-level differential: after a mixed batched workload (data updates
// + capability changes), every materialized extent must equal a *naive*
// recomputation of its (possibly rewritten) definition over the live site
// extents — the planner-driven maintenance and re-materialization paths
// yield exactly the reference semantics, while survival verdicts and
// message totals stay pinned by `apply_batch_equals_sequential_application`
// above.
// ---------------------------------------------------------------------
#[test]
fn planner_driven_engine_matches_naive_recomputation() {
    let sites = 3;
    let mut engine = multi_site_engine(sites);
    let specs: Vec<(u32, u8, i64)> = (0..24)
        .map(|i| (i % sites, (i % 8) as u8, i64::from(i) * 7 % 60))
        .collect();
    let ops = realize_ops(sites, &specs);
    engine.apply_batch(ops).unwrap();

    let views: Vec<(String, eve::esql::ViewDef, Relation)> = engine
        .views()
        .map(|mv| (mv.def.name.clone(), mv.def.clone(), mv.extent.clone()))
        .collect();
    assert!(!views.is_empty(), "workload must leave surviving views");
    for (name, def, extent) in views {
        let mut extents = std::collections::BTreeMap::new();
        for item in &def.from {
            let site_id = engine.mkb().relation(&item.relation).unwrap().site.0;
            let site = engine.sites_mut().get(&site_id).unwrap();
            extents.insert(
                item.relation.clone(),
                site.relation(&item.relation).unwrap().clone(),
            );
        }
        let naive = eve::system::query::evaluate_view_naive(&def, &extents).unwrap();
        let mut a = extent.tuples().to_vec();
        let mut b = naive.tuples().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "extent of {name} diverged from naive recomputation");
    }
}
