//! The paper's worked examples (1–4), executed end-to-end across crates.

use eve::esql::{parse_view, ViewExtent};
use eve::misd::{
    AttributeInfo, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve::qc::quality::{dd_attr, interface_quality};
use eve::qc::{rank_rewritings, QcParams, WorkloadModel};
use eve::relational::{tup, DataType, Relation, Schema};
use eve::sync::{synchronize, ExtentRelationship, SyncOptions};

fn int_attr(name: &str) -> AttributeInfo {
    AttributeInfo::new(name, DataType::Int)
}

/// Example 1 (§5.1): deleting `R.C` with no substitute drops the attribute;
/// `V2` (also dropping the dispensable `B`) is dominated per §5.1's
/// information-preservation order.
#[test]
fn example_1_drop_spectrum() {
    let mut mkb = Mkb::new();
    mkb.register_site(SiteId(1), "one").unwrap();
    mkb.register_relation(RelationInfo::new(
        "R",
        SiteId(1),
        vec![int_attr("A"), int_attr("B"), int_attr("C")],
        100,
    ))
    .unwrap();
    let v = parse_view(
        "CREATE VIEW V (VE = '=') AS \
         SELECT A, B (AD = true, AR = true), C (AD = true, AR = true) \
         FROM R \
         WHERE R.A > 10",
    )
    .unwrap();
    let change = SchemaChange::DeleteAttribute {
        relation: "R".into(),
        attribute: "C".into(),
    };
    // Default options: only the maximal rewriting V1 (paper footnote 2
    // marks the sub-drops as dominated).
    let outcome = synchronize(&v, &change, &mkb, &SyncOptions::default()).unwrap();
    assert_eq!(outcome.rewritings.len(), 1);
    let v1 = &outcome.rewritings[0];
    assert_eq!(v1.view.output_columns(), vec!["A", "B"]);
    assert_eq!(v1.extent, ExtentRelationship::Equal); // legal under VE '='

    // CVS-style enumeration also yields V2 = SELECT A.
    let outcome = synchronize(
        &v,
        &change,
        &mkb,
        &SyncOptions {
            enumerate_dispensable_drops: true,
            ..SyncOptions::default()
        },
    )
    .unwrap();
    assert!(outcome
        .rewritings
        .iter()
        .any(|r| r.view.output_columns() == vec!["A"]));

    // Example 3 (§5.4.1): DD_attr(V1) = 0.5 < DD_attr(V2) = 1 with the
    // default weights.
    let v1 = outcome
        .rewritings
        .iter()
        .find(|r| r.view.output_columns() == vec!["A", "B"])
        .unwrap();
    let v2 = outcome
        .rewritings
        .iter()
        .find(|r| r.view.output_columns() == vec!["A"])
        .unwrap();
    assert!((interface_quality(&v, 0.7, 0.3) - 1.4).abs() < 1e-12);
    assert!((dd_attr(&v, &v1.view, 0.7, 0.3) - 0.5).abs() < 1e-12);
    assert!((dd_attr(&v, &v2.view, 0.7, 0.3) - 1.0).abs() < 1e-12);
}

/// Example 2 (§5.1): interfaces and extents can rank incomparably — V1
/// preserves fewer attributes but introduces less surplus; V2 preserves
/// more attributes but more surplus. The QC-Model linearizes the choice.
#[test]
fn example_2_incomparable_rewritings_get_linearized() {
    // Build V, V1, V2 extents as in our Fig. 5 reconstruction.
    let v_ext = Relation::with_tuples(
        "V",
        Schema::of(&[
            ("A", DataType::Int),
            ("B", DataType::Int),
            ("C", DataType::Int),
            ("D", DataType::Int),
        ])
        .unwrap(),
        vec![
            tup![1, 1, 1, 2],
            tup![1, 6, 3, 5],
            tup![2, 2, 4, 6],
            tup![2, 3, 1, 3],
            tup![3, 9, 7, 9],
            tup![3, 6, 5, 0],
        ],
    )
    .unwrap();
    let v1_ext = Relation::with_tuples(
        "V1",
        Schema::of(&[("A", DataType::Int), ("B", DataType::Int)]).unwrap(),
        vec![tup![1, 1], tup![1, 6], tup![2, 2], tup![6, 4]],
    )
    .unwrap();
    let v2_ext = Relation::with_tuples(
        "V2",
        Schema::of(&[
            ("B", DataType::Int),
            ("C", DataType::Int),
            ("D", DataType::Int),
        ])
        .unwrap(),
        vec![
            tup![1, 1, 2],
            tup![6, 3, 5],
            tup![2, 4, 6],
            tup![7, 6, 7],
            tup![8, 1, 7],
            tup![8, 7, 2],
            tup![6, 4, 6],
        ],
    )
    .unwrap();

    let original = parse_view(
        "CREATE VIEW V (VE = '~') AS \
         SELECT R.A (AD = true, AR = true), R.B (AR = true), \
                R.C (AD = true, AR = true), R.D (AD = true, AR = true) \
         FROM R (RD = true, RR = true)",
    )
    .unwrap();
    let v1_def = parse_view(
        "CREATE VIEW V1 (VE = '~') AS \
         SELECT S.A (AD = true, AR = true), S.B (AR = true) \
         FROM S (RD = true, RR = true)",
    )
    .unwrap();
    let v2_def = parse_view(
        "CREATE VIEW V2 (VE = '~') AS \
         SELECT T.B (AR = true), T.C (AD = true, AR = true), T.D (AD = true, AR = true) \
         FROM T (RD = true, RR = true)",
    )
    .unwrap();

    let params = QcParams::default();
    let rep1 = eve::qc::quality::degree_of_divergence_measured(
        &original, &v1_def, &v_ext, &v1_ext, &params,
    )
    .unwrap();
    let rep2 = eve::qc::quality::degree_of_divergence_measured(
        &original, &v2_def, &v_ext, &v2_ext, &params,
    )
    .unwrap();

    // Interface: V2 preserves more (C and D are category 1; A too).
    assert!(rep2.dd_attr < rep1.dd_attr, "{rep1:?} vs {rep2:?}");
    // Extent: V1 introduces less surplus.
    assert!(rep1.dd_ext < rep2.dd_ext, "{rep1:?} vs {rep2:?}");
    // The combined DD linearizes the trade-off (with the default ρ_attr
    // weighting, interface wins → V2 preferred).
    assert!(rep2.dd < rep1.dd);
}

/// Example 4 (§5.4.3): `delete-relation R` repaired by swapping in `T` via
/// the JC with `S`; the overlap estimate follows `js·|R ∩~ T|·|S|`.
#[test]
fn example_4_swap_through_join() {
    let mut mkb = Mkb::new();
    mkb.register_site(SiteId(1), "one").unwrap();
    mkb.register_site(SiteId(2), "two").unwrap();
    mkb.register_relation(RelationInfo::new("R", SiteId(1), vec![int_attr("A")], 1000))
        .unwrap();
    mkb.register_relation(RelationInfo::new(
        "S",
        SiteId(2),
        vec![int_attr("A"), int_attr("B")],
        2000,
    ))
    .unwrap();
    mkb.register_relation(RelationInfo::new("T", SiteId(2), vec![int_attr("A")], 1500))
        .unwrap();
    // PC: R ⊆ T on A (T can replace R); JCs as in the example.
    mkb.add_pc_constraint(PcConstraint::new(
        PcSide::projection("R", &["A"]),
        PcRelationship::Subset,
        PcSide::projection("T", &["A"]),
    ))
    .unwrap();

    let v = parse_view(
        "CREATE VIEW V (VE = '>=') AS \
         SELECT R.A (AR = true), S.B \
         FROM R (RR = true), S \
         WHERE R.A = S.A (CR = true)",
    )
    .unwrap();
    assert_eq!(v.ve, ViewExtent::Superset);
    let change = SchemaChange::DeleteRelation {
        relation: "R".into(),
    };
    let outcome = synchronize(&v, &change, &mkb, &SyncOptions::default()).unwrap();
    assert_eq!(outcome.rewritings.len(), 1);
    let rw = &outcome.rewritings[0];
    // The rewriting of Eq. 19: SELECT T.A, S.B FROM T, S WHERE T.A = S.A.
    assert!(rw.view.from.iter().any(|f| f.relation == "T"));
    assert_eq!(rw.view.conditions[0].clause.to_string(), "T.A = S.A");
    // R ⊆ T ⇒ the new extent is a superset — exactly what VE '⊇' allows.
    assert_eq!(rw.extent, ExtentRelationship::Superset);

    // Extent divergence via the MKB estimate: D1 = 0 (superset),
    // D2 = 1 − |R|/|T| = 1 − 1000/1500 = 1/3; DD_ext = ρ2 · 1/3.
    let params = QcParams::default();
    let rep = eve::qc::quality::degree_of_divergence(&v, rw, &mkb, &params).unwrap();
    assert!(
        (rep.dd_ext - 0.5 / 3.0).abs() < 1e-9,
        "dd_ext = {}",
        rep.dd_ext
    );

    // And the full ranking machinery accepts the single candidate.
    let scored = rank_rewritings(
        &v,
        &outcome.rewritings,
        &mkb,
        &params,
        WorkloadModel::SingleUpdate,
    )
    .unwrap();
    assert_eq!(scored.len(), 1);
    assert!(scored[0].qc > 0.9, "qc = {}", scored[0].qc);
}

/// The `VE` parameter gates legality exactly as Fig. 8/§5.4.2 prescribe.
#[test]
fn ve_legality_gates_example_4() {
    let mut mkb = Mkb::new();
    mkb.register_site(SiteId(1), "one").unwrap();
    mkb.register_relation(RelationInfo::new("R", SiteId(1), vec![int_attr("A")], 1000))
        .unwrap();
    mkb.register_relation(RelationInfo::new("T", SiteId(1), vec![int_attr("A")], 1500))
        .unwrap();
    mkb.add_pc_constraint(PcConstraint::new(
        PcSide::projection("R", &["A"]),
        PcRelationship::Subset,
        PcSide::projection("T", &["A"]),
    ))
    .unwrap();
    let change = SchemaChange::DeleteRelation {
        relation: "R".into(),
    };
    // The swap to T yields a superset extent: legal for VE ∈ {≈, ⊇},
    // illegal for VE ∈ {≡, ⊆}.
    for (ve, expect) in [
        ("'~'", true),
        ("'>='", true),
        ("'='", false),
        ("'<='", false),
    ] {
        let v = parse_view(&format!(
            "CREATE VIEW V (VE = {ve}) AS SELECT R.A (AR = true) FROM R (RR = true)"
        ))
        .unwrap();
        let outcome = synchronize(&v, &change, &mkb, &SyncOptions::default()).unwrap();
        assert_eq!(
            !outcome.rewritings.is_empty(),
            expect,
            "VE {ve} should{} admit the superset swap",
            if expect { "" } else { " not" }
        );
    }
}
