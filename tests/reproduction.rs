//! Reproduction assertions: the paper's tables and figures, to the digit
//! where the paper pins digits, to the documented shape otherwise.
//! (EXPERIMENTS.md records paper-vs-measured for each artifact.)

use eve_bench::experiments::{
    exp1_survival, exp2_sites, exp3_distribution, exp4_cardinality, exp5_workload, heuristics,
    validation,
};

/// Golden-file check: the rendered table must match the snapshot byte for
/// byte. Regenerate deliberately with `UPDATE_GOLDEN=1 cargo test --test
/// reproduction` after verifying a change is intentional.
fn assert_golden(name: &str, expected: &str, actual: &str) {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, actual).unwrap();
        return;
    }
    assert_eq!(
        actual, expected,
        "{name} drifted from tests/golden/{name}; if intentional, regenerate \
         with UPDATE_GOLDEN=1"
    );
}

#[test]
fn table4_rendering_matches_golden_file() {
    assert_golden(
        "table4.txt",
        include_str!("golden/table4.txt"),
        &eve_bench::report::table4_text().unwrap(),
    );
}

#[test]
fn table6_rendering_matches_golden_file() {
    assert_golden(
        "table6.txt",
        include_str!("golden/table6.txt"),
        &eve_bench::report::table6_text(),
    );
}

#[test]
fn table4_qc_scores_exact() {
    let rows = exp4_cardinality::table4(0.9, 0.1).unwrap();
    let expected_qc = [0.9325, 0.94125, 0.95, 0.898, 0.855];
    let expected_rating = [3, 2, 1, 4, 5];
    for (i, row) in rows.iter().enumerate() {
        assert!(
            (row.qc - expected_qc[i]).abs() < 1e-9,
            "{}: {} vs {}",
            row.rewriting,
            row.qc,
            expected_qc[i]
        );
        assert_eq!(row.rating, expected_rating[i], "{}", row.rewriting);
    }
}

#[test]
fn table6_totals_exact() {
    let rows = exp5_workload::table6(10.0);
    let expected = [
        (10.0, 30.0, 8000.0, 310.0),
        (20.0, 92.0, 27200.0, 620.0),
        (30.0, 186.0, 57600.0, 930.0),
        (40.0, 312.0, 99200.0, 1240.0),
        (50.0, 470.0, 152000.0, 1550.0),
        (60.0, 660.0, 216000.0, 1860.0),
    ];
    for (row, (upd, m, t, io)) in rows.iter().zip(expected) {
        assert!((row.updates - upd).abs() < 1e-9);
        assert!((row.cf_m - m).abs() < 1e-6, "m={}: {}", row.sites, row.cf_m);
        assert!((row.cf_t - t).abs() < 1e-6, "m={}: {}", row.sites, row.cf_t);
        assert!(
            (row.cf_io - io).abs() < 1e-6,
            "m={}: {}",
            row.sites,
            row.cf_io
        );
    }
}

#[test]
fn figure13_shape_messages_bytes_rise_io_flat() {
    let rows = exp2_sites::figure13(&exp2_sites::Table1::default());
    for w in rows.windows(2) {
        assert!(w[0].messages < w[1].messages);
        assert!(w[0].bytes < w[1].bytes);
        assert!((w[0].io_lower - w[1].io_lower).abs() < 1e-9);
    }
    // Magnitudes as charted: bytes from ~800 to ~4000, messages 3 to 11.
    assert!((rows[0].bytes - 800.0).abs() < 1e-9);
    assert!(rows[5].bytes > 3000.0 && rows[5].bytes < 4000.0);
}

#[test]
fn figure14_crossover_between_js_regimes() {
    // js = 0.005: even 3/3 has the lowest worst-case; js = 0.001: the
    // skewed group's average beats the even one.
    let grow = exp3_distribution::figure14(0.005);
    let g = |rows: &[exp3_distribution::Fig14Group], l: &str| {
        rows.iter().find(|x| x.label == l).unwrap().clone()
    };
    assert!(g(&grow, "3/3").worst < g(&grow, "1/5").worst);
    let shrink = exp3_distribution::figure14(0.001);
    assert!(g(&shrink, "1/5").average < g(&shrink, "3/3").average);
}

#[test]
fn figure15_winner_flips_with_trade_off() {
    let fig = exp4_cardinality::figure15().unwrap();
    let winner = |case: usize| -> &str {
        fig.iter()
            .max_by(|a, b| a.1[case].partial_cmp(&b.1[case]).unwrap())
            .map(|(n, _)| n.as_str())
            .unwrap()
    };
    assert_eq!(winner(0), "V3"); // quality-dominant
    assert_eq!(winner(1), "V1"); // mixed
    assert_eq!(winner(2), "V1"); // cost-heavy
}

#[test]
fn figure12_replaceability_extends_lifetime() {
    let steps = exp1_survival::figure12();
    let w1_life = steps.iter().filter(|s| s.choice_w1.is_some()).count();
    let w2_life = steps.iter().filter(|s| s.choice_w2.is_some()).count();
    assert!(w1_life > w2_life);
}

#[test]
fn table5_m1_keeps_table4_ranking() {
    let rows = exp5_workload::table5().unwrap();
    let best = rows.iter().find(|r| r.rating == 1).unwrap();
    assert_eq!(best.rewriting, "V3");
    assert_eq!(
        rows.iter().map(|r| r.rating).collect::<Vec<_>>(),
        vec![3, 2, 1, 4, 5]
    );
}

#[test]
fn section_7_6_heuristics_all_hold() {
    for check in heuristics::all_checks().unwrap() {
        assert!(check.holds, "{}: {}", check.name, check.evidence);
    }
}

#[test]
fn measured_system_matches_analytic_model() {
    for row in validation::validate_costs().unwrap() {
        assert_eq!(row.messages.0, row.messages.1, "{}", row.distribution);
        assert_eq!(row.bytes.0, row.bytes.1, "{}", row.distribution);
        assert_eq!(row.io.0, row.io.1, "{}", row.distribution);
    }
}

#[test]
fn estimated_quality_matches_measured_on_chains() {
    for row in validation::validate_quality(123).unwrap() {
        assert!((row.estimated - row.measured).abs() < 1e-9, "{row:?}");
    }
}
