//! Differential property suite for the streaming rewrite-search driver
//! (PROPTEST_CASES-aware, like every other property suite):
//!
//! * the driver's `Exhaustive` policy emits a set **byte-identical** —
//!   views, repair actions, extent relationships, in order — to the frozen
//!   pre-refactor synchronizer (`eve::sync::legacy`),
//! * `BestFirst` under the QC bounds with the exact Eq. 25 normalization
//!   has **zero strategy regret**: its first emission attains the QC-best
//!   badness over the exhaustive candidate set,
//! * the partial-rewriting divergence bound is **admissible**: no prefix of
//!   a completed rewriting's repair trail scores above the completed
//!   divergence,
//! * the heuristic beam emits a subset of the exhaustive set.

use proptest::prelude::*;

use eve::esql::{AttrEvolution, CondEvolution, RelEvolution, ViewDef, ViewExtent};
use eve::misd::{
    AttributeInfo, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve::qc::{
    exact_score, partial_bound, rank_rewritings, synchronize_qc_best_first, CostBound, QcGuide,
    QcParams, ScoreModel, SelectionStrategy, WorkloadModel,
};
use eve::relational::{ColumnRef, CompOp, DataType, PrimitiveClause, Value};
use eve::sync::{
    legacy::synchronize_legacy, synchronize, synchronize_heuristic, HeuristicOptions, SyncOptions,
};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn attr_evolution() -> impl Strategy<Value = AttrEvolution> {
    (any::<bool>(), any::<bool>()).prop_map(|(d, r)| AttrEvolution {
        dispensable: d,
        replaceable: r,
    })
}

fn view_extent() -> impl Strategy<Value = ViewExtent> {
    prop_oneof![
        Just(ViewExtent::Approximate),
        Just(ViewExtent::Equal),
        Just(ViewExtent::Superset),
        Just(ViewExtent::Subset),
    ]
}

/// A random view over 1–2 bindings of R(A0..A3) with random evolution
/// parameters and literal conditions — self-joins exercise the
/// multi-binding cross product.
fn arbitrary_view() -> impl Strategy<Value = ViewDef> {
    (
        view_extent(),
        1usize..3,
        prop::collection::vec((0usize..2, 0usize..4, attr_evolution()), 1..5),
        prop::collection::vec(
            (0usize..2, 0usize..4, 0i64..50, any::<bool>(), any::<bool>()),
            0..3,
        ),
    )
        .prop_map(|(ve, bindings, attrs, conds)| {
            let mut seen = std::collections::BTreeSet::new();
            let select: Vec<eve::esql::SelectItem> = attrs
                .into_iter()
                .map(|(b, i, ev)| (b % bindings, i, ev))
                .filter(|(b, i, _)| seen.insert((*b, *i)))
                .enumerate()
                .map(|(n, (b, i, ev))| eve::esql::SelectItem {
                    attr: ColumnRef::qualified(format!("X{b}"), format!("A{i}")),
                    alias: Some(format!("C{n}")),
                    evolution: ev,
                })
                .collect();
            let conditions = conds
                .into_iter()
                .map(|(b, i, v, cd, cr)| eve::esql::ConditionItem {
                    clause: PrimitiveClause::lit(
                        ColumnRef::qualified(format!("X{}", b % bindings), format!("A{i}")),
                        CompOp::Gt,
                        Value::Int(v),
                    ),
                    evolution: CondEvolution {
                        dispensable: cd,
                        replaceable: cr,
                    },
                })
                .collect();
            ViewDef {
                name: "V".into(),
                column_names: None,
                ve,
                select,
                from: (0..bindings)
                    .map(|b| eve::esql::FromItem {
                        relation: "R".into(),
                        alias: Some(format!("X{b}")),
                        evolution: RelEvolution {
                            dispensable: false,
                            replaceable: true,
                        },
                    })
                    .collect(),
                conditions,
            }
        })
}

/// An MKB with R(A0..A3) plus replicas of proptest-chosen containment
/// direction and size, each covering all attributes.
fn mkb_with_replicas(specs: &[(u8, u64)]) -> Mkb {
    let mut mkb = Mkb::new();
    mkb.register_site(SiteId(1), "one").unwrap();
    let attrs = || {
        (0..4)
            .map(|i| AttributeInfo::sized(format!("A{i}"), DataType::Int, 50))
            .collect::<Vec<_>>()
    };
    mkb.register_relation(RelationInfo::new("R", SiteId(1), attrs(), 4000))
        .unwrap();
    let names: Vec<String> = (0..4).map(|i| format!("A{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    for (r, (direction, card)) in specs.iter().enumerate() {
        let site = SiteId(u32::try_from(r).unwrap() + 2);
        mkb.register_site(site, format!("rep{r}")).unwrap();
        let rel_name = format!("Rep{r}");
        let relationship = match direction % 3 {
            0 => PcRelationship::Equivalent,
            1 => PcRelationship::Subset,
            _ => PcRelationship::Superset,
        };
        // Keep cardinalities consistent with the containment direction so
        // the overlap estimates stay in the exact regime.
        let card = match relationship {
            PcRelationship::Equivalent => 4000,
            PcRelationship::Subset => 4000 + 500 + card % 8000,
            PcRelationship::Superset => 500 + card % 3500,
        };
        mkb.register_relation(RelationInfo::new(&rel_name, site, attrs(), card))
            .unwrap();
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &name_refs),
            relationship,
            PcSide::projection(&rel_name, &name_refs),
        ))
        .unwrap();
    }
    mkb
}

fn arbitrary_change() -> impl Strategy<Value = SchemaChange> {
    prop_oneof![
        Just(SchemaChange::DeleteRelation {
            relation: "R".into()
        }),
        (0usize..4).prop_map(|i| SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: format!("A{i}"),
        }),
        (0usize..4).prop_map(|i| SchemaChange::RenameAttribute {
            relation: "R".into(),
            from: format!("A{i}"),
            to: "Renamed".into(),
        }),
        Just(SchemaChange::RenameRelation {
            from: "R".into(),
            to: "R2".into()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -------------------------------------------------------------------
    // Differential: streaming Exhaustive ≡ the frozen pre-refactor
    // pipeline — byte-identical views, actions and extent relationships,
    // in the same order, for every generated view/space/change.
    // -------------------------------------------------------------------
    #[test]
    fn streaming_exhaustive_equals_legacy_synchronizer(
        view in arbitrary_view(),
        specs in prop::collection::vec((0u8..3, 0u64..10_000), 0..4),
        change in arbitrary_change(),
        max_rewritings in prop_oneof![Just(2usize), Just(8), Just(64)],
        spectrum in any::<bool>(),
    ) {
        let mkb = mkb_with_replicas(&specs);
        let options = SyncOptions {
            max_rewritings,
            enumerate_dispensable_drops: spectrum,
        };
        let streaming = synchronize(&view, &change, &mkb, &options).unwrap();
        let legacy = synchronize_legacy(&view, &change, &mkb, &options).unwrap();
        prop_assert_eq!(streaming.affected, legacy.affected);
        prop_assert_eq!(
            streaming.rewritings.len(),
            legacy.rewritings.len(),
            "cardinality diverged"
        );
        for (s, l) in streaming.rewritings.iter().zip(&legacy.rewritings) {
            prop_assert_eq!(s.view.to_string(), l.view.to_string());
            prop_assert_eq!(&s.provenance.actions, &l.provenance.actions);
            prop_assert_eq!(s.extent, l.extent);
        }
    }

    // -------------------------------------------------------------------
    // Zero strategy regret: BestFirst under the QC bounds with the exact
    // candidate-set normalization emits, first, a rewriting attaining the
    // QC-best badness of the exhaustive set.
    // -------------------------------------------------------------------
    #[test]
    fn best_first_first_emission_matches_qc_best(
        view in arbitrary_view(),
        specs in prop::collection::vec((0u8..3, 0u64..10_000), 1..4),
        drop_relation in any::<bool>(),
        attr in 0usize..4,
    ) {
        let mkb = mkb_with_replicas(&specs);
        let change = if drop_relation {
            SchemaChange::DeleteRelation { relation: "R".into() }
        } else {
            SchemaChange::DeleteAttribute {
                relation: "R".into(),
                attribute: format!("A{attr}"),
            }
        };
        let params = QcParams::default();
        let workload = WorkloadModel::SingleUpdate;
        let exhaustive = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        if exhaustive.rewritings.is_empty() {
            return Ok(());
        }
        let scored = rank_rewritings(&view, &exhaustive.rewritings, &mkb, &params, workload)
            .unwrap();
        let best = SelectionStrategy::QcBest.select(&scored).unwrap();

        let mut costs: Vec<(usize, f64)> = scored.iter().map(|s| (s.index, s.cost)).collect();
        costs.sort_by_key(|(i, _)| *i);
        let costs: Vec<f64> = costs.into_iter().map(|(_, c)| c).collect();
        let model = ScoreModel::from_costs(&params, &costs);
        let guide = QcGuide::new(&params, workload, model);
        let (outcome, _) = synchronize_qc_best_first(
            &view,
            &change,
            &mkb,
            &SyncOptions { max_rewritings: 1, ..SyncOptions::default() },
            &guide,
        )
        .unwrap();
        let first = outcome.rewritings.first().expect("affected ⇒ emission");
        let (dd, cost) = exact_score(&view, first, &mkb, &params, workload).unwrap();
        let regret = model.badness(dd, cost) - model.badness(best.divergence.dd, best.cost);
        prop_assert!(
            regret.abs() < 1e-9,
            "regret {regret} (first {}, best {})",
            first.view,
            best.rewriting.view
        );
    }

    // -------------------------------------------------------------------
    // Admissibility: for every completed rewriting, every prefix of its
    // repair trail bounds the completed divergence from below.
    // -------------------------------------------------------------------
    #[test]
    fn partial_divergence_bound_is_admissible(
        view in arbitrary_view(),
        specs in prop::collection::vec((0u8..3, 0u64..10_000), 0..4),
        drop_relation in any::<bool>(),
        attr in 0usize..4,
    ) {
        let mkb = mkb_with_replicas(&specs);
        let change = if drop_relation {
            SchemaChange::DeleteRelation { relation: "R".into() }
        } else {
            SchemaChange::DeleteAttribute {
                relation: "R".into(),
                attribute: format!("A{attr}"),
            }
        };
        let params = QcParams::default();
        let workload = WorkloadModel::SingleUpdate;
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        for rw in &outcome.rewritings {
            let (full_dd, full_cost) = exact_score(&view, rw, &mkb, &params, workload).unwrap();
            for cut in 0..=rw.provenance.actions.len() {
                let bound = partial_bound(
                    &view,
                    &rw.view,
                    &rw.provenance.actions[..cut],
                    &[],
                    &mkb,
                    &params,
                    workload,
                    CostBound::Ignore,
                )
                .unwrap();
                prop_assert!(
                    bound.dd_lower <= full_dd + 1e-9,
                    "prefix[..{cut}] dd {} > completed {full_dd} for {}",
                    bound.dd_lower,
                    rw.view
                );
                prop_assert!(bound.cost_lower <= full_cost + 1e-9);
            }
        }
    }

    // -------------------------------------------------------------------
    // The heuristic beam emits a subset of the exhaustive set, never more
    // than its budget, and always at least one rewriting when one exists
    // for the swap-only repairs it prioritizes.
    // -------------------------------------------------------------------
    #[test]
    fn beam_emissions_are_a_subset_of_exhaustive(
        view in arbitrary_view(),
        specs in prop::collection::vec((0u8..3, 0u64..10_000), 1..4),
        width in 1usize..4,
    ) {
        let mkb = mkb_with_replicas(&specs);
        let change = SchemaChange::DeleteRelation { relation: "R".into() };
        let full = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let pruned = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions { max_candidates: width, site_weight: 0.7 },
        )
        .unwrap();
        prop_assert!(pruned.rewritings.len() <= width);
        let full_set: std::collections::BTreeSet<String> =
            full.rewritings.iter().map(|r| r.view.to_string()).collect();
        for rw in &pruned.rewritings {
            prop_assert!(
                full_set.contains(&rw.view.to_string()),
                "beam emitted a rewriting outside the exhaustive set: {}",
                rw.view
            );
        }
    }
}
