//! Differential crash-recovery suite for the durable evolution store.
//!
//! The acceptance property: for random `EvolutionOp` streams and random
//! crash points — including crashes that tear the final log record mid-
//! frame — recovery from snapshot + log replay produces MKB generation,
//! site extents, installed rewritings and query results **byte-identical**
//! to the engine that never crashed; and `open_at(g)` matches a fresh
//! engine replayed through every operation up to generation `g`.
//!
//! "Byte-identical" is checked on the canonical `EngineSnapshot` encoding
//! (`EveEngine::snapshot_state().to_bytes()`), which covers the MKB
//! (generation included), every site's extents + accounting counters, and
//! every installed rewriting with its materialized extent. Query results
//! are additionally compared through live evaluation.

use proptest::prelude::*;

use eve::relational::tup;
use eve::store::{
    EvolutionStore, GroupCommitLog, GroupCommitPolicy, LogRecord, RecoveryOptions, SealedRecord,
};
use eve::sync::EvolutionOp;
use eve::system::DurableEngine;
use eve_bench::experiments::batch_pipeline;
use eve_bench::experiments::durability::{fingerprint, into_batches};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eve-durability-it-{}-{}-{tag}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs the seeded multi-site workload through a durable engine,
/// returning the fingerprint and generation after the bootstrap and after
/// every batch (`states[k]` = state once `k` records are applied).
fn run_durable(
    dir: &std::path::Path,
    sites: u32,
    op_count: usize,
    batch_size: usize,
    seed: u64,
    checkpoint_at: Option<usize>,
) -> (Vec<Vec<u8>>, Vec<u64>) {
    let (engine, ops) = batch_pipeline::build_workload(sites, op_count, seed).unwrap();
    let batches = into_batches(ops, batch_size);
    let mut durable = DurableEngine::create_with(dir, engine).unwrap();
    let mut states = vec![fingerprint(durable.engine())];
    let mut generations = vec![durable.engine().mkb().generation()];
    for (i, batch) in batches.into_iter().enumerate() {
        durable.apply_batch(batch).unwrap();
        states.push(fingerprint(durable.engine()));
        generations.push(durable.engine().mkb().generation());
        if checkpoint_at == Some(i) {
            durable.checkpoint().unwrap();
        }
    }
    // Crash: drop the in-memory engine. Only the fsync'd files survive.
    drop(durable);
    (states, generations)
}

/// The newest `.evl` segment in a store directory.
fn active_segment(dir: &std::path::Path) -> PathBuf {
    eve_bench::experiments::durability::active_segment(dir)
        .unwrap()
        .expect("store has a segment")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
    ))]

    /// Crash after an arbitrary number of fully-fsync'd batches: recovery
    /// reproduces the exact state the engine had when it died.
    #[test]
    fn recovery_is_byte_identical_at_every_batch_boundary(
        seed in 0u64..1_000_000,
        sites in 2u32..4,
        op_count in 8usize..32,
    ) {
        let dir = scratch_dir("boundary");
        let (states, _) = run_durable(&dir, sites, op_count, 4, seed, None);
        let (recovered, report) = DurableEngine::open(&dir).unwrap();
        prop_assert_eq!(report.torn_bytes_truncated, 0);
        let k = report.snapshot_seq.unwrap_or(0) + report.replayed_records;
        prop_assert_eq!(
            &fingerprint(recovered.engine()),
            &states[usize::try_from(k).unwrap()]
        );
        prop_assert_eq!(usize::try_from(k).unwrap(), states.len() - 1, "nothing was lost");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash at a random *byte* of the active segment (torn final write):
    /// recovery truncates the partial frame and lands exactly on the state
    /// after the last intact record — never a corrupted in-between.
    #[test]
    fn torn_tail_recovery_matches_surviving_prefix(
        seed in 0u64..1_000_000,
        cut_fraction in 0.0f64..1.0,
        checkpoint in prop::option::of(0usize..4),
    ) {
        let dir = scratch_dir("torn");
        let (states, _) = run_durable(&dir, 2, 20, 4, seed, checkpoint);
        // Tear the log: truncate the active segment at a random byte
        // offset past its 16-byte header.
        let segment = active_segment(&dir);
        let len = std::fs::metadata(&segment).unwrap().len();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = 16 + ((len.saturating_sub(16)) as f64 * cut_fraction) as u64;
        let file = std::fs::OpenOptions::new().write(true).open(&segment).unwrap();
        file.set_len(cut).unwrap();
        file.sync_all().unwrap();
        drop(file);

        let (recovered, report) = DurableEngine::open(&dir).unwrap();
        let k = usize::try_from(report.snapshot_seq.unwrap_or(0) + report.replayed_records).unwrap();
        prop_assert!(k < states.len());
        prop_assert_eq!(
            &fingerprint(recovered.engine()),
            &states[k],
            "after cutting the log at byte {} the recovered state must be the {}-record prefix",
            cut, k
        );

        // Recovered engines answer queries like their uncrashed twins: a
        // live re-evaluation of each installed definition produces the
        // same bag as the recovered materialized extent (incremental
        // maintenance and fresh evaluation may order the bag differently,
        // so compare as multisets).
        for mv in recovered.engine().views() {
            let mut re_evaluated = recovered.engine().evaluate(&mv.def).unwrap().tuples().to_vec();
            let mut materialized = mv.extent.tuples().to_vec();
            re_evaluated.sort();
            materialized.sort();
            prop_assert_eq!(re_evaluated, materialized, "{}", &mv.def.name);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `open_at(g)` reconstructs exactly the state a fresh engine reaches
    /// by replaying every operation whose post-generation is ≤ g.
    #[test]
    fn open_at_matches_fresh_replay_to_generation(
        seed in 0u64..1_000_000,
        pick in 0usize..1000,
        checkpoint in prop::option::of(0usize..4),
    ) {
        let dir = scratch_dir("travel");
        let (states, generations) = run_durable(&dir, 2, 20, 4, seed, checkpoint);
        // Pick an observed generation; travel must land on the *last*
        // batch boundary whose generation does not exceed it.
        let target = generations[pick % generations.len()];
        let expected_idx = generations
            .iter()
            .rposition(|&g| g <= target)
            .unwrap();
        let travelled = DurableEngine::open_at(&dir, target).unwrap();
        prop_assert_eq!(
            &fingerprint(&travelled),
            &states[expected_idx],
            "open_at({}) must match the replay prefix through batch {}",
            target, expected_idx
        );
        prop_assert!(travelled.mkb().generation() <= target);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A distinguishable single-op record for group-commit differentials (the
/// key makes every frame's bytes unique, so prefix comparison catches
/// loss, duplication and reordering).
fn keyed_record(seed: u64, k: u64) -> LogRecord {
    #[allow(clippy::cast_possible_wrap)]
    LogRecord::Batch(vec![EvolutionOp::insert(
        "R",
        vec![tup![(seed ^ k) as i64, k as i64]],
    )])
}

fn sealed_bytes(seed: u64, k: u64) -> Vec<u8> {
    eve::store::to_bytes(&SealedRecord {
        post_generation: 0,
        record: keyed_record(seed, k),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
    ))]

    /// Group-commit crash differential. `acked` records are acknowledged
    /// through commit tickets; `queued` more are enqueued but never
    /// waited on when the process dies (their followers are still
    /// blocked). Optionally the crash also tears bytes off the active
    /// segment — the crash-between-buffer-write-and-fsync case. Recovery
    /// must produce an exact byte **prefix** of the enqueue order: every
    /// record either fully survives in order or never existed; absent a
    /// tear, the prefix covers at least every acknowledged record.
    #[test]
    fn group_commit_crash_recovers_exactly_a_committed_prefix(
        seed in 0u64..1_000_000,
        acked in 0u64..12,
        queued in 0u64..12,
        tear in prop::option::of(1u64..48),
    ) {
        let dir = scratch_dir("group-crash");
        let store = EvolutionStore::create(&dir).unwrap();
        let log = GroupCommitLog::new(store, GroupCommitPolicy::default());
        for k in 0..acked {
            let seq = log.append_durable(0, keyed_record(seed, k)).unwrap();
            prop_assert_eq!(seq, k);
        }
        for k in acked..acked + queued {
            // Enqueued, never flushed: the follower never saw its ticket
            // resolve, so durability was never promised.
            drop(log.enqueue(0, keyed_record(seed, k)).unwrap());
        }
        drop(log); // crash with followers still queued

        if let Some(cut) = tear {
            let segment = active_segment(&dir);
            let len = std::fs::metadata(&segment).unwrap().len();
            let file = std::fs::OpenOptions::new().write(true).open(&segment).unwrap();
            file.set_len(len.saturating_sub(cut).max(16)).unwrap();
            file.sync_all().unwrap();
        }

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        let n = recovered.tail.len() as u64;
        prop_assert!(n <= acked + queued);
        if tear.is_none() {
            prop_assert_eq!(n, acked, "exactly the acknowledged records survive a clean crash");
        }
        for (i, sealed) in recovered.tail.iter().enumerate() {
            prop_assert_eq!(
                &eve::store::to_bytes(sealed),
                &sealed_bytes(seed, i as u64),
                "recovered record {} must byte-match the enqueue order", i
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// One waiter's leader round commits the *whole* queue as one batch:
    /// recovery then surfaces every record of that batch — the recovered
    /// prefix always ends on a committed-batch boundary, even though only
    /// the first follower ever saw its ticket resolve.
    #[test]
    fn group_commit_batch_commits_are_all_or_nothing(
        seed in 0u64..1_000_000,
        batch in 2u64..16,
    ) {
        let dir = scratch_dir("group-batch");
        let store = EvolutionStore::create(&dir).unwrap();
        let log = GroupCommitLog::new(store, GroupCommitPolicy::default());
        let mut tickets: Vec<_> = (0..batch)
            .map(|k| log.enqueue(0, keyed_record(seed, k)).unwrap())
            .collect();
        // Wait only the FIRST ticket: its leader round drains the whole
        // queue into one contiguous write + one fsync.
        let first = tickets.remove(0);
        prop_assert_eq!(first.wait().unwrap(), 0);
        let fsyncs = log.with_store(|s| s.stats().fsyncs);
        prop_assert_eq!(fsyncs, 1, "one fsync covered the whole batch");
        drop(tickets); // the followers never observe their seqs
        drop(log);     // crash

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        prop_assert_eq!(
            recovered.tail.len() as u64, batch,
            "the committed batch survives in full — a batch boundary, not an ack boundary"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Parallel segment replay is an I/O optimization, not a semantic change:
/// `open_with(parallel)` and `open_with(sequential)` recover byte-identical
/// snapshots, tails and stats-relevant outcomes on a multi-segment store.
#[test]
fn parallel_and_sequential_recovery_are_byte_identical() {
    let dir = scratch_dir("par-vs-seq");
    // A mid-stream checkpoint rotates the log, so recovery reads multiple
    // segments; raw appends afterwards grow the newest one's tail.
    run_durable(&dir, 3, 40, 4, 77, Some(1));
    {
        let (mut store, _) = EvolutionStore::open(&dir).unwrap();
        for k in 0..5 {
            store.append(0, keyed_record(5, k)).unwrap();
        }
    }

    let read = |parallel: bool| {
        let (store, recovered) = EvolutionStore::open_with(
            &dir,
            RecoveryOptions {
                parallel_replay: parallel,
            },
        )
        .unwrap();
        let threads = store.stats().replay_threads;
        drop(store);
        (
            recovered.snapshot.map(|(seq, s)| (seq, s.to_bytes())),
            recovered
                .tail
                .iter()
                .map(eve::store::to_bytes)
                .collect::<Vec<_>>(),
            recovered.torn_bytes,
            threads,
        )
    };
    let (par_snap, par_tail, par_torn, par_threads) = read(true);
    let (seq_snap, seq_tail, seq_torn, seq_threads) = read(false);
    assert_eq!(par_snap, seq_snap, "anchor snapshots must byte-match");
    assert_eq!(par_tail, seq_tail, "replay tails must byte-match");
    assert_eq!(par_torn, seq_torn);
    assert!(!par_tail.is_empty(), "the differential covered a real tail");
    assert_eq!(seq_threads, 1);
    assert!(par_threads >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// The tier-1 crash-recovery smoke CI runs by name: write ops, kill the
/// engine, corrupt the tail, recover, diff — end to end in one test.
#[test]
fn crash_recovery_smoke() {
    let dir = scratch_dir("smoke");
    let (states, _) = run_durable(&dir, 3, 40, 5, 2024, Some(2));

    // A clean kill first: recovery must land on the final state.
    let (recovered, report) = DurableEngine::open(&dir).unwrap();
    assert_eq!(report.torn_bytes_truncated, 0);
    assert_eq!(fingerprint(recovered.engine()), *states.last().unwrap());
    drop(recovered);

    // Now a torn write: chop 3 bytes off the active segment and recover
    // again — one record rolls back, nothing else.
    let segment = active_segment(&dir);
    let len = std::fs::metadata(&segment).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(len - 3).unwrap();
    file.sync_all().unwrap();
    drop(file);
    let (recovered, report) = DurableEngine::open(&dir).unwrap();
    assert!(report.torn_bytes_truncated > 0);
    assert_eq!(
        fingerprint(recovered.engine()),
        states[states.len() - 2],
        "exactly the torn record rolled back"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Compaction keeps recovery exact while bounding the log.
#[test]
fn compaction_preserves_recovery() {
    let dir = scratch_dir("compact");
    let (engine, ops) = batch_pipeline::build_workload(2, 24, 9).unwrap();
    let mut durable = DurableEngine::create_with(&dir, engine).unwrap();
    for batch in into_batches(ops, 4) {
        durable.apply_batch(batch).unwrap();
    }
    durable.checkpoint().unwrap();
    durable.compact().unwrap();
    let expected = fingerprint(durable.engine());
    drop(durable);
    let (recovered, report) = DurableEngine::open(&dir).unwrap();
    assert_eq!(fingerprint(recovered.engine()), expected);
    assert_eq!(report.replayed_records, 0, "recovery is pure snapshot load");
    std::fs::remove_dir_all(&dir).ok();
}
