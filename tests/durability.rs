//! Differential crash-recovery suite for the durable evolution store.
//!
//! The acceptance property: for random `EvolutionOp` streams and random
//! crash points — including crashes that tear the final log record mid-
//! frame — recovery from snapshot + log replay produces MKB generation,
//! site extents, installed rewritings and query results **byte-identical**
//! to the engine that never crashed; and `open_at(g)` matches a fresh
//! engine replayed through every operation up to generation `g`.
//!
//! "Byte-identical" is checked on the canonical `EngineSnapshot` encoding
//! (`EveEngine::snapshot_state().to_bytes()`), which covers the MKB
//! (generation included), every site's extents + accounting counters, and
//! every installed rewriting with its materialized extent. Query results
//! are additionally compared through live evaluation.

use proptest::prelude::*;

use eve::system::DurableEngine;
use eve_bench::experiments::batch_pipeline;
use eve_bench::experiments::durability::{fingerprint, into_batches};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eve-durability-it-{}-{}-{tag}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs the seeded multi-site workload through a durable engine,
/// returning the fingerprint and generation after the bootstrap and after
/// every batch (`states[k]` = state once `k` records are applied).
fn run_durable(
    dir: &std::path::Path,
    sites: u32,
    op_count: usize,
    batch_size: usize,
    seed: u64,
    checkpoint_at: Option<usize>,
) -> (Vec<Vec<u8>>, Vec<u64>) {
    let (engine, ops) = batch_pipeline::build_workload(sites, op_count, seed).unwrap();
    let batches = into_batches(ops, batch_size);
    let mut durable = DurableEngine::create_with(dir, engine).unwrap();
    let mut states = vec![fingerprint(durable.engine())];
    let mut generations = vec![durable.engine().mkb().generation()];
    for (i, batch) in batches.into_iter().enumerate() {
        durable.apply_batch(batch).unwrap();
        states.push(fingerprint(durable.engine()));
        generations.push(durable.engine().mkb().generation());
        if checkpoint_at == Some(i) {
            durable.checkpoint().unwrap();
        }
    }
    // Crash: drop the in-memory engine. Only the fsync'd files survive.
    drop(durable);
    (states, generations)
}

/// The newest `.evl` segment in a store directory.
fn active_segment(dir: &std::path::Path) -> PathBuf {
    eve_bench::experiments::durability::active_segment(dir)
        .unwrap()
        .expect("store has a segment")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
    ))]

    /// Crash after an arbitrary number of fully-fsync'd batches: recovery
    /// reproduces the exact state the engine had when it died.
    #[test]
    fn recovery_is_byte_identical_at_every_batch_boundary(
        seed in 0u64..1_000_000,
        sites in 2u32..4,
        op_count in 8usize..32,
    ) {
        let dir = scratch_dir("boundary");
        let (states, _) = run_durable(&dir, sites, op_count, 4, seed, None);
        let (recovered, report) = DurableEngine::open(&dir).unwrap();
        prop_assert_eq!(report.torn_bytes_truncated, 0);
        let k = report.snapshot_seq.unwrap_or(0) + report.replayed_records;
        prop_assert_eq!(
            &fingerprint(recovered.engine()),
            &states[usize::try_from(k).unwrap()]
        );
        prop_assert_eq!(usize::try_from(k).unwrap(), states.len() - 1, "nothing was lost");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash at a random *byte* of the active segment (torn final write):
    /// recovery truncates the partial frame and lands exactly on the state
    /// after the last intact record — never a corrupted in-between.
    #[test]
    fn torn_tail_recovery_matches_surviving_prefix(
        seed in 0u64..1_000_000,
        cut_fraction in 0.0f64..1.0,
        checkpoint in prop::option::of(0usize..4),
    ) {
        let dir = scratch_dir("torn");
        let (states, _) = run_durable(&dir, 2, 20, 4, seed, checkpoint);
        // Tear the log: truncate the active segment at a random byte
        // offset past its 16-byte header.
        let segment = active_segment(&dir);
        let len = std::fs::metadata(&segment).unwrap().len();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = 16 + ((len.saturating_sub(16)) as f64 * cut_fraction) as u64;
        let file = std::fs::OpenOptions::new().write(true).open(&segment).unwrap();
        file.set_len(cut).unwrap();
        file.sync_all().unwrap();
        drop(file);

        let (recovered, report) = DurableEngine::open(&dir).unwrap();
        let k = usize::try_from(report.snapshot_seq.unwrap_or(0) + report.replayed_records).unwrap();
        prop_assert!(k < states.len());
        prop_assert_eq!(
            &fingerprint(recovered.engine()),
            &states[k],
            "after cutting the log at byte {} the recovered state must be the {}-record prefix",
            cut, k
        );

        // Recovered engines answer queries like their uncrashed twins: a
        // live re-evaluation of each installed definition produces the
        // same bag as the recovered materialized extent (incremental
        // maintenance and fresh evaluation may order the bag differently,
        // so compare as multisets).
        for mv in recovered.engine().views() {
            let mut re_evaluated = recovered.engine().evaluate(&mv.def).unwrap().tuples().to_vec();
            let mut materialized = mv.extent.tuples().to_vec();
            re_evaluated.sort();
            materialized.sort();
            prop_assert_eq!(re_evaluated, materialized, "{}", &mv.def.name);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `open_at(g)` reconstructs exactly the state a fresh engine reaches
    /// by replaying every operation whose post-generation is ≤ g.
    #[test]
    fn open_at_matches_fresh_replay_to_generation(
        seed in 0u64..1_000_000,
        pick in 0usize..1000,
        checkpoint in prop::option::of(0usize..4),
    ) {
        let dir = scratch_dir("travel");
        let (states, generations) = run_durable(&dir, 2, 20, 4, seed, checkpoint);
        // Pick an observed generation; travel must land on the *last*
        // batch boundary whose generation does not exceed it.
        let target = generations[pick % generations.len()];
        let expected_idx = generations
            .iter()
            .rposition(|&g| g <= target)
            .unwrap();
        let travelled = DurableEngine::open_at(&dir, target).unwrap();
        prop_assert_eq!(
            &fingerprint(&travelled),
            &states[expected_idx],
            "open_at({}) must match the replay prefix through batch {}",
            target, expected_idx
        );
        prop_assert!(travelled.mkb().generation() <= target);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The tier-1 crash-recovery smoke CI runs by name: write ops, kill the
/// engine, corrupt the tail, recover, diff — end to end in one test.
#[test]
fn crash_recovery_smoke() {
    let dir = scratch_dir("smoke");
    let (states, _) = run_durable(&dir, 3, 40, 5, 2024, Some(2));

    // A clean kill first: recovery must land on the final state.
    let (recovered, report) = DurableEngine::open(&dir).unwrap();
    assert_eq!(report.torn_bytes_truncated, 0);
    assert_eq!(fingerprint(recovered.engine()), *states.last().unwrap());
    drop(recovered);

    // Now a torn write: chop 3 bytes off the active segment and recover
    // again — one record rolls back, nothing else.
    let segment = active_segment(&dir);
    let len = std::fs::metadata(&segment).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(len - 3).unwrap();
    file.sync_all().unwrap();
    drop(file);
    let (recovered, report) = DurableEngine::open(&dir).unwrap();
    assert!(report.torn_bytes_truncated > 0);
    assert_eq!(
        fingerprint(recovered.engine()),
        states[states.len() - 2],
        "exactly the torn record rolled back"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Compaction keeps recovery exact while bounding the log.
#[test]
fn compaction_preserves_recovery() {
    let dir = scratch_dir("compact");
    let (engine, ops) = batch_pipeline::build_workload(2, 24, 9).unwrap();
    let mut durable = DurableEngine::create_with(&dir, engine).unwrap();
    for batch in into_batches(ops, 4) {
        durable.apply_batch(batch).unwrap();
    }
    durable.checkpoint().unwrap();
    durable.compact().unwrap();
    let expected = fingerprint(durable.engine());
    drop(durable);
    let (recovered, report) = DurableEngine::open(&dir).unwrap();
    assert_eq!(fingerprint(recovered.engine()), expected);
    assert_eq!(report.replayed_records, 0, "recovery is pure snapshot load");
    std::fs::remove_dir_all(&dir).ok();
}
