//! End-to-end engine scenarios spanning all crates: multiple views, mixed
//! update/change streams, strategy effects, and maintenance consistency.

use eve::misd::{
    AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve::qc::SelectionStrategy;
use eve::relational::{tup, DataType, Relation, Schema, Tuple};
use eve::system::{DataUpdate, EveEngine};

fn text(name: &str) -> AttributeInfo {
    AttributeInfo::new(name, DataType::Text)
}

fn int(name: &str) -> AttributeInfo {
    AttributeInfo::new(name, DataType::Int)
}

/// Builds a three-source retail space: Orders (site 1), Items (site 2),
/// ItemsMirror ⊇ Items (site 3).
fn retail_engine() -> EveEngine {
    let mut e = EveEngine::new();
    e.add_site(SiteId(1), "orders").unwrap();
    e.add_site(SiteId(2), "items").unwrap();
    e.add_site(SiteId(3), "mirror").unwrap();

    e.register_relation(
        RelationInfo::new(
            "Orders",
            SiteId(1),
            vec![int("Id"), text("Item"), int("Qty")],
            4,
        ),
        Relation::with_tuples(
            "Orders",
            Schema::of(&[
                ("Id", DataType::Int),
                ("Item", DataType::Text),
                ("Qty", DataType::Int),
            ])
            .unwrap(),
            vec![
                tup![1, "apple", 3],
                tup![2, "pear", 1],
                tup![3, "apple", 2],
                tup![4, "plum", 9],
            ],
        )
        .unwrap(),
    )
    .unwrap();

    let items_rows = vec![tup!["apple", 10], tup!["pear", 20], tup!["plum", 30]];
    e.register_relation(
        RelationInfo::new("Items", SiteId(2), vec![text("Name"), int("Price")], 3),
        Relation::with_tuples(
            "Items",
            Schema::of(&[("Name", DataType::Text), ("Price", DataType::Int)]).unwrap(),
            items_rows.clone(),
        )
        .unwrap(),
    )
    .unwrap();

    let mut mirror_rows = items_rows;
    mirror_rows.push(tup!["quince", 40]);
    e.register_relation(
        RelationInfo::new(
            "ItemsMirror",
            SiteId(3),
            vec![text("Label"), int("Cost")],
            4,
        ),
        Relation::with_tuples(
            "ItemsMirror",
            Schema::of(&[("Label", DataType::Text), ("Cost", DataType::Int)]).unwrap(),
            mirror_rows,
        )
        .unwrap(),
    )
    .unwrap();
    e.mkb_mut()
        .add_pc_constraint(PcConstraint::new(
            PcSide::projection("Items", &["Name", "Price"]),
            PcRelationship::Subset,
            PcSide::projection("ItemsMirror", &["Label", "Cost"]),
        ))
        .unwrap();
    e
}

const PRICED_ORDERS: &str = "CREATE VIEW PricedOrders (VE = '>=') AS \
    SELECT O.Id, O.Item, I.Price (AR = true) \
    FROM Orders O, Items I (RR = true) \
    WHERE O.Item = I.Name";

#[test]
fn multiple_views_share_update_stream() {
    let mut e = retail_engine();
    e.define_view_sql(PRICED_ORDERS).unwrap();
    e.define_view_sql(
        "CREATE VIEW BigOrders (VE = '~') AS \
         SELECT O.Id, O.Qty FROM Orders O WHERE O.Qty > 2",
    )
    .unwrap();

    let traces = e
        .notify_data_update(&DataUpdate::insert("Orders", vec![tup![5, "pear", 7]]))
        .unwrap();
    assert_eq!(traces.len(), 2);
    // Both views gained a row.
    for (name, trace) in &traces {
        assert_eq!(trace.view_inserts, 1, "{name}");
    }
    assert!(e.view("BigOrders").unwrap().extent.contains(&tup![5, 7]));
    assert!(e
        .view("PricedOrders")
        .unwrap()
        .extent
        .contains(&tup![5, "pear", 20]));
}

#[test]
fn incremental_maintenance_tracks_recomputation_across_mixed_stream() {
    let mut e = retail_engine();
    e.define_view_sql(PRICED_ORDERS).unwrap();
    let updates = [
        DataUpdate::insert("Orders", vec![tup![5, "quince", 1]]), // no price yet
        DataUpdate::insert("Items", vec![tup!["quince", 40]]),    // now it joins 5
        DataUpdate::delete("Orders", vec![tup![2, "pear", 1]]),
        DataUpdate::insert("Orders", vec![tup![6, "apple", 5]]),
    ];
    for u in &updates {
        e.notify_data_update(u).unwrap();
    }
    let maintained = e.view("PricedOrders").unwrap().extent.clone();
    let recomputed = e.evaluate(&e.view("PricedOrders").unwrap().def).unwrap();
    let mut a: Vec<Tuple> = maintained.tuples().to_vec();
    let mut b: Vec<Tuple> = recomputed.tuples().to_vec();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    // Note: the quince order joins only after the item appears.
    assert!(maintained.contains(&tup![5, "quince", 40]));
    assert!(!maintained.contains(&tup![2, "pear", 20]));
}

#[test]
fn capability_change_preserves_subsequent_maintenance() {
    let mut e = retail_engine();
    e.define_view_sql(PRICED_ORDERS).unwrap();
    // Items shuts down; the mirror takes over (superset — legal for VE ⊇).
    let reports = e
        .notify_capability_change(
            &SchemaChange::DeleteRelation {
                relation: "Items".into(),
            },
            None,
        )
        .unwrap();
    assert!(reports[0].survived);
    let def = e.view("PricedOrders").unwrap().def.clone();
    assert!(def.from.iter().any(|f| f.relation == "ItemsMirror"));
    // Updates against the new source still maintain the view.
    e.notify_data_update(&DataUpdate::insert(
        "ItemsMirror",
        vec![tup!["rhubarb", 50]],
    ))
    .unwrap();
    e.notify_data_update(&DataUpdate::insert("Orders", vec![tup![7, "rhubarb", 2]]))
        .unwrap();
    assert!(e
        .view("PricedOrders")
        .unwrap()
        .extent
        .contains(&tup![7, "rhubarb", 50]));
    // And incremental still equals recomputation.
    let recomputed = e.evaluate(&e.view("PricedOrders").unwrap().def).unwrap();
    assert_eq!(
        e.view("PricedOrders").unwrap().extent.distinct().tuples(),
        recomputed.distinct().tuples()
    );
}

#[test]
fn strategies_can_disagree_and_qc_best_wins_on_score() {
    // A space where the quality-best and cost-best substitutes differ:
    // big mirror (superset, pricey to maintain) vs small subset cache.
    let mut e = retail_engine();
    e.add_site(SiteId(4), "cache").unwrap();
    e.register_relation(
        RelationInfo::new(
            "ItemsCache",
            SiteId(4),
            vec![text("CName"), int("CPrice")],
            2,
        ),
        Relation::with_tuples(
            "ItemsCache",
            Schema::of(&[("CName", DataType::Text), ("CPrice", DataType::Int)]).unwrap(),
            vec![tup!["apple", 10], tup!["pear", 20]],
        )
        .unwrap(),
    )
    .unwrap();
    e.mkb_mut()
        .add_pc_constraint(PcConstraint::new(
            PcSide::projection("ItemsCache", &["CName", "CPrice"]),
            PcRelationship::Subset,
            PcSide::projection("Items", &["Name", "Price"]),
        ))
        .unwrap();

    // VE '~' so both directions are legal.
    let view_sql = "CREATE VIEW PricedOrders (VE = '~') AS \
        SELECT O.Id, O.Item, I.Price (AR = true) \
        FROM Orders O, Items I (RR = true) \
        WHERE O.Item = I.Name";
    let change = SchemaChange::DeleteRelation {
        relation: "Items".into(),
    };

    let run = |strategy: SelectionStrategy| -> (String, f64) {
        let mut probe = retail_space_with_cache();
        probe.strategy = strategy;
        probe.define_view_sql(view_sql).unwrap();
        let reports = probe.notify_capability_change(&change, None).unwrap();
        let adopted = reports[0].adopted.as_ref().unwrap();
        let source = adopted
            .rewriting
            .view
            .from
            .iter()
            .find(|f| f.relation != "Orders")
            .unwrap()
            .relation
            .clone();
        (source, adopted.qc)
    };

    fn retail_space_with_cache() -> EveEngine {
        let mut e = retail_engine();
        e.add_site(SiteId(4), "cache").unwrap();
        e.register_relation(
            RelationInfo::new(
                "ItemsCache",
                SiteId(4),
                vec![text("CName"), int("CPrice")],
                2,
            ),
            Relation::with_tuples(
                "ItemsCache",
                Schema::of(&[("CName", DataType::Text), ("CPrice", DataType::Int)]).unwrap(),
                vec![tup!["apple", 10], tup!["pear", 20]],
            )
            .unwrap(),
        )
        .unwrap();
        e.mkb_mut()
            .add_pc_constraint(PcConstraint::new(
                PcSide::projection("ItemsCache", &["CName", "CPrice"]),
                PcRelationship::Subset,
                PcSide::projection("Items", &["Name", "Price"]),
            ))
            .unwrap();
        e
    }

    let (qc_source, qc_score) = run(SelectionStrategy::QcBest);
    let (cost_source, cost_score) = run(SelectionStrategy::CostOnly);
    let (quality_source, _) = run(SelectionStrategy::QualityOnly);
    // Quality-only prefers the larger (superset) mirror; cost-only the
    // smaller cache.
    assert_eq!(quality_source, "ItemsMirror");
    assert_eq!(cost_source, "ItemsCache");
    // QC-best never scores below any other strategy's pick.
    assert!(qc_score >= cost_score, "{qc_source} vs {cost_source}");
}

#[test]
fn dead_views_do_not_block_other_views() {
    let mut e = retail_engine();
    e.define_view_sql(PRICED_ORDERS).unwrap();
    // This one depends strictly on Orders only.
    e.define_view_sql("CREATE VIEW JustQty (VE = '~') AS SELECT O.Qty FROM Orders O")
        .unwrap();
    // Orders disappears: PricedOrders (strict Orders) and JustQty both die…
    let reports = e
        .notify_capability_change(
            &SchemaChange::DeleteRelation {
                relation: "Orders".into(),
            },
            None,
        )
        .unwrap();
    assert_eq!(reports.len(), 2);
    for r in &reports {
        assert!(r.affected);
        assert!(!r.survived, "{}", r.view_name);
    }
    assert!(e.view("PricedOrders").is_err());
    assert!(e.view("JustQty").is_err());
    // …but the engine remains usable.
    e.define_view_sql("CREATE VIEW Prices (VE = '~') AS SELECT I.Price FROM Items I")
        .unwrap();
    assert_eq!(e.view("Prices").unwrap().extent.cardinality(), 3);
}

#[test]
fn attribute_rename_is_transparent_to_users() {
    let mut e = retail_engine();
    e.define_view_sql(PRICED_ORDERS).unwrap();
    let before = e.view("PricedOrders").unwrap().extent.clone();
    let reports = e
        .notify_capability_change(
            &SchemaChange::RenameAttribute {
                relation: "Items".into(),
                from: "Price".into(),
                to: "UnitPrice".into(),
            },
            None,
        )
        .unwrap();
    assert!(reports[0].survived);
    let after = e.view("PricedOrders").unwrap();
    // Same data, same interface.
    assert_eq!(after.extent.distinct().tuples(), before.distinct().tuples());
    assert_eq!(after.def.output_columns(), vec!["Id", "Item", "Price"]);
}

#[test]
fn engine_rejects_malformed_registrations_and_views() {
    let mut e = retail_engine();

    // Unknown relation in a view definition.
    let err = e
        .define_view_sql("CREATE VIEW V AS SELECT Z.A FROM Zilch Z")
        .unwrap_err();
    assert!(err.to_string().contains("Zilch"), "{err}");

    // Extent arity mismatching the declared attributes.
    let err = e
        .register_relation(
            RelationInfo::new("Short", SiteId(1), vec![int("A"), int("B")], 4),
            Relation::empty("Short", Schema::of(&[("A", DataType::Int)]).unwrap()),
        )
        .unwrap_err();
    assert!(err.to_string().contains("has 1 columns"), "{err}");
    assert!(
        !e.mkb().has_relation("Short"),
        "failed registration must not leak into the MKB"
    );

    // Extent column type mismatching the declaration.
    let err = e
        .register_relation(
            RelationInfo::new("Typed", SiteId(1), vec![int("A")], 4),
            Relation::empty("Typed", Schema::of(&[("A", DataType::Text)]).unwrap()),
        )
        .unwrap_err();
    assert!(err.to_string().contains("declared"), "{err}");

    // Duplicate view name.
    e.define_view_sql("CREATE VIEW Dup AS SELECT I.Price FROM Items I")
        .unwrap();
    let err = e
        .define_view_sql("CREATE VIEW Dup AS SELECT I.Name FROM Items I")
        .unwrap_err();
    assert!(err.to_string().contains("already defined"), "{err}");
    // The original survives untouched.
    assert_eq!(e.view("Dup").unwrap().def.output_columns(), vec!["Price"]);

    // Unknown attribute against the MKB.
    let err = e
        .define_view_sql("CREATE VIEW V AS SELECT I.Ghost FROM Items I")
        .unwrap_err();
    assert!(err.to_string().contains("no attribute"), "{err}");

    // Unknown attribute referenced only in WHERE.
    let err = e
        .define_view_sql("CREATE VIEW V AS SELECT I.Price FROM Items I WHERE I.Ghost > 1")
        .unwrap_err();
    assert!(err.to_string().contains("no attribute"), "{err}");
}
