//! Seeded random soak test: a full EVE engine under a random stream of data
//! updates and capability changes, with system-level invariants checked
//! after every event:
//!
//! * every materialized extent equals a fresh recomputation of its view,
//! * every surviving view definition still validates against the MKB,
//! * the MKB stays consistent (no dangling constraint references),
//! * the engine never panics or corrupts state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eve::misd::{
    AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve::relational::{DataType, Relation, Schema, Tuple, Value};
use eve::system::{DataUpdate, EveEngine};

const ATTRS: [&str; 3] = ["K", "P", "Q"];

fn schema() -> Schema {
    Schema::of(&[
        ("K", DataType::Int),
        ("P", DataType::Int),
        ("Q", DataType::Int),
    ])
    .unwrap()
}

fn random_rows(rng: &mut StdRng, n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|_| {
            Tuple::new(vec![
                Value::Int(rng.gen_range(0..30)),
                Value::Int(rng.gen_range(0..10)),
                Value::Int(rng.gen_range(0..10)),
            ])
        })
        .collect()
}

/// Builds a random information space: `n_rel` relations over `n_site` sites
/// with equivalence/containment constraints among same-shape relations.
fn random_engine(rng: &mut StdRng, n_sites: u32, n_rels: usize) -> EveEngine {
    let mut e = EveEngine::new();
    for i in 1..=n_sites {
        e.add_site(SiteId(i), format!("site{i}")).unwrap();
    }
    for r in 0..n_rels {
        let site = SiteId(rng.gen_range(1..=n_sites));
        let card = rng.gen_range(5..25usize);
        let name = format!("T{r}");
        e.register_relation(
            RelationInfo::new(
                &name,
                site,
                ATTRS
                    .iter()
                    .map(|a| AttributeInfo::new(*a, DataType::Int))
                    .collect(),
                card as u64,
            ),
            Relation::with_tuples(&name, schema(), random_rows(rng, card)).unwrap(),
        )
        .unwrap();
    }
    // Random PC constraints between distinct relations (metadata only; the
    // soak test does not rely on them being realized by the data — adopted
    // rewritings are re-materialized, not patched).
    for _ in 0..n_rels {
        let a = rng.gen_range(0..n_rels);
        let b = rng.gen_range(0..n_rels);
        if a == b {
            continue;
        }
        let rel = match rng.gen_range(0..3u8) {
            0 => PcRelationship::Subset,
            1 => PcRelationship::Superset,
            _ => PcRelationship::Equivalent,
        };
        let _ = e.mkb_mut().add_pc_constraint(PcConstraint::new(
            PcSide::projection(format!("T{a}"), &ATTRS),
            rel,
            PcSide::projection(format!("T{b}"), &ATTRS),
        ));
    }
    e
}

fn define_random_views(e: &mut EveEngine, rng: &mut StdRng, n_rels: usize, n_views: usize) {
    for v in 0..n_views {
        let a = rng.gen_range(0..n_rels);
        let b = rng.gen_range(0..n_rels);
        let sql = if a == b || rng.gen_bool(0.4) {
            format!(
                "CREATE VIEW V{v} (VE = '~') AS \
                 SELECT X.K (AD = true, AR = true), X.P (AD = true) \
                 FROM T{a} X (RR = true) \
                 WHERE X.Q > 4 (CD = true)"
            )
        } else {
            format!(
                "CREATE VIEW V{v} (VE = '~') AS \
                 SELECT X.K (AD = true, AR = true), Y.P AS YP (AD = true, AR = true) \
                 FROM T{a} X (RR = true), T{b} Y (RR = true) \
                 WHERE X.K = Y.K"
            )
        };
        e.define_view_sql(&sql).unwrap();
    }
}

fn assert_invariants(e: &EveEngine) {
    // MKB consistent.
    let problems = eve::misd::evolver::check_consistency(e.mkb());
    assert!(problems.is_empty(), "MKB inconsistent: {problems:?}");
    // Every extent equals recomputation; every definition still validates.
    for mv in e.views() {
        e.check_view(&mv.def)
            .unwrap_or_else(|err| panic!("view {} invalid: {err}", mv.def.name));
        let recomputed = e.evaluate(&mv.def).unwrap();
        let mut a = mv.extent.tuples().to_vec();
        let mut b = recomputed.tuples().to_vec();
        a.sort();
        b.sort();
        assert_eq!(
            a, b,
            "extent of {} diverged from recomputation",
            mv.def.name
        );
    }
}

fn run_soak(seed: u64, events: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_sites = rng.gen_range(2..5u32);
    let n_rels = rng.gen_range(4..8usize);
    let mut e = random_engine(&mut rng, n_sites, n_rels);
    define_random_views(&mut e, &mut rng, n_rels, 3);
    assert_invariants(&e);

    let mut live_rels: Vec<String> = (0..n_rels).map(|r| format!("T{r}")).collect();
    let mut fresh = 0usize;
    for step in 0..events {
        if live_rels.is_empty() {
            break;
        }
        let pick = live_rels[rng.gen_range(0..live_rels.len())].clone();
        match rng.gen_range(0..10u8) {
            // Mostly data updates (the paper's frequency assumption, §6.1).
            0..=5 => {
                let n = rng.gen_range(1..3);
                let inserts = random_rows(&mut rng, n);
                // Views referencing the relation twice reject incremental
                // maintenance; that surfaces as an error, never corruption.
                let _ = e.notify_data_update(&DataUpdate::insert(&pick, inserts));
            }
            6 => {
                // Delete a random existing tuple (if any).
                let victim = {
                    let info = e.mkb().relation(&pick).unwrap();
                    let site = info.site;
                    let _ = site;
                    e.evaluate(
                        &eve::esql::parse_view(&format!(
                            "CREATE VIEW Probe AS SELECT X.K, X.P, X.Q FROM {pick} X"
                        ))
                        .unwrap(),
                    )
                    .ok()
                    .and_then(|rel| rel.tuples().first().cloned())
                };
                if let Some(t) = victim {
                    let _ = e.notify_data_update(&DataUpdate::delete(&pick, vec![t]));
                }
            }
            7 => {
                // Delete an attribute (P — dispensable in the views).
                let change = SchemaChange::DeleteAttribute {
                    relation: pick.clone(),
                    attribute: "P".into(),
                };
                if e.mkb().relation(&pick).is_ok_and(|r| r.has_attribute("P")) {
                    e.notify_capability_change(&change, None).unwrap();
                }
            }
            8 => {
                // Delete the whole relation.
                let change = SchemaChange::DeleteRelation {
                    relation: pick.clone(),
                };
                e.notify_capability_change(&change, None).unwrap();
                live_rels.retain(|r| r != &pick);
            }
            _ => {
                // A new relation appears, equivalent to an existing one.
                fresh += 1;
                let name = format!("N{fresh}");
                let card = rng.gen_range(5..15usize);
                let site = SiteId(rng.gen_range(1..=n_sites));
                e.notify_capability_change(
                    &SchemaChange::AddRelation {
                        relation: RelationInfo::new(
                            &name,
                            site,
                            ATTRS
                                .iter()
                                .map(|a| AttributeInfo::new(*a, DataType::Int))
                                .collect(),
                            card as u64,
                        ),
                    },
                    Some(
                        Relation::with_tuples(&name, schema(), random_rows(&mut rng, card))
                            .unwrap(),
                    ),
                )
                .unwrap();
                if e.mkb()
                    .relation(&pick)
                    .is_ok_and(|r| r.attributes.len() == 3)
                {
                    let _ = e.mkb_mut().add_pc_constraint(PcConstraint::new(
                        PcSide::projection(&pick, &ATTRS),
                        PcRelationship::Equivalent,
                        PcSide::projection(&name, &ATTRS),
                    ));
                }
                live_rels.push(name);
            }
        }
        assert_invariants(&e);
        let _ = step;
    }
    // A final rebalancing pass must also preserve all invariants.
    let _ = e.rebalance_views();
    assert_invariants(&e);
}

// The soak suite is long-running and excluded from the default (tier-1)
// run; execute it with `cargo test --test soak -- --ignored`.
#[test]
#[ignore = "long-running soak; run with `cargo test --test soak -- --ignored`"]
fn soak_seed_1() {
    run_soak(1, 40);
}

#[test]
#[ignore = "long-running soak; run with `cargo test --test soak -- --ignored`"]
fn soak_seed_2() {
    run_soak(2, 40);
}

#[test]
#[ignore = "long-running soak; run with `cargo test --test soak -- --ignored`"]
fn soak_seed_3() {
    run_soak(3, 40);
}

#[test]
#[ignore = "long-running soak; run with `cargo test --test soak -- --ignored`"]
fn soak_many_short_runs() {
    for seed in 10..30 {
        run_soak(seed, 12);
    }
}

/// The batched pipeline's acceptance bar: on the 50-site / 200-op
/// workload, `apply_batch` must be at least 2× faster than op-by-op
/// application. Wall-clock-dependent, hence soak-only (the equivalence of
/// the two arms is pinned deterministically by the differential property
/// suite in `tests/properties.rs`). Measured headroom is ~4× even on a
/// single core, so the 2× gate absorbs slow CI machines.
#[test]
#[ignore = "wall-clock assertion; run with `cargo test --test soak -- --ignored`"]
fn batched_pipeline_is_at_least_twice_as_fast_as_sequential() {
    use eve_bench::experiments::batch_pipeline;
    // Warm up allocator/code paths so the first measurement is not biased.
    batch_pipeline::compare(5, 20, 1).unwrap();
    let mut best = 0.0f64;
    for seed in [2024, 7, 99] {
        let report = batch_pipeline::compare(50, 200, seed).unwrap();
        assert_eq!(report.ops, 200);
        best = best.max(report.speedup);
    }
    assert!(
        best >= 2.0,
        "batched pipeline speedup {best:.2}x below the 2x acceptance bar"
    );
}

/// The physical planner's acceptance bar: on the wide-join workload —
/// adversarial FROM order, a quadratic intermediate the naive
/// left-to-right fold materializes and the planner's greedy join
/// reordering avoids — planned execution must be at least 3× faster than
/// the naive evaluator. Wall-clock-dependent, hence soak-only (bag
/// equality of the two arms is asserted inside `view_exec::run` and pinned
/// deterministically by `tests/properties.rs` and
/// `crates/relational/tests/plan_props.rs`). Measured headroom is ~30×,
/// so the 3× gate absorbs slow CI machines.
#[test]
#[ignore = "wall-clock assertion; run with `cargo test --test soak -- --ignored`"]
fn planned_view_execution_is_at_least_3x_faster_than_naive_on_wide_joins() {
    use eve_bench::experiments::view_exec;
    // Warm up allocator/code paths so the first measurement is not biased.
    let warmup = view_exec::wide_join(300).unwrap();
    view_exec::run(&warmup, 1).unwrap();

    let workload = view_exec::wide_join(1500).unwrap();
    let mut best = 0.0f64;
    for _ in 0..3 {
        let row = view_exec::run(&workload, 3).unwrap();
        best = best.max(row.speedup);
    }
    assert!(
        best >= 3.0,
        "planned execution speedup {best:.2}x below the 3x acceptance bar"
    );
}

/// Durability soak: a long random-crash-point recovery loop. Each
/// iteration drives a seeded multi-site workload through a durable
/// engine, crashes it at a random byte of the active log segment (torn
/// final write included), recovers, and requires the recovered engine to
/// be byte-identical to the per-record state trajectory captured before
/// the crash. Complements the bounded-case differential suite in
/// `tests/durability.rs` with volume.
/// Group-commit soak: 40 seeds of *concurrent* appenders racing through
/// the group-commit writer, then a crash — on odd seeds additionally a
/// torn final write. Every acknowledged record was fsync'd inside some
/// batch, so recovery must hand back records at exactly the sequence
/// numbers their commit tickets reported, byte-identical, with no record
/// surviving partially. Complements the deterministic queued-follower
/// proptests in `tests/durability.rs` with scheduling volume.
#[test]
#[ignore = "long-running soak; run with `cargo test --test soak -- --ignored`"]
fn group_commit_concurrent_crash_recovery_loop() {
    use eve::relational::tup;
    use eve::store::{EvolutionStore, GroupCommitLog, GroupCommitPolicy, LogRecord, SealedRecord};
    use eve::sync::EvolutionOp;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    for seed in 200u64..240 {
        let dir = std::env::temp_dir().join(format!(
            "eve-soak-group-commit-{}-{seed}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = EvolutionStore::create(&dir).unwrap();
        let log = GroupCommitLog::new(store, GroupCommitPolicy::default());
        let threads = 2 + usize::try_from(seed % 7).unwrap();
        let per_thread = 10 + usize::try_from(seed % 23).unwrap();
        let acked: Mutex<BTreeMap<u64, Vec<u8>>> = Mutex::new(BTreeMap::new());

        std::thread::scope(|scope| {
            for t in 0..threads {
                let log = &log;
                let acked = &acked;
                scope.spawn(move || {
                    for k in 0..per_thread {
                        #[allow(clippy::cast_possible_wrap)]
                        let key = ((seed % 1000) * 1_000_000 + (t as u64) * 1000 + k as u64) as i64;
                        let record =
                            LogRecord::Batch(vec![EvolutionOp::insert("R", vec![tup![key]])]);
                        let seq = log.append_durable(0, record.clone()).unwrap();
                        let bytes = eve::store::to_bytes(&SealedRecord {
                            post_generation: 0,
                            record,
                        });
                        acked.lock().unwrap().insert(seq, bytes);
                    }
                });
            }
        });
        drop(log); // crash

        let total = threads * per_thread;
        if seed % 2 == 1 {
            // Torn final write on top of the crash.
            let active = eve_bench::experiments::durability::active_segment(&dir)
                .unwrap()
                .expect("store has a segment");
            let len = std::fs::metadata(&active).unwrap().len();
            let cut = 16 + (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (len - 16).max(1));
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&active)
                .unwrap();
            file.set_len(cut.min(len)).unwrap();
            file.sync_all().unwrap();
        }

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        let acked = acked.into_inner().unwrap();
        if seed % 2 == 1 {
            assert!(recovered.tail.len() <= total, "seed {seed}");
        } else {
            assert_eq!(
                recovered.tail.len(),
                total,
                "seed {seed}: every acknowledged record survives a clean crash"
            );
        }
        for (i, sealed) in recovered.tail.iter().enumerate() {
            assert_eq!(
                &eve::store::to_bytes(sealed),
                acked
                    .get(&(i as u64))
                    .expect("recovered seq was acknowledged"),
                "seed {seed}: record at seq {i} must byte-match its acknowledged content"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
#[ignore = "long-running soak; run with `cargo test --test soak -- --ignored`"]
fn durability_random_crash_point_recovery_loop() {
    use eve::system::DurableEngine;
    use eve_bench::experiments::batch_pipeline;
    use eve_bench::experiments::durability::{active_segment, fingerprint, into_batches};
    for seed in 100u64..140 {
        let dir =
            std::env::temp_dir().join(format!("eve-soak-durability-{}-{seed}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (engine, ops) = batch_pipeline::build_workload(4, 60, seed).unwrap();
        let mut durable = DurableEngine::create_with(&dir, engine).unwrap();
        if seed % 3 == 0 {
            durable.snapshot_every = Some(3);
        }
        let mut states = vec![fingerprint(durable.engine())];
        for batch in into_batches(ops, 6) {
            durable.apply_batch(batch).unwrap();
            states.push(fingerprint(durable.engine()));
        }
        drop(durable); // crash

        // Random crash point: truncate the active segment mid-record.
        let active = active_segment(&dir).unwrap().expect("store has a segment");
        let len = std::fs::metadata(&active).unwrap().len();
        let cut = 16 + (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (len - 16).max(1));
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&active)
            .unwrap();
        file.set_len(cut.min(len)).unwrap();
        file.sync_all().unwrap();
        drop(file);

        let (recovered, report) = DurableEngine::open(&dir).unwrap();
        let k =
            usize::try_from(report.snapshot_seq.unwrap_or(0) + report.replayed_records).unwrap();
        assert!(k < states.len(), "seed {seed}: prefix index {k} in range");
        assert_eq!(
            fingerprint(recovered.engine()),
            states[k],
            "seed {seed}: recovered state must be the {k}-record prefix (cut at byte {cut})"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
