//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no registry access, so instead of the real
//! `rand` crate the workspace ships this deterministic stand-in. It provides:
//!
//! * [`rngs::StdRng`] — a seedable 64-bit PRNG (SplitMix64 core),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! * [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The distributions match rand's contracts (uniform over the range) but the
//! exact streams differ from the real crate; everything in this workspace
//! only relies on determinism per seed, not on a particular stream.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Rounding (notably the f64->f32 narrowing of `unit`) can
                // land exactly on the exclusive upper bound; keep the
                // half-open contract.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG (SplitMix64) standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(1..=6usize);
            assert!((1..=6).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
