//! Self-tests for the shim's runner: a failing property must fail the test,
//! and `prop_assume!` must filter cases without failing.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics(v in 10i64..20) {
        prop_assert!(v < 11, "got {v}");
    }

    #[test]
    fn assume_filters_without_failing(v in 0i64..100) {
        prop_assume!(v % 2 == 0);
        prop_assert!(v % 2 == 0);
    }

    #[test]
    fn tuples_ranges_and_strings_generate(
        (a, b) in (0usize..5, -3i64..3),
        s in "[A-Z][a-z]{1,5}(-[a-z]{1,4})?",
        flag in proptest::bool::ANY,
        v in prop::collection::vec(0u8..4, 2..6),
        opt in prop::option::of(0i32..10),
    ) {
        prop_assert!(a < 5 && (-3..3).contains(&b));
        prop_assert!(s.chars().next().unwrap().is_ascii_uppercase());
        let _: bool = flag;
        prop_assert!((2..6).contains(&v.len()) && v.iter().all(|&x| x < 4));
        if let Some(x) = opt {
            prop_assert!((0..10).contains(&x));
        }
    }

    #[test]
    fn oneof_and_filter_compose(
        pick in prop_oneof![Just(1u8), Just(2u8), Just(3u8)],
        odd in (0i64..100).prop_filter("odd", |v| v % 2 == 1),
    ) {
        prop_assert!((1..=3).contains(&pick));
        prop_assert_eq!(odd % 2, 1);
        prop_assert_ne!(odd % 2, 0);
    }
}
