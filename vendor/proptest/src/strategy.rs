//! The [`Strategy`] trait and core combinators.
//!
//! A strategy here is just a deterministic generator: `generate` draws one
//! value from the shim's seeded [`TestRng`]. There is no shrinking.

use crate::string::StringPattern;
use crate::test_runner::TestRng;

/// Generates values of an associated type from a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` (proptest's `prop_filter`).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Dependent generation: draws a value, builds a new strategy from it,
    /// and draws from that (proptest's `prop_flat_map`).
    fn prop_flat_map<T, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        T: Strategy,
        F: Fn(Self::Value) -> T,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter (rejection sampling with a hard retry cap).
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        )
    }
}

/// `prop_flat_map` adapter (dependent generation).
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy (clonable; proptest's `BoxedStrategy`).
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges.
// ---------------------------------------------------------------------

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Rounding (notably the f64->f32 narrowing of `unit`) can
                // land exactly on the exclusive upper bound; keep the
                // half-open contract.
                if v < self.end {
                    v
                } else {
                    self.start
                }
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

// ---------------------------------------------------------------------
// Regex-pattern string strategies: `"[A-Z][a-z]{1,5}"` as a strategy.
// ---------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        thread_local! {
            static COMPILED: std::cell::RefCell<std::collections::HashMap<&'static str, StringPattern>> =
                std::cell::RefCell::new(std::collections::HashMap::new());
        }
        COMPILED.with(|cache| {
            cache
                .borrow_mut()
                .entry(self)
                .or_insert_with(|| {
                    StringPattern::compile(self)
                        .unwrap_or_else(|e| panic!("bad string strategy pattern {self:?}: {e}"))
                })
                .generate(rng)
        })
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies.
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
