//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
