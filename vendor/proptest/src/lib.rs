//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no registry access, so this crate stands in for
//! the real `proptest`. It keeps the same surface syntax — the [`proptest!`]
//! macro, `prop_assert*` macros, [`strategy::Strategy`] with `prop_map`,
//! `prop_oneof!`, `Just`, `any::<T>()`, regex-string strategies,
//! `prop::collection::vec` and `prop::option::of` — backed by a simple
//! seeded generator **without shrinking**: a failing case panics with the
//! case's seed so it can be replayed deterministically.
//!
//! Case counts honour the `PROPTEST_CASES` environment variable, which
//! overrides every suite's `ProptestConfig::with_cases(..)` value; this is
//! the tier-1 lever keeping property runs fast (see README).

pub mod bool;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod arbitrary;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Alias so `prop::collection::vec(..)` etc. resolve, as in proptest.
    pub use crate as prop;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest!` block: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` seeded iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            let mut seed = $crate::test_runner::base_seed(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < cases {
                attempts += 1;
                assert!(
                    attempts <= cases.saturating_mul(20).max(1000),
                    "proptest: too many rejected cases (prop_assume) in {}",
                    stringify!($name)
                );
                seed = $crate::test_runner::next_seed(seed);
                let mut runner_rng = $crate::test_runner::TestRng::from_seed(seed);
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut runner_rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { { $body } ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest case failed in {} (case seed {seed:#x}): {message}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
}
