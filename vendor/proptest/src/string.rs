//! String generation from the regex subset used as proptest string
//! strategies in this workspace.
//!
//! Supported syntax: literal characters, character classes `[...]` (with
//! `a-z` ranges and a trailing or leading literal `-`), groups `(...)` with
//! alternation `|`, and the quantifiers `?`, `*`, `+`, `{n}`, `{n,m}`.
//! Unbounded quantifiers are capped at 8 repetitions.

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

/// One parsed regex element.
#[derive(Debug, Clone)]
enum Node {
    /// A literal character.
    Literal(char),
    /// A character class: the flattened set of candidate characters.
    Class(Vec<char>),
    /// A group of alternatives, each a sequence.
    Group(Vec<Vec<Node>>),
    /// A repeated node with inclusive bounds.
    Repeat(Box<Node>, u32, u32),
}

/// A compiled pattern: a sequence of nodes.
#[derive(Debug, Clone)]
pub struct StringPattern {
    seq: Vec<Node>,
}

impl StringPattern {
    /// Compiles `pattern`, failing on syntax outside the supported subset.
    pub fn compile(pattern: &str) -> Result<StringPattern, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let alternatives = parse_alternatives(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("unexpected `{}` at {pos}", chars[pos]));
        }
        let seq = if alternatives.len() == 1 {
            alternatives.into_iter().next().unwrap()
        } else {
            vec![Node::Group(alternatives)]
        };
        Ok(StringPattern { seq })
    }

    /// Generates one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for node in &self.seq {
            emit(node, rng, &mut out);
        }
        out
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(set) => out.push(set[rng.below(set.len())]),
        Node::Group(alts) => {
            let alt = &alts[rng.below(alts.len())];
            for n in alt {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let n = lo + (rng.below((hi - lo + 1) as usize) as u32);
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

/// Parses `|`-separated sequences until end of input or an unmatched `)`.
fn parse_alternatives(chars: &[char], pos: &mut usize) -> Result<Vec<Vec<Node>>, String> {
    let mut alternatives = Vec::new();
    let mut current = Vec::new();
    while *pos < chars.len() {
        match chars[*pos] {
            ')' => break,
            '|' => {
                *pos += 1;
                alternatives.push(std::mem::take(&mut current));
            }
            _ => {
                let atom = parse_atom(chars, pos)?;
                current.push(parse_quantifier(chars, pos, atom)?);
            }
        }
    }
    alternatives.push(current);
    Ok(alternatives)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Node, String> {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            parse_class(chars, pos)
        }
        '(' => {
            *pos += 1;
            let alts = parse_alternatives(chars, pos)?;
            if *pos >= chars.len() || chars[*pos] != ')' {
                return Err("unclosed group".to_owned());
            }
            *pos += 1;
            Ok(Node::Group(alts))
        }
        '\\' => {
            *pos += 1;
            if *pos >= chars.len() {
                return Err("dangling escape".to_owned());
            }
            let c = chars[*pos];
            *pos += 1;
            Ok(Node::Literal(c))
        }
        '.' => {
            *pos += 1;
            Ok(Node::Class((' '..='~').collect()))
        }
        c @ ('?' | '*' | '+' | '{') => Err(format!("dangling quantifier `{c}`")),
        c => {
            *pos += 1;
            Ok(Node::Literal(c))
        }
    }
}

/// Parses the body of a `[...]` class, `pos` just past the `[`.
fn parse_class(chars: &[char], pos: &mut usize) -> Result<Node, String> {
    let mut set = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let c = if chars[*pos] == '\\' {
            *pos += 1;
            if *pos >= chars.len() {
                return Err("dangling escape in class".to_owned());
            }
            chars[*pos]
        } else {
            chars[*pos]
        };
        *pos += 1;
        // A `-` between two characters denotes a range; a leading/trailing
        // `-` is literal.
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            let hi = chars[*pos + 1];
            *pos += 2;
            if c > hi {
                return Err(format!("inverted class range {c}-{hi}"));
            }
            set.extend(c..=hi);
        } else {
            set.push(c);
        }
    }
    if *pos >= chars.len() {
        return Err("unclosed character class".to_owned());
    }
    *pos += 1; // consume `]`
    if set.is_empty() {
        return Err("empty character class".to_owned());
    }
    Ok(Node::Class(set))
}

/// Wraps `atom` in a repeat node when a quantifier follows.
fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Result<Node, String> {
    if *pos >= chars.len() {
        return Ok(atom);
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(atom), 0, 1))
        }
        '*' => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP))
        }
        '+' => {
            *pos += 1;
            Ok(Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP))
        }
        '{' => {
            *pos += 1;
            let mut lo = String::new();
            while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                lo.push(chars[*pos]);
                *pos += 1;
            }
            let lo: u32 = lo.parse().map_err(|_| "bad repetition count".to_owned())?;
            let hi = if *pos < chars.len() && chars[*pos] == ',' {
                *pos += 1;
                let mut hi = String::new();
                while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                    hi.push(chars[*pos]);
                    *pos += 1;
                }
                hi.parse().map_err(|_| "bad repetition count".to_owned())?
            } else {
                lo
            };
            if *pos >= chars.len() || chars[*pos] != '}' {
                return Err("unclosed repetition".to_owned());
            }
            *pos += 1;
            if lo > hi {
                return Err(format!("inverted repetition {{{lo},{hi}}}"));
            }
            Ok(Node::Repeat(Box::new(atom), lo, hi))
        }
        _ => Ok(atom),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &str) -> Vec<String> {
        let compiled = StringPattern::compile(pattern).unwrap();
        let mut rng = TestRng::from_seed(42);
        (0..200).map(|_| compiled.generate(&mut rng)).collect()
    }

    #[test]
    fn ident_pattern_shapes() {
        for s in gen_many("[A-Z][A-Za-z0-9_]{0,8}") {
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut it = s.chars();
            assert!(it.next().unwrap().is_ascii_uppercase());
            assert!(it.all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s:?}");
        }
    }

    #[test]
    fn hyphen_group_pattern() {
        for s in gen_many("[A-Z][a-z]{1,5}(-[a-z]{1,4})?") {
            let parts: Vec<&str> = s.split('-').collect();
            assert!(parts.len() <= 2, "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_class() {
        for s in gen_many("[ -~]{0,6}") {
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literal_prefix_kept() {
        for s in gen_many("CREATE VIEW [A-Z]{1,3} AS SELECT [a-z.,( ]{0,20}") {
            assert!(s.starts_with("CREATE VIEW "), "{s:?}");
            assert!(s.contains(" AS SELECT "), "{s:?}");
        }
    }

    #[test]
    fn class_with_literal_punctuation() {
        for s in gen_many("[a-z.,( ]{0,20}") {
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || ".,( ".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn alternation_in_groups() {
        for s in gen_many("(ab|cd)+") {
            assert!(!s.is_empty() && s.len() % 2 == 0, "{s:?}");
        }
    }
}
