//! `any::<T>()` support for the primitive types the workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Generates any value of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct Full<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Full<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = Full<$t>;

            fn arbitrary() -> Self::Strategy {
                Full(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Full<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Full<bool>;

    fn arbitrary() -> Self::Strategy {
        Full(core::marker::PhantomData)
    }
}
