//! Test-runner support types: configuration, case errors and the seeded RNG.

/// Per-suite configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Resolves the effective case count: the `PROPTEST_CASES` environment
/// variable overrides the suite's configured value (the tier-1 speed lever).
#[must_use]
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.trim().parse().unwrap_or(configured).max(1),
        Err(_) => configured.max(1),
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// An assertion failed; the property fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected (assumption-filtered) case.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next pseudo-random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Stable starting seed for a named property, perturbed by
/// `PROPTEST_RNG_SEED` when set (FNV-1a over the name).
#[must_use]
pub fn base_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
        if let Ok(v) = extra.trim().parse::<u64>() {
            h ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    h
}

/// Advances the per-case seed sequence (LCG step, full period mod 2^64).
#[must_use]
pub fn next_seed(seed: u64) -> u64 {
    seed.wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407)
}
