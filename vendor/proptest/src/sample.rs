//! `proptest::sample` shim: uniform selection from a fixed set.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly selects one element of a fixed, non-empty vector
/// (proptest's `sample::select`).
#[must_use]
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "sample::select needs options");
    Select { options }
}

/// The [`select`] strategy.
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].clone()
    }
}
