//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no registry access, so the six benches compile
//! against this stand-in. It implements real (if simple) wall-clock
//! measurement: each benchmark warms up, then times `sample_size` samples
//! and prints the mean/min/max per iteration to stdout.
//!
//! Set `CRITERION_SHIM_SAMPLES` to override every bench's sample count
//! (e.g. `CRITERION_SHIM_SAMPLES=1` for a smoke run).

use std::time::{Duration, Instant};

/// Benchmark driver, configured via builder methods.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(self, id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named benchmark parameter, displayed as part of the benchmark id.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// Id from the parameter alone (grouped benches).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benches `f` against `input` under the given id.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.text);
        let config = self.criterion.clone();
        run_one(&config, &full, &mut |b| f(b, input));
        self
    }

    /// Runs a plain benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        let config = self.criterion.clone();
        run_one(&config, &full, &mut |b| f(b));
        self
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` performs the timed runs.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if start.elapsed() >= self.warm_up {
                break;
            }
        }
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.results.push(t0.elapsed());
        }
    }
}

fn resolve_samples(configured: usize) -> usize {
    match std::env::var("CRITERION_SHIM_SAMPLES") {
        Ok(v) => v.trim().parse().unwrap_or(configured).max(1),
        Err(_) => configured,
    }
}

fn run_one(config: &Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: resolve_samples(config.sample_size),
        warm_up: config.warm_up_time,
        results: Vec::new(),
    };
    f(&mut bencher);
    if bencher.results.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    let total: Duration = bencher.results.iter().sum();
    let mean = total / u32::try_from(bencher.results.len()).unwrap_or(1);
    let min = bencher.results.iter().min().unwrap();
    let max = bencher.results.iter().max().unwrap();
    println!(
        "{id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        bencher.results.len()
    );
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
