//! The paper's motivating scenario (§1): a travel service aggregating
//! flight and hotel information from autonomous WWW sources.
//!
//! "It is likely that one of the participants in the system (e.g., an
//! airline company or a hotel chain) changes the type of services it
//! supports. This would cause our algorithms to generate a number of
//! suggestions for a new view query […] which would have to be compared
//! against each other."
//!
//! Here two airlines and two hotel chains register overlapping inventories;
//! the `AsiaTrips` package view survives an airline dropping its
//! reservation feed, with the QC-Model choosing between replacement feeds of
//! different size and placement. Run with `cargo run --example travel_agency`.

use eve::misd::{
    AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve::qc::SelectionStrategy;
use eve::relational::{tup, DataType, Relation, Schema};
use eve::system::EveEngine;

fn text_attr(name: &str) -> AttributeInfo {
    AttributeInfo::new(name, DataType::Text)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut eve = EveEngine::new();
    eve.add_site(SiteId(1), "pacific-air")?;
    eve.add_site(SiteId(2), "global-air")?;
    eve.add_site(SiteId(3), "lotus-hotels")?;
    eve.add_site(SiteId(4), "sakura-hotels")?;

    // Pacific Air: the primary flight feed.
    eve.register_relation(
        RelationInfo::new(
            "PacificFlights",
            SiteId(1),
            vec![text_attr("Passenger"), text_attr("City")],
            4,
        ),
        Relation::with_tuples(
            "PacificFlights",
            Schema::of(&[("Passenger", DataType::Text), ("City", DataType::Text)])?,
            vec![
                tup!["ann", "Tokyo"],
                tup!["bob", "Kyoto"],
                tup!["cho", "Tokyo"],
                tup!["dee", "Osaka"],
            ],
        )?,
    )?;

    // Global Air code-shares a superset of Pacific's bookings.
    eve.register_relation(
        RelationInfo::new(
            "GlobalFlights",
            SiteId(2),
            vec![text_attr("Traveller"), text_attr("Town")],
            6,
        ),
        Relation::with_tuples(
            "GlobalFlights",
            Schema::of(&[("Traveller", DataType::Text), ("Town", DataType::Text)])?,
            vec![
                tup!["ann", "Tokyo"],
                tup!["bob", "Kyoto"],
                tup!["cho", "Tokyo"],
                tup!["dee", "Osaka"],
                tup!["eli", "Tokyo"],
                tup!["fay", "Nara"],
            ],
        )?,
    )?;
    eve.mkb_mut().add_pc_constraint(PcConstraint::new(
        PcSide::projection("PacificFlights", &["Passenger", "City"]),
        PcRelationship::Subset,
        PcSide::projection("GlobalFlights", &["Traveller", "Town"]),
    ))?;

    // Two hotel chains; Lotus covers the cities Pacific flies to.
    eve.register_relation(
        RelationInfo::new(
            "LotusHotels",
            SiteId(3),
            vec![text_attr("HotelCity"), text_attr("Hotel")],
            4,
        ),
        Relation::with_tuples(
            "LotusHotels",
            Schema::of(&[("HotelCity", DataType::Text), ("Hotel", DataType::Text)])?,
            vec![
                tup!["Tokyo", "Lotus Ginza"],
                tup!["Kyoto", "Lotus Gion"],
                tup!["Osaka", "Lotus Namba"],
                tup!["Nara", "Lotus Park"],
            ],
        )?,
    )?;
    eve.register_relation(
        RelationInfo::new(
            "SakuraHotels",
            SiteId(4),
            vec![text_attr("Place"), text_attr("House")],
            2,
        ),
        Relation::with_tuples(
            "SakuraHotels",
            Schema::of(&[("Place", DataType::Text), ("House", DataType::Text)])?,
            vec![tup!["Tokyo", "Sakura East"], tup!["Kyoto", "Sakura River"]],
        )?,
    )?;
    eve.mkb_mut().add_pc_constraint(PcConstraint::new(
        PcSide::projection("SakuraHotels", &["Place"]),
        PcRelationship::Subset,
        PcSide::projection("LotusHotels", &["HotelCity"]),
    ))?;

    // The package view: who is flying where, and which hotel awaits them.
    let mv = eve.define_view_sql(
        "CREATE VIEW AsiaTrips (VE = '~') AS \
         SELECT P.Passenger, P.City (AR = true), L.Hotel (AD = true, AR = true) \
         FROM PacificFlights P (RR = true), LotusHotels L (RR = true) \
         WHERE P.City = L.HotelCity",
    )?;
    println!("AsiaTrips packages:\n{}", mv.extent);

    // Pacific Air discontinues its reservation feed.
    println!("== capability change: Pacific Air deletes PacificFlights ==");
    let reports = eve.notify_capability_change(
        &SchemaChange::DeleteRelation {
            relation: "PacificFlights".into(),
        },
        None,
    )?;
    let report = &reports[0];
    println!(
        "synchronizer produced {} legal rewriting(s); view survived: {}",
        report.candidates, report.survived
    );
    if let Some(adopted) = &report.adopted {
        println!(
            "QC-Model adopted (QC = {:.4}, extent {}):\n{}",
            adopted.qc, adopted.rewriting.extent, adopted.rewriting.view
        );
    }
    println!(
        "\nPackages now sourced from the code-share feed (superset — two new travellers appear):\n{}",
        eve.view("AsiaTrips")?.extent
    );

    // Compare selection strategies for the next change.
    println!("== strategy comparison for the Lotus Hotels shutdown ==");
    for strategy in [
        SelectionStrategy::QcBest,
        SelectionStrategy::FirstFound,
        SelectionStrategy::QualityOnly,
        SelectionStrategy::CostOnly,
    ] {
        let mut probe = eve.clone();
        probe.strategy = strategy;
        let reports = probe.notify_capability_change(
            &SchemaChange::DeleteRelation {
                relation: "LotusHotels".into(),
            },
            None,
        )?;
        let report = &reports[0];
        let choice = report
            .adopted
            .as_ref()
            .map(|a| {
                format!(
                    "{} (QC {:.4})",
                    a.rewriting
                        .view
                        .from
                        .iter()
                        .map(|f| f.relation.clone())
                        .collect::<Vec<_>>()
                        .join("⋈"),
                    a.qc
                )
            })
            .unwrap_or_else(|| "view dropped".to_owned());
        println!("{strategy:?}: {choice}");
    }
    Ok(())
}
