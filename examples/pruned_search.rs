//! The §8 future-work extensions in action: heuristic (pruned) view
//! synchronization and cost-driven view migration.
//!
//! A view over a relation with many replicas faces a deletion. The
//! exhaustive synchronizer scores every replica; the heuristic synchronizer
//! orders candidates by the §7.6 heuristics (few sites, close size) and
//! stops early — then a rebalancing pass later migrates the view to a
//! cheaper equivalent replica without any quality loss.
//!
//! Run with `cargo run --example pruned_search`.

use eve::misd::{
    AttributeInfo, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve::qc::{rank_rewritings, QcParams, WorkloadModel};
use eve::relational::DataType;
use eve::sync::{synchronize, synchronize_heuristic, HeuristicOptions, SyncOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An information space with one base relation and eight replicas of the
    // source relation, spread over sites with varying sizes.
    let mut mkb = Mkb::new();
    mkb.register_site(SiteId(1), "hub")?;
    let attrs = || {
        vec![
            AttributeInfo::sized("A", DataType::Int, 50),
            AttributeInfo::sized("B", DataType::Int, 50),
        ]
    };
    mkb.register_relation(RelationInfo::new("Base", SiteId(1), attrs(), 400))?;
    mkb.register_relation(RelationInfo::new("Source", SiteId(1), attrs(), 2000))?;
    for i in 0..8u32 {
        let site = SiteId(i / 2 + 2); // two replicas per site
        if mkb.site_of("Base").is_ok() && mkb.sites().all(|(s, _)| s != site) {
            mkb.register_site(site, format!("mirror-{}", i / 2))?;
        }
        let card = 1000 + u64::from(i) * 500; // 1000 … 4500
        let name = format!("Replica{i}");
        mkb.register_relation(RelationInfo::new(&name, site, attrs(), card))?;
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("Source", &["A", "B"]),
            if card >= 2000 {
                PcRelationship::Subset
            } else {
                PcRelationship::Superset
            },
            PcSide::projection(&name, &["A", "B"]),
        ))?;
    }

    let view = eve::esql::parse_view(
        "CREATE VIEW V (VE = '~') AS \
         SELECT Base.A, Source.B AS SB (AR = true) \
         FROM Base, Source (RR = true) \
         WHERE Base.A = Source.A",
    )?;
    let change = SchemaChange::DeleteRelation {
        relation: "Source".into(),
    };

    // Exhaustive search + full ranking.
    let full = synchronize(&view, &change, &mkb, &SyncOptions::default())?;
    let params = QcParams::default();
    let scored = rank_rewritings(
        &view,
        &full.rewritings,
        &mkb,
        &params,
        WorkloadModel::SingleUpdate,
    )?;
    println!("exhaustive: {} legal rewritings scored", scored.len());
    for s in scored.iter().take(3) {
        let target = s
            .rewriting
            .view
            .from
            .iter()
            .find(|f| f.relation != "Base")
            .map(|f| f.relation.as_str())
            .unwrap_or("?");
        println!(
            "  {target}: QC = {:.4} (DD {:.4}, cost* {:.2})",
            s.qc, s.divergence.dd, s.normalized_cost
        );
    }
    let best_target = scored[0]
        .rewriting
        .view
        .from
        .iter()
        .find(|f| f.relation != "Base")
        .map(|f| f.relation.clone())
        .unwrap_or_default();

    // Heuristic search: three candidates, never materializing the rest.
    let pruned = synchronize_heuristic(
        &view,
        &change,
        &mkb,
        &HeuristicOptions {
            max_candidates: 3,
            site_weight: 0.3, // size matters more in this space
        },
    )?;
    println!(
        "\nheuristic: generated only {} of {} candidates",
        pruned.rewritings.len(),
        full.rewritings.len()
    );
    let contains_best = pruned
        .rewritings
        .iter()
        .any(|r| r.view.from.iter().any(|f| f.relation == best_target));
    println!(
        "heuristic candidate set contains the exhaustive winner ({best_target}): {contains_best}"
    );

    Ok(())
}
