//! Interactive EVE shell: drive the whole system from stdin.
//!
//! ```bash
//! cargo run --example eve_shell
//! # or scripted:
//! cargo run --example eve_shell < script.eve
//! ```
//!
//! Type `help` for the command list. A short session:
//!
//! ```text
//! > site 1 customers
//! > relation Customer @1 (Name:text, City:text)
//! > insert Customer ('ann', 'Boston')
//! > view CREATE VIEW V (VE = '~') AS SELECT C.Name FROM Customer C (RR = true)
//! > query V
//! ```

use std::io::{self, BufRead, Write};

use eve::system::Shell;

fn main() -> io::Result<()> {
    let mut shell = Shell::new();
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    let interactive = atty_guess();

    if interactive {
        println!("EVE shell — type `help` for commands, ctrl-D to exit.");
    }
    loop {
        if interactive {
            print!("> ");
            stdout.flush()?;
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        match shell.execute(&line) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

/// Crude interactivity guess without extra dependencies: honour an explicit
/// environment override, default to printing prompts.
fn atty_guess() -> bool {
    std::env::var("EVE_SHELL_QUIET").is_err()
}
