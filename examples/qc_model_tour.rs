//! A guided tour of the QC-Model itself (no engine): build the paper's
//! Experiment 4 scenario by hand, inspect each model component — interface
//! divergence, extent divergence, cost factors, workload aggregation,
//! normalization — and watch the trade-off parameters swing the ranking.
//!
//! Run with `cargo run --example qc_model_tour`.

use eve::misd::{
    AttributeInfo, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve::qc::cost::{cf_io, cf_messages, cf_transfer};
use eve::qc::{plans_for_view, rank_rewritings, IoBound, MaintenancePlan, QcParams, WorkloadModel};
use eve::relational::DataType;
use eve::sync::{synchronize, SyncOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- the information space of Experiment 4 ------------------------
    let mut mkb = Mkb::new();
    for i in 1..=6u32 {
        mkb.register_site(SiteId(i), format!("IS{i}"))?;
    }
    let abc = || {
        vec![
            AttributeInfo::sized("A", DataType::Int, 34),
            AttributeInfo::sized("B", DataType::Int, 33),
            AttributeInfo::sized("C", DataType::Int, 33),
        ]
    };
    mkb.register_relation(RelationInfo::new(
        "R1",
        SiteId(1),
        vec![
            AttributeInfo::sized("K", DataType::Int, 50),
            AttributeInfo::sized("X", DataType::Int, 50),
        ],
        400,
    ))?;
    for (i, (name, card)) in [
        ("R2", 4000u64),
        ("S1", 2000),
        ("S2", 3000),
        ("S3", 4000),
        ("S4", 5000),
        ("S5", 6000),
    ]
    .iter()
    .enumerate()
    {
        let site = if *name == "R2" {
            SiteId(1)
        } else {
            SiteId(u32::try_from(i)?)
        };
        mkb.register_relation(RelationInfo::new(*name, site, abc(), *card))?;
    }
    let proj = |r: &str| PcSide::projection(r, &["A", "B", "C"]);
    for (a, rel, b) in [
        ("S1", PcRelationship::Subset, "S2"),
        ("S2", PcRelationship::Subset, "S3"),
        ("S3", PcRelationship::Equivalent, "R2"),
        ("S3", PcRelationship::Subset, "S4"),
        ("S4", PcRelationship::Subset, "S5"),
    ] {
        mkb.add_pc_constraint(PcConstraint::new(proj(a), rel, proj(b)))?;
    }

    let view = eve::esql::parse_view(
        "CREATE VIEW V (VE = '~') AS \
         SELECT R2.A (AR = true), R2.B (AR = true), R2.C (AR = true) \
         FROM R1, R2 (RR = true) \
         WHERE R1.K = R2.A",
    )?;
    println!("original view:\n{view}\n");

    // ----- synchronization: the legal rewritings ------------------------
    let change = SchemaChange::DeleteRelation {
        relation: "R2".into(),
    };
    let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default())?;
    println!(
        "delete-relation R2 ⇒ {} legal rewritings:",
        outcome.rewritings.len()
    );
    for rw in &outcome.rewritings {
        println!("  · extent {}, repairs: {}", rw.extent, rw.provenance);
    }

    // ----- cost factors for one rewriting, by hand ----------------------
    let s3 = outcome
        .rewritings
        .iter()
        .find(|r| r.view.from.iter().any(|f| f.relation == "S3"))
        .expect("S3 rewriting exists");
    let plans = plans_for_view(&s3.view, &mkb)?;
    println!("\ncost factors of the S3 rewriting per update origin:");
    for (origin, plan) in &plans {
        println!(
            "  origin {origin}: CF_M = {}, CF_T = {:.0} bytes, CF_IO ∈ [{:.0}, {:.0}]",
            cf_messages(plan, true),
            cf_transfer(plan),
            cf_io(plan, IoBound::Lower),
            cf_io(plan, IoBound::Upper),
        );
    }

    // A uniform Table-1 plan for comparison (Experiment 2's m = 3 case).
    let uniform = MaintenancePlan::uniform(&[2, 2, 2], 0.005)?;
    println!(
        "\nTable-1 uniform plan (2,2,2): CF_M = {}, CF_T = {:.0}, CF_IO = {:.0}",
        cf_messages(&uniform, true),
        cf_transfer(&uniform),
        cf_io(&uniform, IoBound::Lower),
    );

    // ----- the trade-off in action ---------------------------------------
    for (q, c) in [(0.9, 0.1), (0.75, 0.25), (0.5, 0.5)] {
        let params = QcParams::experiment4(q, c);
        let scored = rank_rewritings(
            &view,
            &outcome.rewritings,
            &mkb,
            &params,
            WorkloadModel::SingleUpdate,
        )?;
        println!("\nρ_quality = {q}, ρ_cost = {c}:");
        for s in &scored {
            let target = s
                .rewriting
                .view
                .from
                .iter()
                .find(|f| f.relation != "R1")
                .map(|f| f.relation.as_str())
                .unwrap_or("?");
            println!(
                "  {target}: DD = {:.4} (attr {:.2}, ext {:.4}), cost* = {:.2}, QC = {:.5}",
                s.divergence.dd, s.divergence.dd_attr, s.divergence.dd_ext, s.normalized_cost, s.qc
            );
        }
        println!(
            "  ⇒ winner: {}",
            scored[0]
                .rewriting
                .view
                .from
                .iter()
                .find(|f| f.relation != "R1")
                .map(|f| f.relation.as_str())
                .unwrap_or("?")
        );
    }

    println!(
        "\nAs in the paper: quality-dominant weights pick S3 (the equivalent \
         substitute); cost-aware weights slide toward the small subset S1."
    );
    Ok(())
}
