//! Quickstart: the complete EVE loop in one sitting.
//!
//! 1. Register two information sources with data.
//! 2. Define an E-SQL view with evolution preferences.
//! 3. Push a data update through incremental view maintenance.
//! 4. Let a source delete a relation and watch EVE synchronize the view,
//!    rank the legal rewritings with the QC-Model and adopt the best one.
//!
//! Run with `cargo run --example quickstart`.

use eve::misd::{
    AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve::relational::{tup, DataType, Relation, Schema};
use eve::system::{DataUpdate, EveEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut eve = EveEngine::new();

    // ----- 1. Information sources register themselves ------------------
    eve.add_site(SiteId(1), "customer-source")?;
    eve.add_site(SiteId(2), "booking-source")?;
    eve.add_site(SiteId(3), "loyalty-source")?;

    eve.register_relation(
        RelationInfo::new(
            "Customer",
            SiteId(1),
            vec![
                AttributeInfo::new("Name", DataType::Text),
                AttributeInfo::new("City", DataType::Text),
            ],
            4,
        ),
        Relation::with_tuples(
            "Customer",
            Schema::of(&[("Name", DataType::Text), ("City", DataType::Text)])?,
            vec![
                tup!["ann", "Boston"],
                tup!["bob", "Worcester"],
                tup!["cho", "Ann Arbor"],
                tup!["dee", "Boston"],
            ],
        )?,
    )?;

    eve.register_relation(
        RelationInfo::new(
            "FlightRes",
            SiteId(2),
            vec![
                AttributeInfo::new("PName", DataType::Text),
                AttributeInfo::new("Dest", DataType::Text),
            ],
            3,
        ),
        Relation::with_tuples(
            "FlightRes",
            Schema::of(&[("PName", DataType::Text), ("Dest", DataType::Text)])?,
            vec![
                tup!["ann", "Asia"],
                tup!["bob", "Europe"],
                tup!["cho", "Asia"],
            ],
        )?,
    )?;

    // A loyalty program mirrors the customer master data — recorded as a PC
    // constraint so EVE can use it as a replacement pool.
    eve.register_relation(
        RelationInfo::new(
            "Member",
            SiteId(3),
            vec![
                AttributeInfo::new("FullName", DataType::Text),
                AttributeInfo::new("Hometown", DataType::Text),
            ],
            4,
        ),
        Relation::with_tuples(
            "Member",
            Schema::of(&[("FullName", DataType::Text), ("Hometown", DataType::Text)])?,
            vec![
                tup!["ann", "Boston"],
                tup!["bob", "Worcester"],
                tup!["cho", "Ann Arbor"],
                tup!["dee", "Boston"],
            ],
        )?,
    )?;
    eve.mkb_mut().add_pc_constraint(PcConstraint::new(
        PcSide::projection("Customer", &["Name", "City"]),
        PcRelationship::Equivalent,
        PcSide::projection("Member", &["FullName", "Hometown"]),
    ))?;

    // ----- 2. A user defines an evolvable view --------------------------
    let mv = eve.define_view_sql(
        "CREATE VIEW Asia-Customer (VE = '~') AS \
         SELECT C.Name, C.City (AD = true, AR = true) \
         FROM Customer C (RR = true), FlightRes F \
         WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)",
    )?;
    println!("Materialized view:\n{}", mv.extent);

    // ----- 3. Data updates flow through incremental maintenance ---------
    let traces =
        eve.notify_data_update(&DataUpdate::insert("FlightRes", vec![tup!["dee", "Asia"]]))?;
    for (view, trace) in &traces {
        println!(
            "update propagated to `{view}`: {} messages, {} bytes, {} I/Os, +{} rows",
            trace.messages, trace.bytes, trace.ios, trace.view_inserts
        );
    }
    println!(
        "\nAfter dee's booking:\n{}",
        eve.view("Asia-Customer")?.extent
    );

    // ----- 4. A capability change hits the Customer source --------------
    let reports = eve.notify_capability_change(
        &SchemaChange::DeleteRelation {
            relation: "Customer".into(),
        },
        None,
    )?;
    for report in &reports {
        println!(
            "view `{}`: affected={}, candidates={}, survived={}",
            report.view_name, report.affected, report.candidates, report.survived
        );
        if let Some(adopted) = &report.adopted {
            println!(
                "adopted rewriting (QC = {:.4}, DD = {:.4}):\n{}",
                adopted.qc, adopted.divergence.dd, adopted.rewriting.view
            );
        }
    }
    println!(
        "\nView survives on the loyalty mirror:\n{}",
        eve.view("Asia-Customer")?.extent
    );
    Ok(())
}
