//! Long-running warehouse evolution: a view weathering a stream of schema
//! changes interleaved with data updates.
//!
//! Demonstrates the paper's central claim at system level: with evolution
//! preferences and a redundant information space, a materialized view can
//! outlive many capability changes, and the QC-Model keeps picking
//! replacements that preserve the most information at the lowest
//! maintenance cost. Run with `cargo run --example warehouse_evolution`.

use eve::misd::{
    AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve::relational::{tup, DataType, Relation, Schema, Tuple};
use eve::system::{DataUpdate, EveEngine};

fn stock_rows(offset: i64, n: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| tup![offset + i, (offset + i) % 7, 100 + i])
        .collect()
}

fn stock_schema() -> Schema {
    Schema::of(&[
        ("Sku", DataType::Int),
        ("Region", DataType::Int),
        ("Qty", DataType::Int),
    ])
    .expect("valid schema")
}

fn stock_info(name: &str, site: SiteId, card: u64) -> RelationInfo {
    RelationInfo::new(
        name,
        site,
        vec![
            AttributeInfo::new("Sku", DataType::Int),
            AttributeInfo::new("Region", DataType::Int),
            AttributeInfo::new("Qty", DataType::Int),
        ],
        card,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut eve = EveEngine::new();

    // Five warehouses mirror each other's stock feeds to varying degrees.
    for (i, name) in ["east", "west", "north", "south", "central"]
        .iter()
        .enumerate()
    {
        eve.add_site(SiteId(u32::try_from(i)? + 1), *name)?;
    }
    let feeds = [
        "StockEast",
        "StockWest",
        "StockNorth",
        "StockSouth",
        "StockCentral",
    ];
    for (i, feed) in feeds.iter().enumerate() {
        let rows = stock_rows(0, 40 + 5 * i64::try_from(i)?);
        eve.register_relation(
            stock_info(feed, SiteId(u32::try_from(i)? + 1), rows.len() as u64),
            Relation::with_tuples(*feed, stock_schema(), rows)?,
        )?;
    }
    // Containment chain: each feed is a subset of the next larger one.
    for w in feeds.windows(2) {
        eve.mkb_mut().add_pc_constraint(PcConstraint::new(
            PcSide::projection(w[0], &["Sku", "Region", "Qty"]),
            PcRelationship::Subset,
            PcSide::projection(w[1], &["Sku", "Region", "Qty"]),
        ))?;
    }

    eve.define_view_sql(
        "CREATE VIEW LowStock (VE = '~') AS \
         SELECT S.Sku (AR = true), S.Qty (AD = true, AR = true) \
         FROM StockEast S (RR = true) \
         WHERE S.Region = 3 (CD = true)",
    )?;
    println!(
        "initial LowStock over StockEast: {} rows",
        eve.view("LowStock")?.extent.cardinality()
    );

    // A stream of events: data updates and capability changes interleaved.
    let mut survived = 0usize;
    let mut total_messages = 0u64;
    let mut total_bytes = 0u64;
    for round in 0..4i32 {
        // Data churn on whatever feed the view currently uses.
        let source = eve.view("LowStock")?.def.from[0].relation.clone();
        let new_sku = 1000 + i64::from(round);
        let update = DataUpdate::insert(&source, vec![tup![new_sku, 3, 5]]);
        for (_, trace) in eve.notify_data_update(&update)? {
            total_messages += trace.messages;
            total_bytes += trace.bytes;
        }

        // The current source shuts down.
        println!("\n== round {}: {} withdraws ==", round + 1, source);
        let reports = eve.notify_capability_change(
            &SchemaChange::DeleteRelation {
                relation: source.clone(),
            },
            None,
        )?;
        let report = &reports[0];
        if !report.survived {
            println!("view could not be synchronized — dropped from the warehouse");
            break;
        }
        survived += 1;
        let adopted = report.adopted.as_ref().expect("survived implies adoption");
        println!(
            "  {} candidate(s); adopted source `{}` with QC {:.4} (DD {:.4}, cost* {:.2})",
            report.candidates,
            adopted.rewriting.view.from[0].relation,
            adopted.qc,
            adopted.divergence.dd,
            adopted.normalized_cost,
        );
        println!(
            "  extent now {} rows",
            eve.view("LowStock")?.extent.cardinality()
        );
    }

    println!("\nsurvived {survived} capability changes");
    println!("maintenance traffic: {total_messages} messages, {total_bytes} bytes");
    println!(
        "final view definition:\n{}",
        eve.view("LowStock")
            .map(|v| v.def.to_string())
            .unwrap_or_else(|_| "(dropped)".into())
    );
    Ok(())
}
