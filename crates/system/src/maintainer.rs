//! Incremental view maintenance — Algorithm 1, executed (§6.1, Fig. 11).
//!
//! After a data update at `IS_1.R_{1,0}`, the view maintainer walks the
//! information sources hosting the view's relations: the current delta
//! relation is shipped to the site (`R_in`), joined there with every local
//! view relation (charging block I/Os at the site), and the grown delta is
//! shipped back (`R_out`) to become the next site's input. The final delta
//! is applied to the materialized extent.
//!
//! All traffic is accounted in a [`MaintenanceTrace`] — the *measured*
//! counterpart of the analytic `CF_M` / `CF_T` / `CF_IO` factors, using the
//! same conventions (declared tuple widths; probe I/Os
//! `max(1, ⌈matches/bfr⌉)` capped by a full scan; notification counted as
//! one message).
//!
//! The per-site delta joins execute through the physical layer's
//! [`eve_relational::exec::join_with_counts`], and the recomputation
//! baseline ([`recompute_view`]) through the cost-ordered planner — both
//! with traces identical to the historical naive implementations.

use std::collections::BTreeMap;

use eve_esql::ViewDef;
use eve_misd::{Mkb, SiteId};
use eve_relational::{
    algebra, ColumnRef, ExecOptions, Predicate, PrimitiveClause, Relation, Tuple,
};

use crate::error::{Error, Result};
use crate::query::bind_relation;
use crate::site::SimSite;

/// A base-data update: tuples inserted into and deleted from one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataUpdate {
    /// Updated relation (registered name).
    pub relation: String,
    /// Inserted tuples.
    pub inserts: Vec<Tuple>,
    /// Deleted tuples.
    pub deletes: Vec<Tuple>,
}

impl DataUpdate {
    /// An insert-only update.
    #[must_use]
    pub fn insert(relation: impl Into<String>, tuples: Vec<Tuple>) -> DataUpdate {
        DataUpdate {
            relation: relation.into(),
            inserts: tuples,
            deletes: Vec::new(),
        }
    }

    /// A delete-only update.
    #[must_use]
    pub fn delete(relation: impl Into<String>, tuples: Vec<Tuple>) -> DataUpdate {
        DataUpdate {
            relation: relation.into(),
            inserts: Vec::new(),
            deletes: tuples,
        }
    }
}

/// Measured resource usage of one maintenance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceTrace {
    /// Messages exchanged (notification + per-site query/answer pairs).
    pub messages: u64,
    /// Bytes transferred (declared tuple widths × shipped cardinalities).
    pub bytes: u64,
    /// Block I/Os charged at the information sources.
    pub ios: u64,
    /// Tuples added to the view extent.
    pub view_inserts: usize,
    /// Tuples removed from the view extent.
    pub view_deletes: usize,
}

impl MaintenanceTrace {
    /// Component-wise sum.
    #[must_use]
    pub fn merged(self, other: MaintenanceTrace) -> MaintenanceTrace {
        MaintenanceTrace {
            messages: self.messages + other.messages,
            bytes: self.bytes + other.bytes,
            ios: self.ios + other.ios,
            view_inserts: self.view_inserts + other.view_inserts,
            view_deletes: self.view_deletes + other.view_deletes,
        }
    }
}

fn resolvable(clause: &PrimitiveClause, schema: &eve_relational::Schema) -> bool {
    clause
        .columns()
        .iter()
        .all(|c| schema.resolve(c, "probe").is_ok())
}

/// Joins `delta` with `next`, returning the joined relation together with
/// the number of `next`-tuples matched by each delta tuple (for I/O
/// accounting). Routed through the physical execution layer's
/// [`eve_relational::exec::join_with_counts`], which preserves the
/// historical output order and match counts exactly — the maintenance
/// traces stay byte-identical.
fn join_with_counts(
    delta: &Relation,
    next: &Relation,
    on: &[PrimitiveClause],
) -> Result<(Relation, Vec<usize>)> {
    Ok(eve_relational::exec::join_with_counts(delta, next, on)?)
}

/// One directional pass (inserts or deletes) of Algorithm 1. Returns the
/// final view-row delta and the accumulated trace.
#[allow(clippy::too_many_lines)]
fn propagate(
    view: &ViewDef,
    origin_binding: &str,
    tuples: &[Tuple],
    sites: &mut BTreeMap<u32, SimSite>,
    mkb: &Mkb,
    trace: &mut MaintenanceTrace,
) -> Result<Relation> {
    // Build the initial delta under the origin binding's qualifiers.
    let origin_item = view.from_item(origin_binding).ok_or_else(|| Error::State {
        detail: format!("binding `{origin_binding}` not in view"),
    })?;
    let origin_info = mkb.relation(&origin_item.relation)?;
    let base = Relation::with_tuples(
        origin_item.relation.clone(),
        origin_info.schema(),
        tuples.to_vec(),
    )?;
    let mut delta = bind_relation(&base, origin_binding)?;

    // Update notification: the delta travels to the warehouse.
    trace.bytes += delta.extent_byte_size();

    let mut remaining: Vec<PrimitiveClause> =
        view.conditions.iter().map(|c| c.clause.clone()).collect();
    // Clauses local to the origin delta apply immediately (at the
    // warehouse, no I/O).
    let (local, rest): (Vec<_>, Vec<_>) = remaining
        .into_iter()
        .partition(|c| resolvable(c, delta.schema()));
    remaining = rest;
    if !local.is_empty() {
        delta = algebra::select(&delta, &Predicate::new(local))?;
    }

    // Visit order: origin site first, then ascending site ids — the same
    // order the analytic plan uses.
    let origin_site = origin_info.site;
    let mut order: Vec<SiteId> = vec![origin_site];
    let mut others: Vec<SiteId> = Vec::new();
    for item in &view.from {
        let s = mkb.relation(&item.relation)?.site;
        if s != origin_site && !others.contains(&s) {
            others.push(s);
        }
    }
    others.sort_unstable();
    order.extend(others);

    for (visit_idx, site_id) in order.iter().enumerate() {
        // The view relations hosted at this site, excluding the updated one.
        let bindings: Vec<(String, String)> = view
            .from
            .iter()
            .filter(|f| f.binding_name() != origin_binding)
            .filter_map(|f| {
                let site = mkb.relation(&f.relation).ok().map(|r| r.site)?;
                (site == *site_id).then(|| (f.binding_name().to_owned(), f.relation.clone()))
            })
            .collect();
        if bindings.is_empty() {
            continue; // nothing to do here (only possible at the origin)
        }

        // Query + answer round trip.
        trace.messages += 2;
        // R_in: the delta ships to the site (also from the origin site: the
        // warehouse sends it back down, per Eq. 21).
        trace.bytes += delta.extent_byte_size();
        let _ = visit_idx;

        let site = sites.get_mut(&site_id.0).ok_or_else(|| Error::State {
            detail: format!("unknown site {site_id}"),
        })?;
        site.charge_messages(2);

        for (binding, relation) in bindings {
            let hosted = site.relation(&relation)?.clone();
            let bound = bind_relation(&hosted, &binding)?;
            // Clauses joining the delta to this relation (or local to it).
            let combined = delta.schema().concat(bound.schema())?;
            let (applicable, rest): (Vec<_>, Vec<_>) = remaining
                .into_iter()
                .partition(|c| resolvable(c, &combined));
            remaining = rest;
            let (joined, counts) = join_with_counts(&delta, &bound, &applicable)?;
            trace.ios += site.charge_probe_io(&relation, &counts)?;
            delta = joined;
        }

        // R_out: the grown delta returns to the warehouse.
        trace.bytes += delta.extent_byte_size();
    }

    if !remaining.is_empty() {
        return Err(Error::Validation(format!(
            "conditions never became resolvable: {}",
            Predicate::new(remaining)
        )));
    }

    // Project onto the view interface.
    let columns: Vec<ColumnRef> = view.select.iter().map(|s| s.attr.clone()).collect();
    let projected = algebra::project(&delta, &columns, false)?;
    let out_names: Vec<ColumnRef> = view
        .output_columns()
        .into_iter()
        .map(ColumnRef::bare)
        .collect();
    algebra::rename_columns(&projected, &out_names).map_err(Error::from)
}

/// Maintains one materialized view after a base-data update (Algorithm 1),
/// mutating `extent` in place and charging I/O at the sites.
///
/// Views that do not reference the updated relation return a zero trace.
/// Self-joins over the updated relation are rejected (incremental deltas
/// would need `Δ ⋈ Δ` terms the paper's algorithm does not model).
///
/// # Errors
///
/// State/validation/relational failures.
pub fn maintain_view(
    view: &ViewDef,
    extent: &mut Relation,
    update: &DataUpdate,
    sites: &mut BTreeMap<u32, SimSite>,
    mkb: &Mkb,
) -> Result<MaintenanceTrace> {
    let view = eve_esql::validate::validate(view).map_err(|e| Error::Validation(e.message))?;
    let bindings: Vec<String> = view
        .from
        .iter()
        .filter(|f| f.relation == update.relation)
        .map(|f| f.binding_name().to_owned())
        .collect();
    if bindings.is_empty() {
        return Ok(MaintenanceTrace::default());
    }
    if bindings.len() > 1 {
        return Err(Error::State {
            detail: format!(
                "view `{}` references `{}` more than once; incremental maintenance \
                 of self-joins is not supported",
                view.name, update.relation
            ),
        });
    }
    let binding = &bindings[0];

    let mut trace = MaintenanceTrace {
        messages: 1, // the update notification
        ..MaintenanceTrace::default()
    };
    // The notification is sent by the updated relation's source site.
    let origin_site = mkb.relation(&update.relation)?.site;
    sites
        .get_mut(&origin_site.0)
        .ok_or_else(|| Error::State {
            detail: format!("unknown site {origin_site}"),
        })?
        .charge_messages(1);

    if !update.inserts.is_empty() {
        let added = propagate(&view, binding, &update.inserts, sites, mkb, &mut trace)?;
        trace.view_inserts = added.cardinality();
        for t in added.tuples() {
            extent.insert(t.clone())?;
        }
    }
    if !update.deletes.is_empty() {
        let removed = propagate(&view, binding, &update.deletes, sites, mkb, &mut trace)?;
        trace.view_deletes = extent.delete(removed.tuples());
    }
    Ok(trace)
}

/// Fully recomputes a view by shipping every referenced extent to the
/// warehouse — the paper's "one-time view recomputation" baseline the
/// incremental algorithm is compared against (\[ZGMHW95\]-style ablation).
///
/// # Errors
///
/// State/relational failures.
pub fn recompute_view(
    view: &ViewDef,
    sites: &mut BTreeMap<u32, SimSite>,
    mkb: &Mkb,
) -> Result<(Relation, MaintenanceTrace)> {
    recompute_view_with(view, sites, mkb, &ExecOptions::default())
}

/// [`recompute_view`] under explicit [`ExecOptions`]: the warehouse-side
/// re-evaluation runs morsel-parallel when asked (site I/O accounting is
/// identical — extents are shipped whole either way, and the scheduler
/// never touches site counters).
///
/// # Errors
///
/// State/relational failures.
pub fn recompute_view_with(
    view: &ViewDef,
    sites: &mut BTreeMap<u32, SimSite>,
    mkb: &Mkb,
    options: &ExecOptions,
) -> Result<(Relation, MaintenanceTrace)> {
    let view = eve_esql::validate::validate(view).map_err(|e| Error::Validation(e.message))?;
    let mut trace = MaintenanceTrace::default();
    let mut extents: BTreeMap<String, Relation> = BTreeMap::new();
    let mut visited_sites: Vec<u32> = Vec::new();
    for item in &view.from {
        let info = mkb.relation(&item.relation)?;
        let site = sites.get_mut(&info.site.0).ok_or_else(|| Error::State {
            detail: format!("unknown site {}", info.site),
        })?;
        let before = site.io_count();
        let rel = site.scan(&item.relation)?;
        trace.ios += site.io_count() - before;
        trace.bytes += rel.extent_byte_size();
        if !visited_sites.contains(&info.site.0) {
            visited_sites.push(info.site.0);
            trace.messages += 2;
            site.charge_messages(2);
        }
        extents.entry(item.relation.clone()).or_insert(rel);
    }
    let result =
        crate::query::evaluate_view_with_options(&view, &extents, &BTreeMap::new(), options)?;
    trace.view_inserts = result.cardinality();
    Ok((result, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, RelationInfo};
    use eve_relational::{tup, DataType, Schema};

    /// Two sites: Customer at IS1, FlightRes at IS2.
    fn setup() -> (Mkb, BTreeMap<u32, SimSite>, ViewDef, Relation) {
        let mut mkb = Mkb::new();
        mkb.register_site(SiteId(1), "one").unwrap();
        mkb.register_site(SiteId(2), "two").unwrap();
        mkb.register_relation(RelationInfo::new(
            "Customer",
            SiteId(1),
            vec![
                AttributeInfo::new("Name", DataType::Text),
                AttributeInfo::new("Address", DataType::Text),
            ],
            3,
        ))
        .unwrap();
        mkb.register_relation(RelationInfo::new(
            "FlightRes",
            SiteId(2),
            vec![
                AttributeInfo::new("PName", DataType::Text),
                AttributeInfo::new("Dest", DataType::Text),
            ],
            3,
        ))
        .unwrap();

        let customer = Relation::with_tuples(
            "Customer",
            Schema::of(&[("Name", DataType::Text), ("Address", DataType::Text)]).unwrap(),
            vec![
                tup!["ann", "12 Elm"],
                tup!["bob", "9 Oak"],
                tup!["cho", "3 Pine"],
            ],
        )
        .unwrap();
        let flights = Relation::with_tuples(
            "FlightRes",
            Schema::of(&[("PName", DataType::Text), ("Dest", DataType::Text)]).unwrap(),
            vec![
                tup!["ann", "Asia"],
                tup!["bob", "Europe"],
                tup!["cho", "Asia"],
            ],
        )
        .unwrap();
        let mut sites = BTreeMap::new();
        let mut s1 = SimSite::new(SiteId(1), "one");
        s1.host(customer, 10).unwrap();
        let mut s2 = SimSite::new(SiteId(2), "two");
        s2.host(flights, 10).unwrap();
        sites.insert(1, s1);
        sites.insert(2, s2);

        let view = eve_esql::parse_view(
            "CREATE VIEW Asia-Customer (VE = '~') AS \
             SELECT C.Name, C.Address \
             FROM Customer C, FlightRes F \
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia')",
        )
        .unwrap();
        // Materialize the initial extent.
        let mut extents = BTreeMap::new();
        extents.insert(
            "Customer".to_owned(),
            sites[&1].relation("Customer").unwrap().clone(),
        );
        extents.insert(
            "FlightRes".to_owned(),
            sites[&2].relation("FlightRes").unwrap().clone(),
        );
        let extent = crate::query::evaluate_view(&view, &extents).unwrap();
        (mkb, sites, view, extent)
    }

    #[test]
    fn insert_propagates_to_view() {
        let (mkb, mut sites, view, mut extent) = setup();
        assert_eq!(extent.cardinality(), 2);
        // dee books a flight to Asia… but is not a customer: no view change.
        sites
            .get_mut(&2)
            .unwrap()
            .apply_update("FlightRes", &[tup!["dee", "Asia"]], &[])
            .unwrap();
        let update = DataUpdate::insert("FlightRes", vec![tup!["dee", "Asia"]]);
        let trace = maintain_view(&view, &mut extent, &update, &mut sites, &mkb).unwrap();
        assert_eq!(trace.view_inserts, 0);
        assert_eq!(extent.cardinality(), 2);

        // bob books Asia: view gains a row.
        sites
            .get_mut(&2)
            .unwrap()
            .apply_update("FlightRes", &[tup!["bob", "Asia"]], &[])
            .unwrap();
        let update = DataUpdate::insert("FlightRes", vec![tup!["bob", "Asia"]]);
        let trace = maintain_view(&view, &mut extent, &update, &mut sites, &mkb).unwrap();
        assert_eq!(trace.view_inserts, 1);
        assert!(extent.contains(&tup!["bob", "9 Oak"]));
    }

    #[test]
    fn incremental_equals_recompute() {
        let (mkb, mut sites, view, mut extent) = setup();
        // A sequence of updates at both sources.
        let updates = [
            DataUpdate::insert("Customer", vec![tup!["dee", "7 Fir"]]),
            DataUpdate::insert("FlightRes", vec![tup!["dee", "Asia"]]),
            DataUpdate::delete("FlightRes", vec![tup!["ann", "Asia"]]),
            DataUpdate::insert("FlightRes", vec![tup!["cho", "Asia"]]),
        ];
        for u in &updates {
            // Apply at the base site first, then maintain.
            let info = mkb.relation(&u.relation).unwrap();
            sites
                .get_mut(&info.site.0)
                .unwrap()
                .apply_update(&u.relation, &u.inserts, &u.deletes)
                .unwrap();
            maintain_view(&view, &mut extent, u, &mut sites, &mkb).unwrap();
        }
        let (recomputed, _) = recompute_view(&view, &mut sites, &mkb).unwrap();
        let mut a = extent.tuples().to_vec();
        let mut b = recomputed.tuples().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "incremental maintenance must equal recomputation");
        // cho appears twice (two Asia reservations) — bag semantics held.
        assert_eq!(a.iter().filter(|t| *t == &tup!["cho", "3 Pine"]).count(), 2);
    }

    #[test]
    fn trace_counts_messages_and_bytes() {
        let (mkb, mut sites, view, mut extent) = setup();
        sites
            .get_mut(&1)
            .unwrap()
            .apply_update("Customer", &[tup!["dee", "7 Fir"]], &[])
            .unwrap();
        let update = DataUpdate::insert("Customer", vec![tup!["dee", "7 Fir"]]);
        let trace = maintain_view(&view, &mut extent, &update, &mut sites, &mkb).unwrap();
        // Notification + one query/answer pair (origin site has no other
        // view relation, FlightRes site is queried).
        assert_eq!(trace.messages, 3);
        // Bytes: notification (40) + R_in (40) + R_out (0 rows: dee has no
        // Asia flight) = 80 with the declared TEXT size 20 per column.
        assert_eq!(trace.bytes, 80);
        assert!(trace.ios >= 1);
    }

    #[test]
    fn unrelated_update_is_free() {
        let (mkb, mut sites, view, mut extent) = setup();
        let mut mkb2 = mkb;
        mkb2.register_relation(RelationInfo::new(
            "Hotel",
            SiteId(1),
            vec![AttributeInfo::new("Name", DataType::Text)],
            1,
        ))
        .unwrap();
        let update = DataUpdate::insert("Hotel", vec![tup!["ritz"]]);
        let trace = maintain_view(&view, &mut extent, &update, &mut sites, &mkb2).unwrap();
        assert_eq!(trace, MaintenanceTrace::default());
    }

    #[test]
    fn self_join_rejected() {
        let (mkb, mut sites, _, _) = setup();
        let view = eve_esql::parse_view(
            "CREATE VIEW V AS SELECT X.Name FROM Customer X, Customer Y \
             WHERE X.Name = Y.Name",
        )
        .unwrap();
        let mut extent = Relation::empty("V", Schema::of(&[("Name", DataType::Text)]).unwrap());
        let update = DataUpdate::insert("Customer", vec![tup!["zed", "1 Elm"]]);
        let e = maintain_view(&view, &mut extent, &update, &mut sites, &mkb).unwrap_err();
        assert!(e.to_string().contains("self-joins"));
    }

    #[test]
    fn recompute_trace_ships_full_extents() {
        let (mkb, mut sites, view, _) = setup();
        for s in sites.values_mut() {
            s.reset_io();
        }
        let (rel, trace) = recompute_view(&view, &mut sites, &mkb).unwrap();
        assert_eq!(rel.cardinality(), 2);
        assert_eq!(trace.messages, 4); // two sites × (query + answer)
                                       // 3 Customer rows × 40 bytes + 3 FlightRes rows × 40 bytes.
        assert_eq!(trace.bytes, 240);
        assert!(trace.ios >= 2); // at least one block per relation
    }
}
