//! # eve-system
//!
//! The executable EVE runtime (paper Fig. 1): a simulated multi-site
//! information space with a materialized-view warehouse on top.
//!
//! Where `eve-qc` *predicts* maintenance costs analytically, this crate
//! *executes* them: base relations live at [`site::SimSite`]s, views are
//! evaluated by a real query processor ([`query`]), and data updates are
//! propagated by the incremental view-maintenance walk of Algorithm 1
//! ([`maintainer`]) while counting actual messages, bytes and block I/Os —
//! the measured counterpart used to validate the analytic `CF_M`/`CF_T`/
//! `CF_IO` factors.
//!
//! [`engine::EveEngine`] wires everything together: IS registration into the
//! MKB, E-SQL view definition, update notifications routed to the view
//! maintainer, and capability-change notifications routed through view
//! synchronization + QC-Model ranking to adopt the best legal rewriting
//! (completing the paper's Fig. 1 loop).
//!
//! Every evaluation path — view definition, capability-change
//! re-materialization, recomputation baselines and the maintainer's delta
//! joins — executes through the cost-ordered physical layer of
//! [`eve_relational::plan`]/[`eve_relational::exec`];
//! [`query::evaluate_view_naive`] keeps the historical left-to-right fold
//! as the reference the differential suites compare against.
//!
//! [`batch`] scales that loop to bursts: [`engine::EveEngine::apply_batch`]
//! takes a whole evolution workload, partitions independent sites and
//! processes them concurrently, memoizing rewriting enumeration per MKB
//! generation — observationally identical to the op-by-op paths (the
//! differential property suite pins this) but substantially faster.
//!
//! [`scenario`] builds deterministic synthetic information spaces whose
//! *measured* statistics (join matches per key, selectivities) equal the
//! *declared* MKB statistics, so measured and analytic costs can be compared
//! exactly.

pub mod batch;
pub mod durable;
pub mod engine;
pub mod error;
pub mod maintainer;
pub mod query;
pub mod scenario;
pub mod shell;
pub mod site;

pub use durable::{DurableEngine, RecoveryReport};
pub use engine::{
    BatchOutcome, ColumnLayerStats, EveEngine, EvolutionReport, IndexHint, SearchMode,
};
pub use error::{Error, Result};
pub use eve_sync::EvolutionOp;
pub use maintainer::{DataUpdate, MaintenanceTrace};
pub use shell::Shell;
pub use site::SimSite;
