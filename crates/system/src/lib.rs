//! # eve-system
//!
//! The executable EVE runtime (paper Fig. 1): a simulated multi-site
//! information space with a materialized-view warehouse on top.
//!
//! Where `eve-qc` *predicts* maintenance costs analytically, this crate
//! *executes* them: base relations live at [`site::SimSite`]s, views are
//! evaluated by a real query processor ([`query`]), and data updates are
//! propagated by the incremental view-maintenance walk of Algorithm 1
//! ([`maintainer`]) while counting actual messages, bytes and block I/Os —
//! the measured counterpart used to validate the analytic `CF_M`/`CF_T`/
//! `CF_IO` factors.
//!
//! [`engine::EveEngine`] wires everything together: IS registration into the
//! MKB, E-SQL view definition, update notifications routed to the view
//! maintainer, and capability-change notifications routed through view
//! synchronization + QC-Model ranking to adopt the best legal rewriting
//! (completing the paper's Fig. 1 loop).
//!
//! [`scenario`] builds deterministic synthetic information spaces whose
//! *measured* statistics (join matches per key, selectivities) equal the
//! *declared* MKB statistics, so measured and analytic costs can be compared
//! exactly.

pub mod engine;
pub mod error;
pub mod maintainer;
pub mod query;
pub mod scenario;
pub mod shell;
pub mod site;

pub use engine::{EveEngine, EvolutionReport};
pub use error::{Error, Result};
pub use maintainer::{DataUpdate, MaintenanceTrace};
pub use shell::Shell;
pub use site::SimSite;
