//! Runtime errors.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the EVE runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Relational-layer failure.
    Relational(eve_relational::Error),
    /// MKB failure.
    Misd(eve_misd::Error),
    /// E-SQL parse failure.
    Parse(eve_esql::ParseError),
    /// View validation failure.
    Validation(String),
    /// Synchronization failure.
    Sync(String),
    /// QC-Model failure.
    Qc(String),
    /// Runtime state problem (missing view/site, inconsistent extent, …).
    State {
        /// Explanation.
        detail: String,
    },
    /// A durable store is busy: its directory lock is held by another
    /// handle. Kept distinct from [`Error::State`] so front-ends (shell,
    /// server) can give the "close the other session" hint — and name the
    /// lock file — instead of surfacing a raw flock failure.
    Busy {
        /// Explanation, including the lock path.
        detail: String,
    },
    /// The durable host is poisoned: a failed mutation could not be
    /// re-anchored with a snapshot, so the on-disk store is behind the
    /// live engine. All further durable mutations fail closed with this
    /// error until an explicit checkpoint re-anchors durability.
    Poisoned {
        /// Explanation of the double failure that poisoned the host.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Relational(e) => write!(f, "relational error: {e}"),
            Error::Misd(e) => write!(f, "MKB error: {e}"),
            Error::Parse(e) => write!(f, "E-SQL parse error: {e}"),
            Error::Validation(m) => write!(f, "view validation error: {m}"),
            Error::Sync(m) => write!(f, "synchronization error: {m}"),
            Error::Qc(m) => write!(f, "QC-Model error: {m}"),
            Error::State { detail } => write!(f, "engine state error: {detail}"),
            Error::Busy { detail } => write!(f, "{detail}"),
            Error::Poisoned { detail } => write!(
                f,
                "durable host poisoned: {detail} — run `checkpoint` to re-anchor \
                 the store before further durable mutations"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<eve_relational::Error> for Error {
    fn from(e: eve_relational::Error) -> Self {
        Error::Relational(e)
    }
}

impl From<eve_misd::Error> for Error {
    fn from(e: eve_misd::Error) -> Self {
        Error::Misd(e)
    }
}

impl From<eve_esql::ParseError> for Error {
    fn from(e: eve_esql::ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<eve_sync::synchronizer::SyncError> for Error {
    fn from(e: eve_sync::synchronizer::SyncError) -> Self {
        Error::Sync(e.to_string())
    }
}

impl From<eve_qc::Error> for Error {
    fn from(e: eve_qc::Error) -> Self {
        Error::Qc(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = eve_misd::Error::UnknownRelation {
            relation: "R".into(),
        }
        .into();
        assert!(e.to_string().contains("unknown relation"));
        let e: Error = eve_relational::Error::NotComparable.into();
        assert!(e.to_string().contains("not comparable"));
        let e = Error::State {
            detail: "no such view".into(),
        };
        assert_eq!(e.to_string(), "engine state error: no such view");
    }
}
