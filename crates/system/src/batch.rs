//! Batched, cache-aware multi-site execution of evolution workloads.
//!
//! [`EveEngine::apply_batch`] drives a [`Vec<EvolutionOp>`] through the
//! plan produced by `eve-sync`'s batch planner: maximal runs of data
//! updates are partitioned into independent groups (disjoint sites,
//! relations and views) and processed **concurrently** on std threads,
//! while capability changes act as sequential barriers handled through the
//! engine's memoized [`RewriteCache`](eve_sync::RewriteCache).
//!
//! The pipeline is observationally identical to applying the ops one by
//! one through the legacy paths ([`EveEngine::notify_data_update`] /
//! [`EveEngine::notify_capability_change_sequential`]): view extents,
//! survival verdicts and per-site I/O + message accounting match to the
//! byte — partitions never share a site or view, each partition preserves
//! op order, and within one op views are maintained in name order. The
//! speedup comes from scheduling only: unaffected views are never visited,
//! independent partitions run in parallel, and rewriting enumeration is
//! memoized per MKB generation. (Per-view delta relations are deliberately
//! *not* coalesced across ops — that would change the charged I/O under
//! the per-pass full-scan cap, making cost reports incomparable.)
//!
//! The equivalence contract covers workloads whose ops all succeed (which
//! the differential suite generates by construction). Error handling
//! diverges by design: ops naming unknown relations are rejected up front,
//! before the stage applies anything, and an op failing *mid*-stage (e.g.
//! a schema-mismatched tuple) aborts its own partition while independent
//! partitions — including ones holding later ops — still run to
//! completion. On error the warehouse is therefore whole and consistent,
//! but not necessarily the sequential path's failure prefix.

use std::collections::BTreeMap;
use std::thread;

use eve_sync::batch::{partition_stage, EvolutionOp, Partition, ViewFootprint};

use crate::engine::{BatchOutcome, EveEngine, MaterializedView};
use crate::error::{Error, Result};
use crate::maintainer::{maintain_view, DataUpdate, MaintenanceTrace};
use crate::site::SimSite;

impl From<DataUpdate> for EvolutionOp {
    fn from(update: DataUpdate) -> EvolutionOp {
        EvolutionOp::Data {
            relation: update.relation,
            inserts: update.inserts,
            deletes: update.deletes,
        }
    }
}

/// The slice of engine state one partition owns while its thread runs.
struct PartitionUnit {
    updates: Vec<DataUpdate>,
    sites: BTreeMap<u32, SimSite>,
    views: BTreeMap<String, MaterializedView>,
    traces: BTreeMap<String, MaintenanceTrace>,
}

/// Runs one partition to completion: ops in order, per op the base update
/// first, then every view referencing the updated relation in name order —
/// exactly the schedule of the legacy per-op loop restricted to this
/// partition's views.
fn run_partition(mkb: &eve_misd::Mkb, unit: &mut PartitionUnit) -> Option<Error> {
    let _span = eve_trace::span("engine.partition");
    for update in &unit.updates {
        let info = match mkb.relation(&update.relation) {
            Ok(info) => info,
            Err(e) => return Some(e.into()),
        };
        let Some(site) = unit.sites.get_mut(&info.site.0) else {
            return Some(Error::State {
                detail: format!("partition lost site {} of `{}`", info.site, update.relation),
            });
        };
        if let Err(e) = site.apply_update(&update.relation, &update.inserts, &update.deletes) {
            return Some(e);
        }
        for (name, mv) in &mut unit.views {
            if !mv.def.from.iter().any(|f| f.relation == update.relation) {
                continue;
            }
            match maintain_view(&mv.def, &mut mv.extent, update, &mut unit.sites, mkb) {
                Ok(trace) => {
                    let entry = unit.traces.entry(name.clone()).or_default();
                    *entry = entry.merged(trace);
                }
                Err(e) => return Some(e),
            }
        }
    }
    None
}

impl EveEngine {
    /// Applies a batched evolution workload: data updates, capability
    /// changes and relation drops, in one call.
    ///
    /// Runs of data ops between capability barriers are partitioned into
    /// independent groups and processed concurrently (std threads over
    /// disjoint [`SimSite`]/view slices); capability changes run
    /// sequentially through the cached synchronizer. See the module docs
    /// for the exact equivalence contract with the legacy op-by-op paths.
    ///
    /// # Errors
    ///
    /// State/validation failures. Data ops naming unknown relations are
    /// rejected before any op of their stage is applied.
    pub fn apply_batch(&mut self, ops: Vec<EvolutionOp>) -> Result<BatchOutcome> {
        let _span = eve_trace::span("engine.apply_batch");
        let started = std::time::Instant::now();
        let registry = eve_trace::global();
        registry.counter("engine.batches").inc();
        let rewrite_stats_before = self.rewrite_cache_stats();
        let mut outcome = BatchOutcome::default();
        let mut ops: Vec<Option<EvolutionOp>> = ops.into_iter().map(Some).collect();
        let mut i = 0;
        while i < ops.len() {
            if ops[i].as_ref().expect("unconsumed").is_data() {
                let start = i;
                while i < ops.len() && ops[i].as_ref().expect("unconsumed").is_data() {
                    i += 1;
                }
                self.run_data_stage(&ops[start..i], &mut outcome)?;
            } else {
                let Some(EvolutionOp::Capability { change, new_extent }) = ops[i].take() else {
                    unreachable!("non-data op is a capability op");
                };
                let reports = self.capability_change_batched(&change, new_extent)?;
                outcome.reports.extend(reports);
                outcome.capability_ops += 1;
                registry.counter("engine.capability_changes").inc();
                i += 1;
            }
        }
        let rewrite_stats_after = self.rewrite_cache_stats();
        outcome.rewrite_hits = rewrite_stats_after.0 - rewrite_stats_before.0;
        outcome.rewrite_misses = rewrite_stats_after.1 - rewrite_stats_before.1;
        registry
            .histogram("engine.apply_batch_us")
            .record(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        Ok(outcome)
    }

    /// Rewriting-cache statistics `(hits, misses)` accumulated over the
    /// engine's lifetime.
    #[must_use]
    pub fn rewrite_cache_stats(&self) -> (u64, u64) {
        (self.rewrite_cache.hits(), self.rewrite_cache.misses())
    }

    /// Plans and executes one run of data ops.
    fn run_data_stage(
        &mut self,
        ops: &[Option<EvolutionOp>],
        outcome: &mut BatchOutcome,
    ) -> Result<()> {
        let op_refs: Vec<&EvolutionOp> = ops
            .iter()
            .map(|o| o.as_ref().expect("unconsumed"))
            .collect();
        // Up-front validation: every updated relation must be known, as the
        // legacy path would discover op by op.
        for op in &op_refs {
            if let EvolutionOp::Data { relation, .. } = op {
                self.mkb.relation(relation)?;
            }
        }
        // Plan against the *current* view definitions — adopted rewritings
        // from earlier capability barriers have already changed footprints.
        let footprints: Vec<ViewFootprint> = self
            .views
            .values()
            .map(|mv| ViewFootprint::of(&mv.def))
            .collect();
        let partitions = partition_stage(&op_refs, &footprints, |rel| {
            self.mkb.relation(rel).ok().map(|info| info.site.0)
        });
        outcome.data_ops += op_refs.len();
        outcome.data_stages += 1;
        outcome.max_width = outcome.max_width.max(partitions.len());
        eve_trace::global()
            .counter("engine.batch_partitions")
            .add(partitions.len() as u64);

        // Carve the engine state into per-partition units.
        let mut units: Vec<PartitionUnit> = Vec::with_capacity(partitions.len());
        for partition in &partitions {
            units.push(self.checkout_unit(partition, &op_refs));
        }

        // Execute: inline when there is nothing to overlap (one partition
        // or one core), scoped threads otherwise (each worker drains a
        // round-robin share of partitions).
        let workers = thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(units.len());
        let mut failure: Option<Error> = None;
        if workers <= 1 {
            for unit in &mut units {
                if failure.is_none() {
                    failure = run_partition(&self.mkb, unit);
                }
            }
        } else {
            let mut buckets: Vec<Vec<PartitionUnit>> = (0..workers).map(|_| Vec::new()).collect();
            for (idx, unit) in units.drain(..).enumerate() {
                buckets[idx % workers].push(unit);
            }
            let mkb = &self.mkb;
            let finished: Vec<(Vec<PartitionUnit>, Option<Error>)> = thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|mut bucket| {
                        scope.spawn(move || {
                            let mut err = None;
                            for unit in &mut bucket {
                                if err.is_none() {
                                    err = run_partition(mkb, unit);
                                }
                            }
                            (bucket, err)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("partition worker panicked"))
                    .collect()
            });
            for (bucket, err) in finished {
                units.extend(bucket);
                if failure.is_none() {
                    failure = err;
                }
            }
        }

        // Reassemble the engine — always, even on failure, so the warehouse
        // stays whole.
        for unit in units {
            self.sites.extend(unit.sites);
            self.views.extend(unit.views);
            for (view, trace) in unit.traces {
                let entry = outcome.traces.entry(view).or_default();
                *entry = entry.merged(trace);
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Moves a partition's sites and views out of the engine and clones its
    /// ops into [`DataUpdate`]s.
    fn checkout_unit(&mut self, partition: &Partition, ops: &[&EvolutionOp]) -> PartitionUnit {
        let mut sites = BTreeMap::new();
        for id in &partition.sites {
            if let Some(site) = self.sites.remove(id) {
                sites.insert(*id, site);
            }
        }
        let mut views = BTreeMap::new();
        for name in &partition.views {
            if let Some(mv) = self.views.remove(name) {
                views.insert(name.clone(), mv);
            }
        }
        let updates = partition
            .ops
            .iter()
            .map(|&idx| match ops[idx] {
                EvolutionOp::Data {
                    relation,
                    inserts,
                    deletes,
                } => DataUpdate {
                    relation: relation.clone(),
                    inserts: inserts.clone(),
                    deletes: deletes.clone(),
                },
                EvolutionOp::Capability { .. } => unreachable!("data stages hold data ops only"),
            })
            .collect();
        PartitionUnit {
            updates,
            sites,
            views,
            traces: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{
        AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
    };
    use eve_relational::{tup, DataType, Relation, Schema};

    /// `n` independent sites, each hosting `Ri_a ⋈ Ri_b` under view `Vi`,
    /// plus a colocated replica `Ri_c ≡ Ri_b` for capability changes.
    fn engine_with_sites(n: u32) -> EveEngine {
        let mut e = EveEngine::new();
        for i in 1..=n {
            e.add_site(SiteId(i), format!("IS{i}")).unwrap();
            let schema = Schema::of(&[("K", DataType::Int), ("P", DataType::Int)]).unwrap();
            let attrs = || {
                vec![
                    AttributeInfo::new("K", DataType::Int),
                    AttributeInfo::new("P", DataType::Int),
                ]
            };
            for suffix in ["a", "b", "c"] {
                let name = format!("R{i}_{suffix}");
                let rows: Vec<_> = (0..20i64).map(|k| tup![k, k % 5]).collect();
                e.register_relation(
                    RelationInfo::new(&name, SiteId(i), attrs(), 10),
                    Relation::with_tuples(&name, schema.clone(), rows).unwrap(),
                )
                .unwrap();
            }
            e.mkb_mut()
                .add_pc_constraint(PcConstraint::new(
                    PcSide::projection(format!("R{i}_b"), &["K", "P"]),
                    PcRelationship::Equivalent,
                    PcSide::projection(format!("R{i}_c"), &["K", "P"]),
                ))
                .unwrap();
            e.define_view_sql(&format!(
                "CREATE VIEW V{i} (VE = '~') AS SELECT A.K, B.P AS BP \
                 FROM R{i}_a A, R{i}_b B (RR = true) WHERE A.K = B.K"
            ))
            .unwrap();
        }
        e
    }

    #[test]
    fn batch_matches_sequential_on_mixed_workload() {
        let base = engine_with_sites(3);
        let ops = vec![
            EvolutionOp::insert("R1_a", vec![tup![100, 0]]),
            EvolutionOp::insert("R2_b", vec![tup![7, 9]]),
            EvolutionOp::delete("R3_a", vec![tup![0, 0]]),
            EvolutionOp::change(SchemaChange::DeleteRelation {
                relation: "R2_b".into(),
            }),
            EvolutionOp::insert("R2_c", vec![tup![5, 5]]),
            EvolutionOp::insert("R1_b", vec![tup![100, 3]]),
        ];

        let mut batched = base.clone();
        batched.reset_io();
        let outcome = batched.apply_batch(ops.clone()).unwrap();
        assert_eq!(outcome.data_ops, 5);
        assert_eq!(outcome.capability_ops, 1);
        assert_eq!(outcome.data_stages, 2);
        assert!(outcome.max_width >= 3, "three independent sites");

        // Drift guard: the executor segments ops into stages with the same
        // data-run/barrier rule the advisory planner implements — if one
        // side's segmentation changes, this catches it.
        let footprints: Vec<eve_sync::ViewFootprint> = base
            .views()
            .map(|mv| eve_sync::ViewFootprint::of(&mv.def))
            .collect();
        let advisory = eve_sync::batch::plan(&ops, &footprints, |rel| {
            base.mkb().relation(rel).ok().map(|info| info.site.0)
        });
        let advisory_data_stages = advisory
            .stages
            .iter()
            .filter(|s| matches!(s, eve_sync::Stage::Data { .. }))
            .count();
        assert_eq!(advisory_data_stages, outcome.data_stages);
        assert_eq!(
            advisory.stages.len() - advisory_data_stages,
            outcome.capability_ops
        );

        let mut sequential = base;
        sequential.reset_io();
        for op in ops {
            match op {
                EvolutionOp::Data {
                    relation,
                    inserts,
                    deletes,
                } => {
                    sequential
                        .notify_data_update(&DataUpdate {
                            relation,
                            inserts,
                            deletes,
                        })
                        .unwrap();
                }
                EvolutionOp::Capability { change, new_extent } => {
                    sequential
                        .notify_capability_change_sequential(&change, new_extent)
                        .unwrap();
                }
            }
        }

        assert_eq!(batched.total_io(), sequential.total_io());
        assert_eq!(batched.total_messages(), sequential.total_messages());
        let b_views: Vec<_> = batched.views().map(|mv| mv.def.to_string()).collect();
        let s_views: Vec<_> = sequential.views().map(|mv| mv.def.to_string()).collect();
        assert_eq!(b_views, s_views);
        for (b, s) in batched.views().zip(sequential.views()) {
            assert_eq!(b.extent.tuples(), s.extent.tuples(), "{}", b.def.name);
        }
    }

    #[test]
    fn batch_reports_match_single_change_notification() {
        // notify_capability_change routes through apply_batch; its reports
        // must look exactly like the sequential reference's.
        let mut a = engine_with_sites(2);
        let mut b = a.clone();
        let change = SchemaChange::DeleteRelation {
            relation: "R1_b".into(),
        };
        let ra = a.notify_capability_change(&change, None).unwrap();
        let rb = b
            .notify_capability_change_sequential(&change, None)
            .unwrap();
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.view_name, y.view_name);
            assert_eq!(x.affected, y.affected);
            assert_eq!(x.survived, y.survived);
            assert_eq!(x.candidates, y.candidates);
        }
        assert!(a.view("V1").unwrap().def.to_string().contains("R1_c"));
    }

    #[test]
    fn unknown_relation_rejected_before_application() {
        let mut e = engine_with_sites(1);
        let before = e.view("V1").unwrap().extent.clone();
        let err = e
            .apply_batch(vec![
                EvolutionOp::insert("R1_a", vec![tup![500, 0]]),
                EvolutionOp::insert("Ghost", vec![tup![1, 1]]),
            ])
            .unwrap_err();
        assert!(err.to_string().contains("Ghost"), "{err}");
        // Nothing from the failed stage was applied.
        assert_eq!(e.view("V1").unwrap().extent.tuples(), before.tuples());
        assert!(!e.sites[&1]
            .relation("R1_a")
            .unwrap()
            .contains(&tup![500, 0]));
    }

    #[test]
    fn repeated_changes_hit_the_rewrite_cache() {
        let mut e = engine_with_sites(1);
        // Two views over the same relation: the second synchronization of
        // the same (view, change) pair within one generation replays.
        e.define_view_sql("CREATE VIEW W (VE = '~') AS SELECT B.K FROM R1_b B (RR = true)")
            .unwrap();
        let change = SchemaChange::RenameAttribute {
            relation: "R1_b".into(),
            from: "P".into(),
            to: "P2".into(),
        };
        let outcome = e.apply_batch(vec![EvolutionOp::change(change)]).unwrap();
        // Both views were candidates; the partner cache is shared across
        // them (rename paths do not consult partners, but the outcome cache
        // recorded both syntheses as misses — no spurious hits).
        assert_eq!(outcome.rewrite_misses, 2);
        assert_eq!(outcome.rewrite_hits, 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut e = engine_with_sites(1);
        let outcome = e.apply_batch(Vec::new()).unwrap();
        assert_eq!(outcome.data_ops, 0);
        assert_eq!(outcome.capability_ops, 0);
        assert!(outcome.traces.is_empty());
        assert!(outcome.reports.is_empty());
    }
}
