//! Deterministic scenario construction for measured-vs-analytic validation.
//!
//! The analytic cost model (Eq. 21/33) predicts delta growth from the
//! declared statistics `σ`, `js`, `|R|`. To compare measured traces against
//! those predictions *exactly*, this module builds information spaces whose
//! data realizes the declared statistics without sampling error:
//!
//! * all relations share a key attribute `K`; every key value appears in
//!   every relation exactly `matches_per_key` times, so an equijoin probe
//!   matches exactly `js·|R| = matches_per_key` tuples;
//! * each relation carries a payload attribute `P` cycling over
//!   `0..1/σ` values, so the local condition `P = 0` selects exactly the
//!   declared fraction `σ`.
//!
//! A chain-join view over such a space has measured maintenance traffic
//! equal to the analytic `CF_T` (and `CF_M`) for every update — the
//! validation experiment reported in EXPERIMENTS.md.

use eve_esql::ViewDef;
use eve_misd::{AttributeInfo, RelationInfo, SiteId};
use eve_relational::{DataType, Relation, Schema, Tuple, Value};

use crate::engine::EveEngine;
use crate::error::Result;

/// Parameters of a uniform chain-join scenario.
#[derive(Debug, Clone)]
pub struct UniformSpaceSpec {
    /// Relations per site (Table 2 distribution); relation `j` of site `i`
    /// is named `R{i}_{j}`, the update origin is `R1_1`.
    pub distribution: Vec<usize>,
    /// Cardinality of every relation (Table 1: 400).
    pub cardinality: usize,
    /// Exact equijoin matches per key (`js·|R|`; Table 1: 2).
    pub matches_per_key: usize,
    /// Inverse selectivity: the local condition keeps one in
    /// `inverse_selectivity` tuples (Table 1 σ = 0.5 ⇒ 2). Zero disables
    /// local conditions (σ = 1).
    pub inverse_selectivity: usize,
    /// Declared byte size of each of the two attributes (Table 1's s = 100
    /// ⇒ 50 each).
    pub attr_bytes: u32,
}

impl Default for UniformSpaceSpec {
    fn default() -> Self {
        UniformSpaceSpec {
            distribution: vec![6],
            cardinality: 400,
            matches_per_key: 2,
            inverse_selectivity: 0,
            attr_bytes: 50,
        }
    }
}

impl UniformSpaceSpec {
    /// Total number of relations.
    #[must_use]
    pub fn relation_count(&self) -> usize {
        self.distribution.iter().sum()
    }

    /// The implied declared join selectivity `js = matches_per_key / |R|`.
    #[must_use]
    pub fn join_selectivity(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.matches_per_key as f64 / self.cardinality.max(1) as f64
        }
    }

    /// The implied declared local selectivity `σ`.
    #[must_use]
    pub fn selectivity(&self) -> f64 {
        if self.inverse_selectivity == 0 {
            1.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                1.0 / self.inverse_selectivity as f64
            }
        }
    }
}

/// Builds one relation extent: keys `0 .. card/matches` each repeated
/// `matches` times, payload cycling `0 .. inverse_selectivity`. Column byte
/// sizes carry the *declared* `attr_bytes` so measured transfer volumes use
/// the same widths as the analytic model.
fn build_extent(name: &str, spec: &UniformSpaceSpec) -> Result<Relation> {
    let schema = Schema::new(vec![
        eve_relational::ColumnDef::sized(
            eve_relational::ColumnRef::bare("K"),
            DataType::Int,
            spec.attr_bytes,
        ),
        eve_relational::ColumnDef::sized(
            eve_relational::ColumnRef::bare("P"),
            DataType::Int,
            spec.attr_bytes,
        ),
    ])?;
    let mut rows = Vec::with_capacity(spec.cardinality);
    let matches = spec.matches_per_key.max(1);
    let cycle = spec.inverse_selectivity.max(1);
    for i in 0..spec.cardinality {
        #[allow(clippy::cast_possible_wrap)]
        let key = (i / matches) as i64;
        #[allow(clippy::cast_possible_wrap)]
        let payload = (i % cycle) as i64;
        rows.push(Tuple::new(vec![Value::Int(key), Value::Int(payload)]));
    }
    Ok(Relation::with_tuples(name, schema, rows)?)
}

/// Builds an engine hosting the uniform space and the chain-join view
/// `SELECT R1_1.K FROM … WHERE R1_1.K = R_next.K AND … [AND R.P = 0 …]`.
///
/// Returns the engine and the view definition (not yet registered — callers
/// can materialize it or drive the maintainer directly).
///
/// # Errors
///
/// Construction failures (invalid distribution etc.).
pub fn build_uniform_space(spec: &UniformSpaceSpec) -> Result<(EveEngine, ViewDef)> {
    let mut engine = EveEngine::new();
    let mut names: Vec<String> = Vec::new();
    for (i, &count) in spec.distribution.iter().enumerate() {
        let site = SiteId(u32::try_from(i).unwrap_or(u32::MAX) + 1);
        engine.add_site(site, format!("IS{}", i + 1))?;
        for j in 0..count {
            let name = format!("R{}_{}", i + 1, j + 1);
            let info = RelationInfo {
                name: name.clone(),
                site,
                attributes: vec![
                    AttributeInfo::sized("K", DataType::Int, spec.attr_bytes),
                    AttributeInfo::sized("P", DataType::Int, spec.attr_bytes),
                ],
                cardinality: spec.cardinality as u64,
                selectivity: spec.selectivity(),
                blocking_factor: 10,
            };
            let extent = build_extent(&name, spec)?;
            engine.register_relation(info, extent)?;
            names.push(name);
        }
    }
    engine
        .mkb_mut()
        .set_default_join_selectivity(spec.join_selectivity());

    // Chain-join view: join every relation to the first on K; optional
    // local conditions (dispensable so rewritings exist).
    let mut sql = String::from("CREATE VIEW Chain (VE = '~') AS SELECT ");
    let select: Vec<String> = names
        .iter()
        .enumerate()
        .map(|(i, n)| format!("{n}.K AS K{i} (AD = true, AR = true)"))
        .collect();
    sql.push_str(&select.join(", "));
    sql.push_str(" FROM ");
    let from: Vec<String> = names.iter().map(|n| format!("{n} (RR = true)")).collect();
    sql.push_str(&from.join(", "));
    let mut clauses: Vec<String> = names
        .windows(2)
        .map(|w| format!("({}.K = {}.K)", w[0], w[1]))
        .collect();
    if spec.inverse_selectivity > 1 {
        // One local condition per relation except the origin (the analytic
        // model applies σ at the sites the delta visits).
        for n in names.iter().skip(1) {
            clauses.push(format!("({n}.P = 0) (CD = true)"));
        }
    }
    if !clauses.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&clauses.join(" AND "));
    }
    let view = eve_esql::parse_view(&sql)?;
    Ok((engine, view))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintainer::{maintain_view, DataUpdate};
    use eve_qc::{cost::cost_factors, MaintenancePlan, QcParams};
    use eve_relational::tup;

    #[test]
    fn extent_realizes_declared_statistics() {
        let spec = UniformSpaceSpec {
            distribution: vec![2],
            cardinality: 400,
            matches_per_key: 2,
            inverse_selectivity: 2,
            ..UniformSpaceSpec::default()
        };
        let r = build_extent("R", &spec).unwrap();
        assert_eq!(r.cardinality(), 400);
        // Each key appears exactly twice.
        let mut counts = std::collections::BTreeMap::new();
        for t in r.tuples() {
            *counts.entry(t.get(0).clone()).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c == 2));
        assert_eq!(counts.len(), 200);
        // P = 0 selects exactly half.
        let zeros = r
            .tuples()
            .iter()
            .filter(|t| t.get(1) == &Value::Int(0))
            .count();
        assert_eq!(zeros, 200);
    }

    #[test]
    fn measured_trace_matches_analytic_cf_exactly() {
        // The flagship validation: for several distributions, executing one
        // single-tuple update through Algorithm 1 produces exactly the
        // analytic CF_M and CF_T (σ = 0.5, js·|R| = 2 realized exactly).
        for distribution in [vec![6], vec![1, 5], vec![3, 3], vec![2, 2, 2]] {
            let spec = UniformSpaceSpec {
                distribution: distribution.clone(),
                inverse_selectivity: 2,
                ..UniformSpaceSpec::default()
            };
            let (mut engine, view) = build_uniform_space(&spec).unwrap();
            let mut extent = engine.evaluate(&view).unwrap();

            // One new tuple with a fresh key that matches… nothing. To get
            // the analytic expectation we insert a tuple with an EXISTING
            // key (key 0), which joins the declared js·|R| tuples per hop.
            let update = DataUpdate::insert("R1_1", vec![tup![0, 0]]);
            let mkb = engine.mkb().clone();
            let trace =
                maintain_view(&view, &mut extent, &update, engine.sites_mut(), &mkb).unwrap();

            let plan = MaintenancePlan::uniform(&distribution, spec.join_selectivity()).unwrap();
            let params = QcParams::default();
            let analytic = cost_factors(&plan, &params);
            #[allow(clippy::cast_precision_loss)]
            let measured_messages = trace.messages as f64;
            assert!(
                (measured_messages - analytic.messages).abs() < 1e-9,
                "{distribution:?}: messages {measured_messages} vs {}",
                analytic.messages
            );
            #[allow(clippy::cast_precision_loss)]
            let measured_bytes = trace.bytes as f64;
            assert!(
                (measured_bytes - analytic.transfer).abs() < 1e-9,
                "{distribution:?}: bytes {measured_bytes} vs {}",
                analytic.transfer
            );
        }
    }

    #[test]
    fn measured_io_matches_analytic_lower_bound_without_selections() {
        // Eq. 33 ignores the local selectivities σ, so its bounds describe
        // the σ = 1 walk. With clustered probes (max(1, ⌈matches/bfr⌉) = 1
        // block per probe) the measured I/O equals the *lower* bound
        // exactly: 1 + 2 + 4 + 8 + 16 = 31 for six Table-1 relations.
        use eve_qc::IoBound;
        for distribution in [vec![6], vec![2, 2, 2], vec![1, 5]] {
            let spec = UniformSpaceSpec {
                distribution: distribution.clone(),
                inverse_selectivity: 0, // σ = 1: no local conditions
                ..UniformSpaceSpec::default()
            };
            let (mut engine, view) = build_uniform_space(&spec).unwrap();
            let mut extent = engine.evaluate(&view).unwrap();
            engine.reset_io();
            let update = DataUpdate::insert("R1_1", vec![tup![0, 0]]);
            let mkb = engine.mkb().clone();
            let trace =
                maintain_view(&view, &mut extent, &update, engine.sites_mut(), &mkb).unwrap();
            let plan = MaintenancePlan::uniform(&distribution, spec.join_selectivity()).unwrap();
            let lower = eve_qc::cost::cf_io(&plan, IoBound::Lower);
            let upper = eve_qc::cost::cf_io(&plan, IoBound::Upper);
            #[allow(clippy::cast_precision_loss)]
            let measured = trace.ios as f64;
            assert!(
                (measured - lower).abs() < 1e-9,
                "{distribution:?}: measured {measured} vs lower {lower}"
            );
            assert!(measured <= upper + 1e-9);
        }
    }

    #[test]
    fn selections_push_measured_io_below_eq33() {
        // With σ = 0.5 the executed walk filters the delta between joins,
        // landing *below* Eq. 33's σ-free lower bound — the analytic model
        // deliberately over-approximates here (documented in EXPERIMENTS.md).
        use eve_qc::IoBound;
        let spec = UniformSpaceSpec {
            distribution: vec![6],
            inverse_selectivity: 2,
            ..UniformSpaceSpec::default()
        };
        let (mut engine, view) = build_uniform_space(&spec).unwrap();
        let mut extent = engine.evaluate(&view).unwrap();
        engine.reset_io();
        let update = DataUpdate::insert("R1_1", vec![tup![0, 0]]);
        let mkb = engine.mkb().clone();
        let trace = maintain_view(&view, &mut extent, &update, engine.sites_mut(), &mkb).unwrap();
        let plan = MaintenancePlan::uniform(&[6], spec.join_selectivity()).unwrap();
        let lower = eve_qc::cost::cf_io(&plan, IoBound::Lower);
        #[allow(clippy::cast_precision_loss)]
        let measured = trace.ios as f64;
        assert!(
            measured < lower,
            "measured {measured} vs σ-free lower {lower}"
        );
    }

    #[test]
    fn join_selectivity_accessor() {
        let spec = UniformSpaceSpec::default();
        assert!((spec.join_selectivity() - 0.005).abs() < 1e-12);
        assert_eq!(spec.relation_count(), 6);
        assert_eq!(spec.selectivity(), 1.0);
        let half = UniformSpaceSpec {
            inverse_selectivity: 2,
            ..UniformSpaceSpec::default()
        };
        assert!((half.selectivity() - 0.5).abs() < 1e-12);
    }
}
