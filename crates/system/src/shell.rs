//! A line-oriented command interpreter over [`EveEngine`] — the interactive
//! front-end used by `examples/eve_shell.rs`, and a convenient scripting
//! surface for demos and tests.
//!
//! ```text
//! site 1 customers
//! relation Customer @1 (Name:text, City:text)
//! insert Customer ('ann', 'Boston')
//! pc Customer (Name, City) = Mirror (FullName, Town)
//! view CREATE VIEW V (VE = '~') AS SELECT C.Name FROM Customer C (RR = true)
//! update Customer insert ('bob', 'Worcester')
//! change delete-relation Customer
//! show views
//! query V
//! costs
//! rebalance
//! ```

use eve_misd::{AttributeInfo, RelationInfo, SchemaChange, SiteId};
use eve_relational::{ColumnDef, ColumnRef, DataType, IndexKind, Relation, Schema, Tuple, Value};

use crate::durable::DurableEngine;
use crate::engine::EveEngine;
use crate::error::{Error, Result};
use crate::maintainer::DataUpdate;

/// The engine the shell drives: in-memory only, or durably backed by an
/// evolution store (after `open <dir>`).
#[derive(Debug)]
// One Host lives per Shell, so the size spread between the variants is
// irrelevant — boxing would only add a pointer chase to every command.
#[allow(clippy::large_enum_variant)]
enum Host {
    Plain(EveEngine),
    Durable(DurableEngine),
}

/// The interactive shell: an [`EveEngine`] plus a command interpreter.
#[derive(Debug)]
pub struct Shell {
    host: Host,
}

impl Default for Shell {
    fn default() -> Shell {
        Shell::new()
    }
}

impl Shell {
    /// A shell over a fresh (in-memory) engine.
    #[must_use]
    pub fn new() -> Shell {
        Shell {
            host: Host::Plain(EveEngine::new()),
        }
    }

    /// A shell directly over a durable engine — the server's per-tenant
    /// host, where every session must hit the evolution log without an
    /// interactive `open` first.
    #[must_use]
    pub fn with_durable(durable: DurableEngine) -> Shell {
        Shell {
            host: Host::Durable(durable),
        }
    }

    /// The wrapped engine.
    #[must_use]
    pub fn engine(&self) -> &EveEngine {
        match &self.host {
            Host::Plain(e) => e,
            Host::Durable(d) => d.engine(),
        }
    }

    /// Mutable engine access. With an open store this bypasses the
    /// evolution log — prefer the shell commands, which route through the
    /// durable wrappers.
    pub fn engine_mut(&mut self) -> &mut EveEngine {
        match &mut self.host {
            Host::Plain(e) => e,
            Host::Durable(d) => d.engine_mut(),
        }
    }

    /// The open durable engine, if `open <dir>` was executed.
    #[must_use]
    pub fn durable(&self) -> Option<&DurableEngine> {
        match &self.host {
            Host::Plain(_) => None,
            Host::Durable(d) => Some(d),
        }
    }

    /// Executes one command line, returning the text to display.
    ///
    /// # Errors
    ///
    /// Any engine error; unknown commands and malformed arguments surface as
    /// [`Error::State`] with a usage hint.
    pub fn execute(&mut self, line: &str) -> Result<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let cmd = cmd.to_ascii_lowercase();
        // Fail closed on a poisoned durable host: a mutation's re-anchoring
        // snapshot failed, so the on-disk store is behind the live engine.
        // Mutating (and history-rewriting) commands are refused *before*
        // they touch the engine — they would widen the divergence — while
        // reads and `checkpoint` (the remedy) stay available.
        if let Host::Durable(d) = &self.host {
            if let Some(detail) = d.poison_detail() {
                if matches!(
                    cmd.as_str(),
                    "site"
                        | "relation"
                        | "insert"
                        | "pc"
                        | "jc"
                        | "view"
                        | "update"
                        | "change"
                        | "rebalance"
                        | "compact"
                        | "index"
                ) {
                    return Err(Error::Poisoned {
                        detail: detail.to_owned(),
                    });
                }
            }
        }
        match cmd.as_str() {
            "help" => Ok(HELP.trim().to_owned()),
            "site" => self.cmd_site(rest),
            "relation" => self.cmd_relation(rest),
            "insert" => self.cmd_seed(rest),
            "pc" => self.cmd_pc(rest),
            "jc" => self.cmd_jc(rest),
            "view" => self.cmd_view(rest),
            "update" => self.cmd_update(rest),
            "change" => self.cmd_change(rest),
            "index" => self.cmd_index(rest),
            "exec" => self.cmd_exec(rest),
            "query" => self.cmd_query(rest),
            "show" => self.cmd_show(rest),
            "costs" => self.cmd_costs(),
            "stats" => Ok(self.cmd_stats()),
            "metrics" => self.cmd_metrics(rest),
            "trace" => self.cmd_trace(rest),
            "rebalance" => self.cmd_rebalance(),
            "open" => self.cmd_open(rest),
            "checkpoint" => self.cmd_checkpoint(),
            "log-stats" => self.cmd_log_stats(),
            "travel" => self.cmd_travel(rest),
            "compact" => self.cmd_compact(),
            other => Err(usage(&format!("unknown command `{other}` — try `help`"))),
        }
    }

    fn cmd_site(&mut self, rest: &str) -> Result<String> {
        let mut parts = rest.split_whitespace();
        let id: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| usage("site <id> <name>"))?;
        let name = parts.next().ok_or_else(|| usage("site <id> <name>"))?;
        match &mut self.host {
            Host::Plain(e) => e.add_site(SiteId(id), name)?,
            Host::Durable(d) => d.add_site(SiteId(id), name)?,
        }
        Ok(format!("registered site {id} ({name})"))
    }

    /// `relation Name @site (attr:type[:bytes], …) [sel=σ] [bfr=n]`
    fn cmd_relation(&mut self, rest: &str) -> Result<String> {
        const USAGE: &str = "relation <Name> @<site> (<attr>:<type>[:bytes], ...) [sel=σ] [bfr=n]";
        let (head, attrs_and_opts) = rest.split_once('(').ok_or_else(|| usage(USAGE))?;
        let mut head_parts = head.split_whitespace();
        let name = head_parts.next().ok_or_else(|| usage(USAGE))?.to_owned();
        let site: u32 = head_parts
            .next()
            .and_then(|s| s.strip_prefix('@'))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| usage(USAGE))?;
        let (attr_list, opts) = attrs_and_opts.split_once(')').ok_or_else(|| usage(USAGE))?;

        let mut attributes = Vec::new();
        for spec in attr_list.split(',') {
            let mut f = spec.trim().split(':');
            let attr_name = f
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| usage(USAGE))?;
            let ty = match f.next().map(str::to_ascii_lowercase).as_deref() {
                Some("int") | None => DataType::Int,
                Some("float") => DataType::Float,
                Some("bool") => DataType::Bool,
                Some("text") => DataType::Text,
                Some(other) => return Err(usage(&format!("unknown type `{other}`"))),
            };
            let attr = match f.next() {
                Some(bytes) => AttributeInfo::sized(
                    attr_name,
                    ty,
                    bytes.trim().parse().map_err(|_| usage(USAGE))?,
                ),
                None => AttributeInfo::new(attr_name, ty),
            };
            attributes.push(attr);
        }

        let mut info = RelationInfo::new(name.clone(), SiteId(site), attributes, 0);
        for opt in opts.split_whitespace() {
            if let Some(v) = opt.strip_prefix("sel=") {
                info.selectivity = v.parse().map_err(|_| usage(USAGE))?;
            } else if let Some(v) = opt.strip_prefix("bfr=") {
                info.blocking_factor = v.parse().map_err(|_| usage(USAGE))?;
            } else if !opt.is_empty() {
                return Err(usage(USAGE));
            }
        }

        let schema = Schema::new(
            info.attributes
                .iter()
                .map(|a| ColumnDef::sized(ColumnRef::bare(a.name.clone()), a.ty, a.byte_size))
                .collect(),
        )?;
        let extent = Relation::empty(name.clone(), schema);
        match &mut self.host {
            Host::Plain(e) => e.register_relation(info, extent)?,
            Host::Durable(d) => d.register_relation(info, extent)?,
        }
        Ok(format!("registered relation {name} @ site {site}"))
    }

    /// Parses `('ann', 3, true)` into a tuple (types checked on insert).
    fn parse_tuple(text: &str) -> Result<Tuple> {
        let inner = text
            .trim()
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| usage("tuple must be parenthesized: (v1, v2, ...)"))?;
        let mut values = Vec::new();
        for field in split_top_level(inner) {
            let f = field.trim();
            let value = if let Some(s) = f.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
                Value::Text(s.to_owned())
            } else if f.eq_ignore_ascii_case("true") {
                Value::Bool(true)
            } else if f.eq_ignore_ascii_case("false") {
                Value::Bool(false)
            } else if let Ok(i) = f.parse::<i64>() {
                Value::Int(i)
            } else if let Ok(x) = f.parse::<f64>() {
                Value::float(x)?
            } else {
                return Err(usage(&format!("cannot parse value `{f}`")));
            };
            values.push(value);
        }
        Ok(Tuple::new(values))
    }

    /// `insert <Relation> (v1, v2, …)` — seeds base data *without* view
    /// maintenance (initial loading).
    fn cmd_seed(&mut self, rest: &str) -> Result<String> {
        let (rel, tuple_text) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| usage("insert <Relation> (v1, v2, ...)"))?;
        let tuple = Self::parse_tuple(tuple_text)?;
        match &mut self.host {
            Host::Plain(e) => {
                let info = e.mkb().relation(rel)?;
                let site = info.site.0;
                e.sites_mut()
                    .get_mut(&site)
                    .ok_or_else(|| Error::State {
                        detail: format!("unknown site {site}"),
                    })?
                    .apply_update(rel, &[tuple], &[])?;
            }
            Host::Durable(d) => d.seed_tuples(rel, vec![tuple])?,
        }
        Ok(format!("seeded 1 tuple into {rel}"))
    }

    /// `pc A (x, y) <=|=|>= B (u, v)` — containment constraint.
    fn cmd_pc(&mut self, rest: &str) -> Result<String> {
        const USAGE: &str = "pc <A> (attrs) <= | = | >= <B> (attrs)";
        let (left, op, right) = split_constraint(rest).ok_or_else(|| usage(USAGE))?;
        let parse_side = |s: &str| -> Result<eve_misd::PcSide> {
            let (rel, attrs) = s.split_once('(').ok_or_else(|| usage(USAGE))?;
            let attrs = attrs.trim().strip_suffix(')').ok_or_else(|| usage(USAGE))?;
            let names: Vec<&str> = attrs.split(',').map(str::trim).collect();
            Ok(eve_misd::PcSide::projection(rel.trim(), &names))
        };
        let relationship = match op {
            "<=" => eve_misd::PcRelationship::Subset,
            "=" => eve_misd::PcRelationship::Equivalent,
            ">=" => eve_misd::PcRelationship::Superset,
            _ => return Err(usage(USAGE)),
        };
        let pc = eve_misd::PcConstraint::new(parse_side(left)?, relationship, parse_side(right)?);
        match &mut self.host {
            Host::Plain(e) => e.mkb_mut().add_pc_constraint(pc)?,
            Host::Durable(d) => d.add_pc_constraint(pc)?,
        }
        Ok("registered PC constraint".to_owned())
    }

    /// `jc A.x = B.y`
    fn cmd_jc(&mut self, rest: &str) -> Result<String> {
        const USAGE: &str = "jc <A>.<x> = <B>.<y>";
        let (l, r) = rest.split_once('=').ok_or_else(|| usage(USAGE))?;
        let lref = ColumnRef::parse(l.trim());
        let rref = ColumnRef::parse(r.trim());
        let (Some(lq), Some(rq)) = (lref.qualifier.clone(), rref.qualifier.clone()) else {
            return Err(usage(USAGE));
        };
        let jc = eve_misd::JoinConstraint::new(
            lq,
            rq,
            vec![eve_relational::PrimitiveClause::eq(lref, rref)],
        );
        match &mut self.host {
            Host::Plain(e) => e.mkb_mut().add_join_constraint(jc)?,
            Host::Durable(d) => d.add_join_constraint(jc)?,
        }
        Ok("registered join constraint".to_owned())
    }

    fn cmd_view(&mut self, rest: &str) -> Result<String> {
        let mv = match &mut self.host {
            Host::Plain(e) => e.define_view_sql(rest)?,
            Host::Durable(d) => d.define_view_sql(rest)?,
        };
        Ok(format!(
            "materialized view {} with {} rows",
            mv.def.name,
            mv.extent.cardinality()
        ))
    }

    /// `update <Relation> insert|delete (v1, …)`
    fn cmd_update(&mut self, rest: &str) -> Result<String> {
        const USAGE: &str = "update <Relation> insert|delete (v1, v2, ...)";
        let mut parts = rest.splitn(3, char::is_whitespace);
        let rel = parts.next().ok_or_else(|| usage(USAGE))?;
        let kind = parts.next().ok_or_else(|| usage(USAGE))?;
        let tuple = Self::parse_tuple(parts.next().ok_or_else(|| usage(USAGE))?)?;
        let update = match kind.to_ascii_lowercase().as_str() {
            "insert" => DataUpdate::insert(rel, vec![tuple]),
            "delete" => DataUpdate::delete(rel, vec![tuple]),
            _ => return Err(usage(USAGE)),
        };
        let traces: Vec<(String, crate::maintainer::MaintenanceTrace)> = match &mut self.host {
            Host::Plain(e) => e.notify_data_update(&update)?,
            Host::Durable(d) => d.notify_data_update(&update)?.into_iter().collect(),
        };
        let mut out = format!("update applied to {rel}");
        for (view, t) in traces {
            out.push_str(&format!(
                "\n  {view}: {} msgs, {} bytes, {} I/Os, +{} −{} rows",
                t.messages, t.bytes, t.ios, t.view_inserts, t.view_deletes
            ));
        }
        Ok(out)
    }

    /// `change delete-relation R | delete-attribute R.A |
    ///  rename-relation A B | rename-attribute R.A B`
    fn cmd_change(&mut self, rest: &str) -> Result<String> {
        const USAGE: &str = "change delete-relation <R> | delete-attribute <R>.<A> | \
             rename-relation <A> <B> | rename-attribute <R>.<A> <B>";
        let mut parts = rest.split_whitespace();
        let kind = parts.next().ok_or_else(|| usage(USAGE))?;
        let change = match kind.to_ascii_lowercase().as_str() {
            "delete-relation" => SchemaChange::DeleteRelation {
                relation: parts.next().ok_or_else(|| usage(USAGE))?.to_owned(),
            },
            "delete-attribute" => {
                let c = ColumnRef::parse(parts.next().ok_or_else(|| usage(USAGE))?);
                SchemaChange::DeleteAttribute {
                    relation: c.qualifier.ok_or_else(|| usage(USAGE))?,
                    attribute: c.name,
                }
            }
            "rename-relation" => SchemaChange::RenameRelation {
                from: parts.next().ok_or_else(|| usage(USAGE))?.to_owned(),
                to: parts.next().ok_or_else(|| usage(USAGE))?.to_owned(),
            },
            "rename-attribute" => {
                let c = ColumnRef::parse(parts.next().ok_or_else(|| usage(USAGE))?);
                SchemaChange::RenameAttribute {
                    relation: c.qualifier.ok_or_else(|| usage(USAGE))?,
                    from: c.name,
                    to: parts.next().ok_or_else(|| usage(USAGE))?.to_owned(),
                }
            }
            _ => return Err(usage(USAGE)),
        };
        let reports = match &mut self.host {
            Host::Plain(e) => e.notify_capability_change(&change, None)?,
            Host::Durable(d) => d.notify_capability_change(&change, None)?,
        };
        let mut out = format!("applied {change}");
        for r in reports {
            if !r.affected {
                continue;
            }
            if let Some(adopted) = &r.adopted {
                out.push_str(&format!(
                    "\n  {}: adopted rewriting (QC {:.4}, DD {:.4}) — {}",
                    r.view_name, adopted.qc, adopted.divergence.dd, adopted.rewriting.provenance
                ));
            } else {
                out.push_str(&format!(
                    "\n  {}: no legal rewriting — dropped",
                    r.view_name
                ));
            }
        }
        Ok(out)
    }

    fn cmd_query(&mut self, rest: &str) -> Result<String> {
        let mv = self.engine().view(rest.trim())?;
        Ok(mv.extent.distinct().to_string())
    }

    fn cmd_show(&mut self, rest: &str) -> Result<String> {
        match rest.trim().to_ascii_lowercase().as_str() {
            "views" => {
                let mut out = String::new();
                for mv in self.engine().views() {
                    out.push_str(&format!(
                        "{} [{} rows]\n{}\n",
                        mv.def.name,
                        mv.extent.cardinality(),
                        mv.def
                    ));
                }
                Ok(if out.is_empty() {
                    "(no views)".into()
                } else {
                    out
                })
            }
            "relations" => {
                let mut out = String::new();
                for info in self.engine().mkb().relations() {
                    out.push_str(&format!("{info}\n"));
                }
                Ok(if out.is_empty() {
                    "(no relations)".into()
                } else {
                    out
                })
            }
            "constraints" => {
                let mut out = String::new();
                for pc in self.engine().mkb().pc_constraints() {
                    out.push_str(&format!("{pc}\n"));
                }
                for jc in self.engine().mkb().join_constraints() {
                    out.push_str(&format!("{jc}\n"));
                }
                Ok(if out.is_empty() {
                    "(no constraints)".into()
                } else {
                    out
                })
            }
            other => Err(usage(&format!(
                "show views|relations|constraints (got `{other}`)"
            ))),
        }
    }

    fn cmd_costs(&mut self) -> Result<String> {
        let mut out = String::new();
        for report in self.engine().cost_report()? {
            out.push_str(&format!(
                "{}: total {:.1}\n",
                report.view_name, report.total_cost
            ));
            for (origin, f) in report.per_origin {
                out.push_str(&format!(
                    "  origin {origin}: CF_M {:.0}, CF_T {:.0}, CF_IO {:.0}\n",
                    f.messages, f.transfer, f.io
                ));
            }
        }
        Ok(if out.is_empty() {
            "(no views)".into()
        } else {
            out
        })
    }

    /// `index <Relation> <column> [hash|sorted]` — declare (and warm) a
    /// secondary index on a hosted base relation. Durable hosts log the
    /// declaration so it survives recovery.
    fn cmd_index(&mut self, rest: &str) -> Result<String> {
        const USAGE: &str = "index <Relation> <column> [hash|sorted]";
        let mut parts = rest.split_whitespace();
        let relation = parts.next().ok_or_else(|| usage(USAGE))?.to_owned();
        let column = parts.next().ok_or_else(|| usage(USAGE))?.to_owned();
        let kind = match parts.next().map(str::to_ascii_lowercase).as_deref() {
            Some("hash") | None => IndexKind::Hash,
            Some("sorted") => IndexKind::Sorted,
            Some(other) => return Err(usage(&format!("unknown index kind `{other}`"))),
        };
        let added = match &mut self.host {
            Host::Plain(e) => e.declare_index(&relation, &column, kind)?,
            Host::Durable(d) => d.declare_index(&relation, &column, kind)?,
        };
        let shape = match kind {
            IndexKind::Hash => "hash",
            IndexKind::Sorted => "sorted",
        };
        Ok(if added {
            format!("declared {shape} index on {relation}.{column}")
        } else {
            format!("{shape} index on {relation}.{column} already declared (re-warmed)")
        })
    }

    /// `exec [<parallelism> [<morsel-rows>]]` — set (or show) the engine's
    /// intra-query execution knobs. A runtime tuning knob only: it is not
    /// logged, so recovery starts serial.
    fn cmd_exec(&mut self, rest: &str) -> Result<String> {
        const USAGE: &str = "exec [<parallelism> [<morsel-rows>]]";
        let mut parts = rest.split_whitespace();
        let Some(par) = parts.next() else {
            let o = self.engine().exec_options;
            return Ok(format!(
                "exec: {} worker(s), {} rows/morsel",
                o.parallelism.max(1),
                o.morsel_rows()
            ));
        };
        let parallelism: usize = par.parse().map_err(|_| usage(USAGE))?;
        if parallelism == 0 || parallelism > 256 {
            return Err(usage("parallelism must be in 1..=256"));
        }
        let morsel_rows = match parts.next() {
            None => self.engine().exec_options.morsel_rows(),
            Some(m) => {
                let m: usize = m.parse().map_err(|_| usage(USAGE))?;
                if m == 0 {
                    return Err(usage("morsel-rows must be at least 1"));
                }
                m
            }
        };
        let opts = &mut self.engine_mut().exec_options;
        opts.parallelism = parallelism;
        opts.morsel_rows = morsel_rows;
        Ok(format!(
            "exec: {parallelism} worker(s), {morsel_rows} rows/morsel"
        ))
    }

    /// `stats` — measured resource accounting since the last reset, plus
    /// the cache/index counters of the rewrite-search machinery and (with
    /// an open store) the evolution-log I/O counters.
    fn cmd_stats(&mut self) -> String {
        let (rw_hits, rw_misses) = self.engine().rewrite_cache_stats();
        let (pc_hits, pc_misses) = self.engine().partner_cache_stats();
        let (ix_hits, ix_misses) = self.engine().mkb_index_stats();
        let cl = self.engine().column_layer_stats();
        let mut out = format!(
            "total I/O: {} blocks\n\
             total messages: {}\n\
             rewrite cache: {rw_hits} hits, {rw_misses} misses\n\
             partner cache: {pc_hits} hits, {pc_misses} misses\n\
             mkb index: {ix_hits} hits, {ix_misses} misses\n\
             columnar: {}/{} extents materialized\n\
             indexes: {} hash, {} sorted ({} builds, {} hits, {} maintenance ops)\n\
             interned: {} symbols ({} hits, {} misses)\n\
             exec: {} workers, {} morsels ({} steals), {} partitions, \
             {} parallel ops, {} declined",
            self.engine().total_io(),
            self.engine().total_messages(),
            cl.columnar_built,
            cl.extents,
            cl.index.hash_indexes,
            cl.index.sorted_indexes,
            cl.index.builds,
            cl.index.hits,
            cl.index.maintenance_ops,
            cl.intern.symbols,
            cl.intern.hits,
            cl.intern.misses,
            self.engine().exec_options.parallelism.max(1),
            cl.exec.morsels,
            cl.exec.steals,
            cl.exec.partitions,
            cl.exec.parallel_ops,
            cl.exec.serial_fallbacks
        );
        if let Host::Durable(d) = &self.host {
            let s = d.store_stats();
            out.push_str(&format!(
                "\nstore: {} records, {} log bytes, {} fsyncs, {} snapshots \
                 ({} bytes), {} replayed, {} torn bytes truncated",
                s.records_appended,
                s.log_bytes_appended,
                s.fsyncs,
                s.snapshots_written,
                s.snapshot_bytes_written,
                s.records_replayed,
                s.torn_bytes_truncated
            ));
        }
        out
    }

    /// `metrics [prom|reset]` — the merged metrics-registry snapshot:
    /// process-global families (`exec.`, `index.`, `intern.`, `store.`,
    /// `search.`, `engine.`) plus this engine's per-instance counters
    /// (`mkb.`, `cache.`). `prom` renders Prometheus text exposition;
    /// `reset` zeroes every counter and histogram.
    fn cmd_metrics(&mut self, rest: &str) -> Result<String> {
        match rest {
            "" => Ok(self
                .engine()
                .metrics_snapshot()
                .render_text()
                .trim_end()
                .to_owned()),
            "prom" => Ok(self
                .engine()
                .metrics_snapshot()
                .prometheus()
                .trim_end()
                .to_owned()),
            "reset" => {
                eve_trace::global().reset();
                self.engine().telemetry_registry().reset();
                Ok("metrics reset".to_owned())
            }
            other => Err(usage(&format!("metrics [prom|reset] (got `{other}`)"))),
        }
    }

    /// `trace on|off|json|clear` — span recording control and the
    /// `chrome://tracing` JSON dump of the recorded events.
    fn cmd_trace(&mut self, rest: &str) -> Result<String> {
        match rest {
            "on" => {
                eve_trace::set_enabled(true);
                Ok("tracing on".to_owned())
            }
            "off" => {
                eve_trace::set_enabled(false);
                Ok("tracing off".to_owned())
            }
            "clear" => {
                eve_trace::clear_spans();
                Ok("trace buffer cleared".to_owned())
            }
            "json" => Ok(eve_trace::chrome_json()),
            _ => Err(usage("trace on|off|json|clear")),
        }
    }

    /// `open <dir>` — attach an evolution store: recover from it when it
    /// exists, otherwise create it around the shell's current engine state.
    fn cmd_open(&mut self, rest: &str) -> Result<String> {
        let dir = rest.trim();
        if dir.is_empty() {
            return Err(usage("open <store-directory>"));
        }
        if self.durable().is_some() {
            return Err(Error::State {
                detail: "a store is already open in this shell".into(),
            });
        }
        let path = std::path::Path::new(dir);
        if eve_store::EvolutionStore::exists(path)? {
            let (durable, report) = DurableEngine::open(path)?;
            let msg = format!(
                "recovered store {dir}: snapshot seq {:?}, {} records replayed, \
                 {} torn bytes truncated, generation {}",
                report.snapshot_seq,
                report.replayed_records,
                report.torn_bytes_truncated,
                report.generation
            );
            self.host = Host::Durable(durable);
            Ok(msg)
        } else {
            // Bootstrap the store with the current in-memory state. Clone
            // rather than move: a failing creation (bad path, full disk)
            // must leave the session's engine untouched.
            let durable = DurableEngine::create_with(path, self.engine().clone())?;
            self.host = Host::Durable(durable);
            Ok(format!("created store {dir} (bootstrap snapshot written)"))
        }
    }

    /// The open durable engine, mutably — the server drives checkpoints
    /// and budget resets through this.
    ///
    /// # Errors
    ///
    /// [`Error::State`] when no store is open.
    pub fn durable_mut(&mut self) -> Result<&mut DurableEngine> {
        match &mut self.host {
            Host::Durable(d) => Ok(d),
            Host::Plain(_) => Err(Error::State {
                detail: "no store is open — run `open <dir>` first".into(),
            }),
        }
    }

    /// `checkpoint` — write a snapshot and rotate the log segment.
    fn cmd_checkpoint(&mut self) -> Result<String> {
        let d = self.durable_mut()?;
        let seq = d.checkpoint()?;
        Ok(format!(
            "snapshot written at seq {seq} (generation {})",
            d.engine().mkb().generation()
        ))
    }

    /// `log-stats` — the store's layout and I/O counters.
    fn cmd_log_stats(&mut self) -> Result<String> {
        let d = self.durable_mut()?;
        let s = d.store_stats();
        let snapshots = d.snapshot_index()?;
        let segments = d.segment_count()?;
        let mut out = format!(
            "store {}\nnext seq: {}\nsegments: {segments}\nsnapshots: {}\n",
            d.dir().display(),
            d.next_seq(),
            snapshots.len()
        );
        for meta in snapshots {
            let kind = match meta.kind {
                eve_store::SnapshotKind::Full => "full",
                eve_store::SnapshotKind::Delta => "delta",
            };
            out.push_str(&format!(
                "  snap seq {} @ generation {} [{kind}]\n",
                meta.seq, meta.generation
            ));
        }
        let records_per_fsync = if s.fsyncs == 0 {
            0.0
        } else {
            s.records_appended as f64 / s.fsyncs as f64
        };
        out.push_str(&format!(
            "appended: {} records, {} bytes, {} fsyncs \
             ({} group commits, {records_per_fsync:.1} records/fsync)\n\
             snapshots written: {} ({} bytes, {} deltas)\n\
             replayed: {} records; torn: {} bytes / {} records truncated\n\
             recovery: {} threads, {} segments read in parallel",
            s.records_appended,
            s.log_bytes_appended,
            s.fsyncs,
            s.group_commits,
            s.snapshots_written,
            s.snapshot_bytes_written,
            s.delta_snapshots_written,
            s.records_replayed,
            s.torn_bytes_truncated,
            s.torn_records_truncated,
            s.replay_threads,
            s.segments_read_parallel
        ));
        Ok(out)
    }

    /// `travel <generation> [<view>]` — reconstruct a historical state;
    /// with a view name, print that view's extent as of the generation.
    fn cmd_travel(&mut self, rest: &str) -> Result<String> {
        const USAGE: &str = "travel <generation> [<view>]";
        let mut parts = rest.split_whitespace();
        let generation: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| usage(USAGE))?;
        let view = parts.next();
        let dir = self.durable_mut()?.dir().to_path_buf();
        let historical = DurableEngine::open_at(&dir, generation)?;
        match view {
            Some(name) => {
                let mv = historical.view(name)?;
                Ok(format!(
                    "{name} @ generation {generation} (actual {}):\n{}",
                    historical.mkb().generation(),
                    mv.extent.distinct()
                ))
            }
            None => {
                let mut out = format!(
                    "state @ generation {generation} (actual {}):\n",
                    historical.mkb().generation()
                );
                out.push_str(&format!(
                    "  relations: {}\n",
                    historical
                        .mkb()
                        .relations()
                        .map(|r| r.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
                for mv in historical.views() {
                    out.push_str(&format!(
                        "  view {} [{} rows]\n",
                        mv.def.name,
                        mv.extent.cardinality()
                    ));
                }
                Ok(out)
            }
        }
    }

    /// `compact` — drop history before the newest snapshot.
    fn cmd_compact(&mut self) -> Result<String> {
        let d = self.durable_mut()?;
        let (segs, snaps) = d.compact()?;
        Ok(format!(
            "compacted: {segs} segments and {snaps} snapshots dropped \
             (time travel now starts at the newest snapshot)"
        ))
    }

    fn cmd_rebalance(&mut self) -> Result<String> {
        let mut out = String::new();
        let reports = match &mut self.host {
            Host::Plain(e) => e.rebalance_views()?,
            Host::Durable(d) => d.rebalance_views()?,
        };
        for r in reports {
            if r.migrated {
                out.push_str(&format!(
                    "{}: migrated {} → {} (cost {:.1} → {:.1})\n",
                    r.view_name,
                    r.from_relation.unwrap_or_default(),
                    r.to_relation.unwrap_or_default(),
                    r.old_cost,
                    r.new_cost
                ));
            } else {
                out.push_str(&format!("{}: no cheaper equivalent source\n", r.view_name));
            }
        }
        Ok(if out.is_empty() {
            "(no views)".into()
        } else {
            out
        })
    }
}

fn usage(msg: &str) -> Error {
    Error::State {
        detail: format!("usage: {msg}"),
    }
}

/// Splits on commas that are not inside single quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '\'' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() || !out.is_empty() {
        out.push(cur);
    }
    out
}

/// Splits `A (…) OP B (…)` on the constraint operator outside parentheses.
fn split_constraint(s: &str) -> Option<(&str, &str, &str)> {
    let mut depth = 0i32;
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            b'<' | b'>' if depth == 0 && i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                return Some((&s[..i], &s[i..i + 2], &s[i + 2..]));
            }
            b'=' if depth == 0 => {
                return Some((&s[..i], "=", &s[i + 1..]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

const HELP: &str = "
EVE shell commands:
  site <id> <name>                         register an information source
  relation <N> @<site> (a:type[:bytes], …) register a relation (empty extent)
  insert <N> (v1, v2, …)                   seed base data (no maintenance)
  pc <A> (attrs) <=|=|>= <B> (attrs)       containment constraint
  jc <A>.<x> = <B>.<y>                     join constraint
  view CREATE VIEW …                       define an E-SQL view
  update <N> insert|delete (v1, …)         data update + view maintenance
  change delete-relation <R> | delete-attribute <R>.<A>
         | rename-relation <A> <B> | rename-attribute <R>.<A> <B>
  index <R> <column> [hash|sorted]         declare a secondary index (durable hint)
  exec [<parallelism> [<morsel-rows>]]     set/show intra-query morsel parallelism
  query <View>                             print a view's extent
  show views|relations|constraints         inspect the warehouse / MKB
  costs                                    per-view analytic maintenance cost
  stats                                    measured I/O + messages, cache/index counters
  metrics [prom|reset]                     metrics-registry snapshot (text or Prometheus)
  trace on|off|json|clear                  span recording + chrome://tracing dump
  rebalance                                migrate views to cheaper replicas
  open <dir>                               attach a durable evolution store (recover or create)
  checkpoint                               write a snapshot, rotate the log segment
  log-stats                                store layout + I/O counters
  travel <generation> [<view>]             reconstruct a past state (optionally query a view)
  compact                                  drop history before the newest snapshot
  help                                     this text
";

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_shell() -> Shell {
        let mut sh = Shell::new();
        for cmd in [
            "site 1 customers",
            "site 2 flights",
            "relation Customer @1 (Name:text, City:text)",
            "relation FlightRes @2 (PName:text, Dest:text)",
            "insert Customer ('ann', 'Boston')",
            "insert Customer ('bob', 'Worcester')",
            "insert FlightRes ('ann', 'Asia')",
            "view CREATE VIEW V (VE = '~') AS SELECT C.Name FROM Customer C (RR = true), \
             FlightRes F WHERE (C.Name = F.PName) AND (F.Dest = 'Asia')",
        ] {
            sh.execute(cmd).unwrap_or_else(|e| panic!("{cmd}: {e}"));
        }
        sh
    }

    #[test]
    fn full_session_flows() {
        let mut sh = seeded_shell();
        let out = sh.execute("query V").unwrap();
        assert!(out.contains("'ann'"), "{out}");
        assert!(!out.contains("'bob'"));

        let out = sh
            .execute("update FlightRes insert ('bob', 'Asia')")
            .unwrap();
        assert!(out.contains("+1"), "{out}");
        assert!(sh.execute("query V").unwrap().contains("'bob'"));

        let out = sh.execute("show views").unwrap();
        assert!(out.contains("CREATE VIEW V"));
        let out = sh.execute("show relations").unwrap();
        assert!(out.contains("Customer"));
        let out = sh.execute("costs").unwrap();
        assert!(out.contains("V: total"));
        let out = sh.execute("stats").unwrap();
        assert!(out.contains("total I/O"), "{out}");
        assert!(out.contains("total messages"), "{out}");
        assert!(out.contains("rewrite cache"), "{out}");
        assert!(out.contains("partner cache"), "{out}");
        assert!(out.contains("mkb index"), "{out}");
        assert!(out.contains("columnar:"), "{out}");
        assert!(out.contains("indexes:"), "{out}");
        assert!(out.contains("interned:"), "{out}");
    }

    #[test]
    fn metrics_and_trace_commands() {
        let mut sh = seeded_shell();
        sh.execute("update FlightRes insert ('cal', 'Asia')")
            .unwrap();
        let out = sh.execute("metrics").unwrap();
        assert!(out.contains("mkb.index_hits"), "{out}");
        assert!(out.contains("cache.rewrite_hits"), "{out}");
        assert!(out.contains("engine.data_updates"), "{out}");
        let out = sh.execute("metrics prom").unwrap();
        assert!(out.contains("engine_data_updates"), "{out}");
        assert!(sh.execute("metrics bogus").is_err());

        sh.execute("trace on").unwrap();
        sh.execute("update FlightRes insert ('dee', 'Asia')")
            .unwrap();
        let json = sh.execute("trace json").unwrap();
        assert!(json.contains("engine.data_update"), "{json}");
        sh.execute("trace off").unwrap();
        sh.execute("trace clear").unwrap();
        assert!(sh.execute("trace bogus").is_err());
    }

    #[test]
    fn index_command_declares_warms_and_reports() {
        let mut sh = seeded_shell();
        let out = sh.execute("index Customer Name").unwrap();
        assert!(
            out.contains("declared hash index on Customer.Name"),
            "{out}"
        );
        let out = sh.execute("index Customer Name hash").unwrap();
        assert!(out.contains("already declared"), "{out}");
        let out = sh.execute("index FlightRes Dest sorted").unwrap();
        assert!(
            out.contains("declared sorted index on FlightRes.Dest"),
            "{out}"
        );
        assert!(sh.execute("index Customer Ghost").is_err());
        assert!(sh.execute("index Customer Name btree").is_err());
        let stats = sh.execute("stats").unwrap();
        assert!(stats.contains("1 hash, 1 sorted"), "{stats}");
    }

    #[test]
    fn capability_change_through_shell() {
        let mut sh = seeded_shell();
        for cmd in [
            "site 3 mirror",
            "relation Members @3 (FullName:text, Town:text)",
            "insert Members ('ann', 'Boston')",
            "insert Members ('bob', 'Worcester')",
            "pc Customer (Name, City) = Members (FullName, Town)",
        ] {
            sh.execute(cmd).unwrap();
        }
        let out = sh.execute("change delete-relation Customer").unwrap();
        assert!(out.contains("adopted rewriting"), "{out}");
        let out = sh.execute("query V").unwrap();
        assert!(out.contains("'ann'"), "{out}");
        let out = sh.execute("show constraints").unwrap();
        assert!(!out.contains("Customer"), "constraints evolved: {out}");
    }

    #[test]
    fn rename_and_delete_attribute_commands() {
        let mut sh = seeded_shell();
        let out = sh
            .execute("change rename-attribute FlightRes.Dest Target")
            .unwrap();
        assert!(out.contains("change-attribute-name"), "{out}");
        assert!(sh.execute("query V").unwrap().contains("'ann'"));
        sh.execute("change rename-relation FlightRes Bookings")
            .unwrap();
        assert!(sh.engine().mkb().has_relation("Bookings"));
    }

    #[test]
    fn tuple_parsing_accepts_all_types() {
        let t = Shell::parse_tuple("( 'a, b' , 7, -3, 2.5, true, false )").unwrap();
        assert_eq!(t.arity(), 6);
        assert_eq!(t.get(0), &Value::Text("a, b".into()));
        assert_eq!(t.get(1), &Value::Int(7));
        assert_eq!(t.get(2), &Value::Int(-3));
        assert_eq!(t.get(3), &Value::Float(2.5));
        assert_eq!(t.get(4), &Value::Bool(true));
    }

    #[test]
    fn errors_carry_usage_hints() {
        let mut sh = Shell::new();
        for bad in [
            "frobnicate",
            "site one two",
            "relation Broken",
            "pc A B",
            "update X teleport (1)",
            "change explode R",
            "show everything",
        ] {
            let err = sh.execute(bad).unwrap_err().to_string();
            assert!(
                err.contains("usage:") || err.contains("unknown"),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let mut sh = Shell::new();
        assert_eq!(sh.execute("").unwrap(), "");
        assert_eq!(sh.execute("   # a comment").unwrap(), "");
    }

    #[test]
    fn help_lists_commands() {
        let mut sh = Shell::new();
        let help = sh.execute("help").unwrap();
        for kw in ["site", "relation", "view", "update", "change", "rebalance"] {
            assert!(help.contains(kw));
        }
    }

    #[test]
    fn durable_session_checkpoint_travel_and_recover() {
        let dir =
            std::env::temp_dir().join(format!("eve-shell-durable-{}-session", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_string_lossy().to_string();

        let mut sh = seeded_shell();
        let out = sh.execute(&format!("open {dir_str}")).unwrap();
        assert!(out.contains("created store"), "{out}");
        let g0 = sh.engine().mkb().generation();

        // Durable mutations flow through the log.
        sh.execute("update FlightRes insert ('bob', 'Asia')")
            .unwrap();
        let out = sh.execute("checkpoint").unwrap();
        assert!(out.contains("snapshot written"), "{out}");
        sh.execute("site 3 mirror").unwrap();
        sh.execute("relation Members @3 (FullName:text, Town:text)")
            .unwrap();
        sh.execute("insert Members ('ann', 'Boston')").unwrap();
        sh.execute("insert Members ('bob', 'Worcester')").unwrap();
        sh.execute("pc Customer (Name, City) = Members (FullName, Town)")
            .unwrap();
        sh.execute("change delete-relation Customer").unwrap();
        assert!(sh.engine().mkb().generation() > g0);

        let out = sh.execute("log-stats").unwrap();
        assert!(out.contains("segments:"), "{out}");
        assert!(out.contains("appended:"), "{out}");
        let out = sh.execute("stats").unwrap();
        assert!(out.contains("store:"), "store counters in stats: {out}");

        // Time travel: before the capability change, Customer still exists.
        let out = sh.execute(&format!("travel {g0}")).unwrap();
        assert!(out.contains("Customer"), "{out}");
        let out = sh.execute(&format!("travel {g0} V")).unwrap();
        assert!(out.contains("'ann'"), "{out}");

        // While this session holds the store, a second opener is refused —
        // two live writers would interleave appends.
        let mut sh2 = Shell::new();
        let err = sh2.execute(&format!("open {dir_str}")).unwrap_err();
        assert!(err.to_string().contains("already open"), "{err}");

        // After the first session ends, a second shell recovers the state.
        let expected = sh.engine().snapshot_state().to_bytes();
        drop(sh);
        let out = sh2.execute(&format!("open {dir_str}")).unwrap();
        assert!(out.contains("recovered store"), "{out}");
        assert_eq!(
            sh2.engine().snapshot_state().to_bytes(),
            expected,
            "recovered shell state is byte-identical"
        );
        assert!(sh2.execute("query V").unwrap().contains("'bob'"));

        // Compact bounds the horizon.
        sh2.execute("checkpoint").unwrap();
        let out = sh2.execute("compact").unwrap();
        assert!(out.contains("compacted"), "{out}");
        let err = sh2.execute(&format!("travel {g0}")).unwrap_err();
        assert!(err.to_string().contains("horizon"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_commands_error_cleanly_instead_of_panicking() {
        let mut sh = Shell::new();
        // Store commands without an open store.
        for cmd in ["checkpoint", "log-stats", "travel 3", "compact"] {
            let err = sh.execute(cmd).unwrap_err().to_string();
            assert!(err.contains("no store is open"), "{cmd}: {err}");
        }
        // A bad filename must not panic the shell: /dev/null is not a
        // directory, so store creation fails with a proper error — and the
        // session's in-memory engine must survive the failure.
        sh.execute("site 9 survivor").unwrap();
        let err = sh.execute("open /dev/null/not-a-dir").unwrap_err();
        assert!(err.to_string().contains("store"), "{err}");
        assert!(
            sh.engine().mkb().sites().any(|(id, _)| id.0 == 9),
            "failed open must not destroy the in-memory engine"
        );
        // Missing operand.
        let err = sh.execute("open").unwrap_err().to_string();
        assert!(err.contains("usage"), "{err}");
        // Malformed generation.
        let dir =
            std::env::temp_dir().join(format!("eve-shell-durable-{}-badgen", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        sh.execute(&format!("open {}", dir.display())).unwrap();
        let err = sh.execute("travel eleventy").unwrap_err().to_string();
        assert!(err.contains("usage"), "{err}");
        // Opening twice is rejected, not silently re-bootstrapped.
        let err = sh.execute("open /tmp/somewhere-else").unwrap_err();
        assert!(err.to_string().contains("already open"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shell_open_on_locked_store_reports_busy_with_lock_path() {
        // Pins the satellite bugfix: `open` on a directory whose store
        // lock another live session holds must surface the typed "store
        // busy" error naming the lock file — not a raw flock failure, and
        // never a panic.
        let dir =
            std::env::temp_dir().join(format!("eve-shell-durable-{}-locked", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_str = dir.to_string_lossy().to_string();

        let mut holder = Shell::new();
        holder.execute(&format!("open {dir_str}")).unwrap();

        let mut sh = Shell::new();
        sh.execute("site 4 survivor").unwrap();
        let err = sh.execute(&format!("open {dir_str}")).unwrap_err();
        assert!(
            matches!(err, Error::Busy { .. }),
            "expected Error::Busy, got {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("store busy"), "{msg}");
        assert!(msg.contains("store.lock"), "lock path named: {msg}");
        assert!(msg.contains("already open"), "{msg}");
        // The refused open leaves the in-memory session intact.
        assert!(sh.engine().mkb().sites().any(|(id, _)| id.0 == 4));
        // Once the holder closes, the same open succeeds.
        drop(holder);
        let out = sh.execute(&format!("open {dir_str}")).unwrap();
        assert!(out.contains("recovered store"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_durable_host_fails_closed() {
        // Pins the satellite bugfix: when a failed mutation's re-anchoring
        // snapshot ALSO fails, the store is behind the live engine. The
        // shell must refuse further mutations (fail closed, engine
        // untouched) instead of operating on a half-applied engine — and a
        // successful explicit checkpoint must heal the host.
        let dir =
            std::env::temp_dir().join(format!("eve-shell-durable-{}-poison", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut sh = seeded_shell();
        sh.execute(&format!("open {}", dir.display())).unwrap();

        // Yank the store directory out from under the session, then apply
        // an op the engine rejects: the failed batch triggers the
        // re-anchoring snapshot, which cannot be written any more.
        std::fs::remove_dir_all(&dir).unwrap();
        let err = sh.execute("update Ghost insert ('x')").unwrap_err();
        assert!(
            matches!(err, Error::Poisoned { .. }),
            "expected Error::Poisoned, got {err:?}"
        );
        assert!(sh.durable().unwrap().is_poisoned());

        // Every mutating command now fails closed *before* the engine.
        let err = sh.execute("site 9 late").unwrap_err();
        assert!(matches!(err, Error::Poisoned { .. }), "{err:?}");
        assert!(
            err.to_string().contains("checkpoint"),
            "remedy named: {err}"
        );
        assert!(
            !sh.engine().mkb().sites().any(|(id, _)| id.0 == 9),
            "fail closed means the engine was never touched"
        );
        for cmd in [
            "relation Late @1 (X:int)",
            "insert Customer ('eve', 'Salem')",
            "update FlightRes insert ('eve', 'Asia')",
            "change delete-relation FlightRes",
            "rebalance",
            "compact",
        ] {
            let err = sh.execute(cmd).unwrap_err();
            assert!(matches!(err, Error::Poisoned { .. }), "{cmd}: {err:?}");
        }
        // Reads stay available on the live engine.
        assert!(sh.execute("query V").unwrap().contains("'ann'"));

        // `checkpoint` is the remedy and stays allowed: restore the
        // directory, re-anchor, and the host is live again.
        std::fs::create_dir_all(&dir).unwrap();
        sh.execute("checkpoint").unwrap();
        assert!(!sh.durable().unwrap().is_poisoned());
        sh.execute("site 9 late").unwrap();
        assert!(sh.engine().mkb().sites().any(|(id, _)| id.0 == 9));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn relation_options_parse() {
        let mut sh = Shell::new();
        sh.execute("site 1 s").unwrap();
        sh.execute("relation R @1 (K:int:50, P:float) sel=0.25 bfr=20")
            .unwrap();
        let info = sh.engine().mkb().relation("R").unwrap();
        assert_eq!(info.attributes[0].byte_size, 50);
        assert_eq!(info.attributes[1].ty, DataType::Float);
        assert!((info.selectivity - 0.25).abs() < 1e-12);
        assert_eq!(info.blocking_factor, 20);
    }
}
