//! Simulated information sources with block-I/O accounting.

use std::collections::BTreeMap;

use eve_misd::SiteId;
use eve_relational::{Relation, Tuple};

use crate::error::{Error, Result};

/// A simulated information source: hosts base relation extents and executes
/// local joins against incoming delta relations, counting block I/Os.
///
/// The I/O accounting mirrors Appendix A's model: each probing delta tuple
/// reads `max(1, ⌈matches / bfr⌉)` blocks of the local relation, and the
/// local optimizer falls back to a full scan (`⌈|R| / bfr⌉` blocks) when
/// probing would be dearer (Eq. 32).
#[derive(Debug, Clone)]
pub struct SimSite {
    /// Site identifier.
    pub id: SiteId,
    /// Human-readable name.
    pub name: String,
    relations: BTreeMap<String, Relation>,
    blocking_factors: BTreeMap<String, u64>,
    io_count: u64,
    message_count: u64,
}

impl SimSite {
    /// Creates an empty site.
    #[must_use]
    pub fn new(id: SiteId, name: impl Into<String>) -> SimSite {
        SimSite {
            id,
            name: name.into(),
            relations: BTreeMap::new(),
            blocking_factors: BTreeMap::new(),
            io_count: 0,
            message_count: 0,
        }
    }

    /// Hosts a relation extent with the given blocking factor.
    ///
    /// # Errors
    ///
    /// [`Error::State`] when the relation name is taken.
    pub fn host(&mut self, relation: Relation, blocking_factor: u64) -> Result<()> {
        let name = relation.name().to_owned();
        if self.relations.contains_key(&name) {
            return Err(Error::State {
                detail: format!("site {} already hosts `{name}`", self.id),
            });
        }
        self.blocking_factors.insert(name.clone(), blocking_factor);
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Drops a hosted relation (capability change `delete-relation`).
    ///
    /// # Errors
    ///
    /// [`Error::State`] when the relation is not hosted here.
    pub fn drop_relation(&mut self, name: &str) -> Result<Relation> {
        self.blocking_factors.remove(name);
        self.relations.remove(name).ok_or_else(|| Error::State {
            detail: format!("site {} does not host `{name}`", self.id),
        })
    }

    /// Immutable access to a hosted relation.
    ///
    /// # Errors
    ///
    /// [`Error::State`] when the relation is not hosted here.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations.get(name).ok_or_else(|| Error::State {
            detail: format!("site {} does not host `{name}`", self.id),
        })
    }

    /// Mutable access to a hosted relation (data updates).
    ///
    /// # Errors
    ///
    /// [`Error::State`] when the relation is not hosted here.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations.get_mut(name).ok_or_else(|| Error::State {
            detail: format!("site {} does not host `{name}`", self.id),
        })
    }

    /// Names of hosted relations (sorted).
    #[must_use]
    pub fn hosted(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Hosted relation extents, in name order (the columnar/index stats
    /// aggregation seam of the engine).
    pub fn hosted_relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Hosted relations with their blocking factors, in name order (the
    /// snapshot export seam of the durability layer).
    pub fn hosted_with_blocking_factors(&self) -> impl Iterator<Item = (&Relation, u64)> {
        self.relations.values().map(|r| {
            (
                r,
                self.blocking_factors.get(r.name()).copied().unwrap_or(10),
            )
        })
    }

    /// Rebuilds a site from snapshot parts: hosted extents with blocking
    /// factors plus the resource-accounting counters as of the snapshot.
    ///
    /// # Errors
    ///
    /// [`Error::State`] on duplicate relation names.
    pub(crate) fn from_parts(
        id: SiteId,
        name: String,
        relations: Vec<(Relation, u64)>,
        io_count: u64,
        message_count: u64,
    ) -> Result<SimSite> {
        let mut site = SimSite::new(id, name);
        for (rel, bfr) in relations {
            site.host(rel, bfr)?;
        }
        site.io_count = io_count;
        site.message_count = message_count;
        Ok(site)
    }

    /// Whether this site hosts `name`.
    #[must_use]
    pub fn hosts(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Total block I/Os performed so far.
    #[must_use]
    pub fn io_count(&self) -> u64 {
        self.io_count
    }

    /// Total messages this site has sent or received so far (update
    /// notifications plus maintenance query/answer pairs).
    #[must_use]
    pub fn message_count(&self) -> u64 {
        self.message_count
    }

    /// Charges `n` messages against this site's accounting.
    pub fn charge_messages(&mut self, n: u64) {
        self.message_count += n;
    }

    /// Resets the resource accounting — I/O *and* message counters — so
    /// cost reports taken after the reset are comparable regardless of how
    /// the preceding work was scheduled (between experiments).
    pub fn reset_io(&mut self) {
        self.io_count = 0;
        self.message_count = 0;
    }

    /// Charges the I/O cost of probing `relation` with `probe_count` delta
    /// tuples that matched `match_counts` tuples respectively, capped by the
    /// full-scan cost. Returns the number of I/Os charged.
    ///
    /// # Errors
    ///
    /// [`Error::State`] for unhosted relations.
    pub fn charge_probe_io(&mut self, relation: &str, match_counts: &[usize]) -> Result<u64> {
        let rel = self.relation(relation)?;
        let bfr = self
            .blocking_factors
            .get(relation)
            .copied()
            .unwrap_or(10)
            .max(1);
        let full_scan = (rel.cardinality() as u64).div_ceil(bfr);
        let probe: u64 = match_counts
            .iter()
            .map(|&m| (m as u64).div_ceil(bfr).max(1))
            .sum();
        let charged = probe.min(full_scan.max(1));
        self.io_count += charged;
        Ok(charged)
    }

    /// Executes a local full scan, charging its I/O. The returned relation
    /// shares the hosted extent's tuple storage (copy-on-write), so a scan
    /// charges blocks but copies no tuples.
    ///
    /// # Errors
    ///
    /// [`Error::State`] for unhosted relations.
    pub fn scan(&mut self, relation: &str) -> Result<Relation> {
        let bfr = self
            .blocking_factors
            .get(relation)
            .copied()
            .unwrap_or(10)
            .max(1);
        let rel = self.relation(relation)?.clone();
        self.io_count += (rel.cardinality() as u64).div_ceil(bfr);
        Ok(rel)
    }

    /// Applies a data update to a hosted relation: inserts then deletes.
    ///
    /// # Errors
    ///
    /// [`Error::State`] / validation failures.
    pub fn apply_update(
        &mut self,
        relation: &str,
        inserts: &[Tuple],
        deletes: &[Tuple],
    ) -> Result<()> {
        let rel = self.relation_mut(relation)?;
        for t in inserts {
            rel.insert(t.clone())?;
        }
        rel.delete(deletes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::{tup, DataType, Schema};

    fn site_with_r() -> SimSite {
        let mut s = SimSite::new(SiteId(1), "one");
        let r = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            (0..25).map(|i| tup![i]).collect(),
        )
        .unwrap();
        s.host(r, 10).unwrap();
        s
    }

    #[test]
    fn hosting_and_lookup() {
        let s = site_with_r();
        assert!(s.hosts("R"));
        assert_eq!(s.hosted(), vec!["R"]);
        assert_eq!(s.relation("R").unwrap().cardinality(), 25);
        assert!(s.relation("Z").is_err());
    }

    #[test]
    fn duplicate_hosting_rejected() {
        let mut s = site_with_r();
        let dup = Relation::empty("R", Schema::of(&[("A", DataType::Int)]).unwrap());
        assert!(s.host(dup, 10).is_err());
    }

    #[test]
    fn scan_charges_full_blocks() {
        let mut s = site_with_r();
        s.scan("R").unwrap();
        assert_eq!(s.io_count(), 3); // ⌈25/10⌉
        s.reset_io();
        assert_eq!(s.io_count(), 0);
    }

    #[test]
    fn scan_shares_extent_storage() {
        let mut s = site_with_r();
        let scanned = s.scan("R").unwrap();
        assert!(
            scanned.shares_tuples_with(s.relation("R").unwrap()),
            "scan must not deep-copy the extent"
        );
    }

    #[test]
    fn reset_clears_io_and_messages_together() {
        let mut s = site_with_r();
        s.scan("R").unwrap();
        s.charge_messages(2);
        assert_eq!(s.message_count(), 2);
        assert!(s.io_count() > 0);
        s.reset_io();
        assert_eq!(s.io_count(), 0);
        assert_eq!(s.message_count(), 0, "messages reset with I/O");
    }

    #[test]
    fn probe_io_caps_at_full_scan() {
        let mut s = site_with_r();
        // Three probes with small match counts: 1 block each.
        let charged = s.charge_probe_io("R", &[2, 1, 0]).unwrap();
        assert_eq!(charged, 3);
        // A flood of probes caps at the full-scan cost.
        let many: Vec<usize> = vec![1; 100];
        let charged = s.charge_probe_io("R", &many).unwrap();
        assert_eq!(charged, 3);
    }

    #[test]
    fn update_application() {
        let mut s = site_with_r();
        s.apply_update("R", &[tup![100]], &[tup![0]]).unwrap();
        let r = s.relation("R").unwrap();
        assert!(r.contains(&tup![100]));
        assert!(!r.contains(&tup![0]));
        assert_eq!(r.cardinality(), 25);
    }

    #[test]
    fn drop_relation_returns_extent() {
        let mut s = site_with_r();
        let r = s.drop_relation("R").unwrap();
        assert_eq!(r.cardinality(), 25);
        assert!(!s.hosts("R"));
        assert!(s.drop_relation("R").is_err());
    }
}
