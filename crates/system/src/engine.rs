//! The end-to-end EVE engine (paper Fig. 1).
//!
//! Wires all components together: information sources register relations
//! (data at [`SimSite`]s, metadata in the [`Mkb`]); users define E-SQL views
//! whose extents are materialized in the warehouse; data updates flow
//! through the view maintainer; capability changes flow through view
//! synchronization, QC-Model ranking and rewriting adoption.

use std::collections::BTreeMap;

use eve_esql::ViewDef;
use eve_misd::{Mkb, RelationInfo, SchemaChange, SiteId};
use eve_qc::cost::{cost_factors, CostFactors};
use eve_qc::{
    plans_for_view, rank_rewritings, workload, QcParams, ScoredRewriting, SelectionStrategy,
    WorkloadModel,
};
use eve_relational::{ExecOptions, ExecStats, IndexKind, IndexStats, InternStats, Relation, Value};
use eve_sync::{
    synchronize, EvolutionOp, HeuristicOptions, RewriteCache, SyncOptions, SyncOutcome,
};

use crate::error::{Error, Result};
use crate::maintainer::{maintain_view, DataUpdate, MaintenanceTrace};
use crate::site::SimSite;

/// A materialized view: definition + warehouse extent.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// Current (possibly evolved) definition.
    pub def: ViewDef,
    /// Materialized extent (bag semantics).
    pub extent: Relation,
}

/// Outcome of one [`EveEngine::apply_batch`] call.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Merged per-view maintenance traces of all data ops (only views the
    /// batch actually maintained appear).
    pub traces: BTreeMap<String, MaintenanceTrace>,
    /// Evolution reports of all capability ops, in op order (one entry per
    /// view per capability op, exactly as the per-change notification
    /// emits them).
    pub reports: Vec<EvolutionReport>,
    /// Number of data ops processed.
    pub data_ops: usize,
    /// Number of capability ops processed.
    pub capability_ops: usize,
    /// Number of data stages (runs between capability barriers).
    pub data_stages: usize,
    /// Widest data stage: how many partitions were eligible to run
    /// concurrently.
    pub max_width: usize,
    /// Rewriting-cache hits during this batch.
    pub rewrite_hits: u64,
    /// Rewriting-cache misses during this batch.
    pub rewrite_misses: u64,
}

/// Outcome of a capability change for one view.
#[derive(Debug, Clone)]
pub struct EvolutionReport {
    /// The view's name.
    pub view_name: String,
    /// Whether the change affected the view at all.
    pub affected: bool,
    /// Whether the view survived (unaffected, or a rewriting was adopted).
    pub survived: bool,
    /// Number of legal rewritings the synchronizer generated.
    pub candidates: usize,
    /// The adopted rewriting with its QC assessment, if any.
    pub adopted: Option<ScoredRewriting>,
}

/// How the engine explores the rewriting search space when a capability
/// change arrives (the streaming enumerator's policy, re-exposed without
/// lifetimes so it can sit in engine state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Materialize every legal rewriting, then rank (the paper's pipeline;
    /// memoized through the [`RewriteCache`]).
    #[default]
    Exhaustive,
    /// Branch-and-bound best-first search under the QC bounds
    /// (`eve_qc::search::QcGuide` with an auto normalization scale): the
    /// engine's candidate set arrives in ascending QC badness and is capped
    /// at `sync_options.max_rewritings`.
    BestFirst,
    /// The §7.6 heuristic beam of the given width.
    Beam {
        /// Beam width (candidates generated per binding level).
        width: usize,
    },
}

/// One declared secondary index: relation, column and physical shape.
/// Declarations are durable engine state (they survive snapshots and log
/// replay); the index *contents* are reconstructible and are re-warmed
/// lazily.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexHint {
    /// The indexed relation's name.
    pub relation: String,
    /// The indexed column's (bare) attribute name.
    pub column: String,
    /// Physical index shape.
    pub kind: IndexKind,
}

/// Aggregated columnar/index/interning counters across every relation
/// extent the engine holds (site-hosted base relations plus materialized
/// view extents) — the shell `stats` and server stats surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnLayerStats {
    /// Relation extents scanned (site-hosted + view extents).
    pub extents: usize,
    /// Extents whose columnar image has been materialized.
    pub columnar_built: usize,
    /// Merged secondary-index counters of every extent.
    pub index: IndexStats,
    /// Global string-interning pool counters.
    pub intern: InternStats,
    /// Process-wide morsel scheduler counters (morsels dispatched, deque
    /// steals, join partitions built, parallel vs declined operators).
    pub exec: ExecStats,
}

/// The EVE engine.
#[derive(Debug, Clone)]
pub struct EveEngine {
    pub(crate) mkb: Mkb,
    pub(crate) sites: BTreeMap<u32, SimSite>,
    pub(crate) views: BTreeMap<String, MaterializedView>,
    /// Declared secondary indexes, in declaration order.
    pub(crate) index_hints: Vec<IndexHint>,
    /// Memoized rewriting enumeration, keyed on the MKB generation (shared
    /// by the batched pipeline and the single-change notification path).
    pub(crate) rewrite_cache: RewriteCache,
    /// Synchronizer options.
    pub sync_options: SyncOptions,
    /// QC-Model parameters.
    pub qc_params: QcParams,
    /// Workload model for cost aggregation.
    pub workload: WorkloadModel,
    /// How the engine picks among legal rewritings.
    pub strategy: SelectionStrategy,
    /// How the engine explores the rewriting search space.
    pub search: SearchMode,
    /// Intra-query execution knobs: morsel parallelism for view
    /// evaluation and maintainer recomputes. Runtime tuning only — not
    /// part of durable snapshots, so recovery starts serial.
    pub exec_options: ExecOptions,
}

impl Default for EveEngine {
    fn default() -> Self {
        EveEngine::new()
    }
}

impl EveEngine {
    /// An engine with paper-default parameters and QC-best selection.
    #[must_use]
    pub fn new() -> EveEngine {
        EveEngine {
            mkb: Mkb::new(),
            sites: BTreeMap::new(),
            views: BTreeMap::new(),
            index_hints: Vec::new(),
            rewrite_cache: RewriteCache::new(),
            sync_options: SyncOptions::default(),
            qc_params: QcParams::default(),
            workload: WorkloadModel::SingleUpdate,
            strategy: SelectionStrategy::QcBest,
            search: SearchMode::default(),
            exec_options: ExecOptions::default(),
        }
    }

    /// The meta knowledge base.
    #[must_use]
    pub fn mkb(&self) -> &Mkb {
        &self.mkb
    }

    /// Mutable MKB access (to add constraints and selectivities).
    pub fn mkb_mut(&mut self) -> &mut Mkb {
        &mut self.mkb
    }

    /// Registers an information source.
    ///
    /// # Errors
    ///
    /// Duplicate site ids.
    pub fn add_site(&mut self, id: SiteId, name: impl Into<String>) -> Result<()> {
        let name = name.into();
        self.mkb.register_site(id, name.clone())?;
        self.sites.insert(id.0, SimSite::new(id, name));
        Ok(())
    }

    /// Registers a relation: metadata into the MKB, extent at its site.
    /// The extent's schema must match the declared attributes.
    ///
    /// # Errors
    ///
    /// Unknown site, duplicate names, schema mismatches.
    pub fn register_relation(&mut self, info: RelationInfo, extent: Relation) -> Result<()> {
        if extent.schema().arity() != info.attributes.len() {
            return Err(Error::State {
                detail: format!(
                    "extent of `{}` has {} columns, declaration has {}",
                    info.name,
                    extent.schema().arity(),
                    info.attributes.len()
                ),
            });
        }
        for (col, attr) in extent.schema().columns().iter().zip(&info.attributes) {
            if col.ty != attr.ty {
                return Err(Error::State {
                    detail: format!(
                        "extent column `{}` of `{}` is {}, declared {}",
                        col.column, info.name, col.ty, attr.ty
                    ),
                });
            }
        }
        let site_id = info.site;
        let bfr = info.blocking_factor;
        let mut named = extent;
        named.set_name(info.name.clone());
        self.mkb.register_relation(info)?;
        let site = self.sites.get_mut(&site_id.0).ok_or_else(|| Error::State {
            detail: format!("site {site_id} not registered with the engine"),
        })?;
        site.host(named, bfr)?;
        Ok(())
    }

    /// Gathers the base extents a view needs.
    fn extents_for(&self, view: &ViewDef) -> Result<BTreeMap<String, Relation>> {
        let mut resolved: BTreeMap<String, Relation> = BTreeMap::new();
        for item in &view.from {
            if resolved.contains_key(&item.relation) {
                continue;
            }
            let info = self.mkb.relation(&item.relation)?;
            let site = self.sites.get(&info.site.0).ok_or_else(|| Error::State {
                detail: format!("unknown site {}", info.site),
            })?;
            resolved.insert(
                item.relation.clone(),
                site.relation(&item.relation)?.clone(),
            );
        }
        Ok(resolved)
    }

    /// Evaluates a view definition against the current information space
    /// (no materialization, no accounting). Execution goes through the
    /// physical planner, steered by the MKB's declared §6.1 statistics
    /// (cardinality, selectivity, blocking factor); relations the MKB does
    /// not know fall back to measured statistics.
    ///
    /// # Errors
    ///
    /// Validation/state/relational failures.
    pub fn evaluate(&self, view: &ViewDef) -> Result<Relation> {
        let extents = self.extents_for(view)?;
        crate::query::evaluate_view_with_options(
            view,
            &extents,
            &self.declared_stats(view),
            &self.exec_options,
        )
    }

    /// Declared [`eve_relational::RelationStats`] for every FROM relation
    /// of `view` the MKB knows about.
    fn declared_stats(&self, view: &ViewDef) -> BTreeMap<String, eve_relational::RelationStats> {
        let mut stats = BTreeMap::new();
        for item in &view.from {
            if let Ok(info) = self.mkb.relation(&item.relation) {
                stats.insert(
                    item.relation.clone(),
                    eve_relational::RelationStats {
                        cardinality: info.cardinality,
                        tuple_bytes: info.tuple_bytes(),
                        selectivity: info.selectivity,
                        blocking_factor: info.blocking_factor,
                    },
                );
            }
        }
        stats
    }

    /// Validates a view against the MKB: relations registered, attributes
    /// exist, clause types check out.
    ///
    /// # Errors
    ///
    /// [`Error::Validation`] with the first problem found.
    pub fn check_view(&self, view: &ViewDef) -> Result<ViewDef> {
        let view = eve_esql::validate::validate(view).map_err(|e| Error::Validation(e.message))?;
        for item in &view.from {
            let info = self.mkb.relation(&item.relation)?;
            for sel in view.select_items_of(item.binding_name()) {
                if !info.has_attribute(&sel.attr.name) {
                    return Err(Error::Validation(format!(
                        "`{}` has no attribute `{}`",
                        item.relation, sel.attr.name
                    )));
                }
            }
        }
        for cond in &view.conditions {
            for col in cond.clause.columns() {
                let Some(binding) = col.qualifier.as_deref() else {
                    continue;
                };
                let Some(item) = view.from_item(binding) else {
                    continue;
                };
                let info = self.mkb.relation(&item.relation)?;
                if !info.has_attribute(&col.name) {
                    return Err(Error::Validation(format!(
                        "`{}` has no attribute `{}`",
                        item.relation, col.name
                    )));
                }
            }
        }
        Ok(view)
    }

    /// Defines a view from E-SQL source text, materializing its extent.
    ///
    /// # Errors
    ///
    /// Parse/validation/evaluation failures, or a duplicate view name.
    pub fn define_view_sql(&mut self, sql: &str) -> Result<&MaterializedView> {
        let view = eve_esql::parse_view(sql)?;
        self.define_view(view)
    }

    /// Defines a view, materializing its extent in the warehouse.
    ///
    /// # Errors
    ///
    /// Validation/evaluation failures, or a duplicate view name.
    pub fn define_view(&mut self, view: ViewDef) -> Result<&MaterializedView> {
        let view = self.check_view(&view)?;
        if self.views.contains_key(&view.name) {
            return Err(Error::State {
                detail: format!("view `{}` already defined", view.name),
            });
        }
        let extent = self.evaluate(&view)?;
        let name = view.name.clone();
        self.views
            .insert(name.clone(), MaterializedView { def: view, extent });
        Ok(&self.views[&name])
    }

    /// Looks up a materialized view.
    ///
    /// # Errors
    ///
    /// [`Error::State`] when undefined.
    pub fn view(&self, name: &str) -> Result<&MaterializedView> {
        self.views.get(name).ok_or_else(|| Error::State {
            detail: format!("no view named `{name}`"),
        })
    }

    /// All materialized views, ordered by name.
    pub fn views(&self) -> impl Iterator<Item = &MaterializedView> {
        self.views.values()
    }

    /// Applies a data update at its source and incrementally maintains every
    /// affected view, returning per-view traces.
    ///
    /// # Errors
    ///
    /// State/validation failures. The base update is applied first; views
    /// are then maintained in name order.
    pub fn notify_data_update(
        &mut self,
        update: &DataUpdate,
    ) -> Result<Vec<(String, MaintenanceTrace)>> {
        let _span = eve_trace::span("engine.data_update");
        eve_trace::global().counter("engine.data_updates").inc();
        let info = self.mkb.relation(&update.relation)?;
        let site_id = info.site.0;
        // The maintenance walk joins deltas against the *post-update* base
        // state for inserts processed after application; apply first, as the
        // paper assumes update notifications follow the source change.
        self.sites
            .get_mut(&site_id)
            .ok_or_else(|| Error::State {
                detail: format!("unknown site {site_id}"),
            })?
            .apply_update(&update.relation, &update.inserts, &update.deletes)?;

        let mut traces = Vec::new();
        let names: Vec<String> = self.views.keys().cloned().collect();
        for name in names {
            let mut mv = self.views.remove(&name).expect("exists");
            let trace = maintain_view(&mv.def, &mut mv.extent, update, &mut self.sites, &self.mkb)?;
            self.views.insert(name.clone(), mv);
            traces.push((name, trace));
        }
        Ok(traces)
    }

    /// Applies a batch of data updates through the batched pipeline
    /// ([`EveEngine::apply_batch`]), merging the per-view traces (the
    /// paper's "cost for multiple updates can then be computed by summing
    /// over all individual costs", §6.1).
    ///
    /// # Errors
    ///
    /// State/validation failures; the batch validates its relations before
    /// applying anything.
    pub fn notify_data_updates(
        &mut self,
        updates: &[DataUpdate],
    ) -> Result<BTreeMap<String, MaintenanceTrace>> {
        let ops: Vec<EvolutionOp> = updates.iter().cloned().map(EvolutionOp::from).collect();
        Ok(self.apply_batch(ops)?.traces)
    }

    /// Processes a capability change end-to-end (the paper's Fig. 1 loop):
    ///
    /// 1. every affected view is synchronized against the *pre-change* MKB
    ///    (through the engine's memoized [`RewriteCache`]),
    /// 2. legal rewritings are ranked by the QC-Model and one is selected
    ///    per the engine's [`SelectionStrategy`],
    /// 3. the change is applied to the MKB and the hosting site
    ///    (`new_extent` supplies the data for `add-relation`; added
    ///    attributes backfill with type defaults),
    /// 4. adopted rewritings are re-materialized; views with no legal
    ///    rewriting are dropped from the warehouse.
    ///
    /// This routes through [`EveEngine::apply_batch`] as a single-op batch;
    /// [`EveEngine::notify_capability_change_sequential`] keeps the
    /// uncached all-views reference implementation that the differential
    /// test harness compares against.
    ///
    /// # Errors
    ///
    /// Synchronization, ranking, MKB or state failures.
    pub fn notify_capability_change(
        &mut self,
        change: &SchemaChange,
        new_extent: Option<Relation>,
    ) -> Result<Vec<EvolutionReport>> {
        let outcome = self.apply_batch(vec![EvolutionOp::Capability {
            change: change.clone(),
            new_extent,
        }])?;
        Ok(outcome.reports)
    }

    /// The legacy capability-change path: synchronizes **every** view with
    /// the uncached synchronizer and always builds the ranking MKB. Kept as
    /// the reference implementation the differential property suite holds
    /// the batched pipeline against.
    ///
    /// # Errors
    ///
    /// Synchronization, ranking, MKB or state failures.
    pub fn notify_capability_change_sequential(
        &mut self,
        change: &SchemaChange,
        new_extent: Option<Relation>,
    ) -> Result<Vec<EvolutionReport>> {
        let rank_mkb = self.build_rank_mkb(change)?;
        let mut decisions: Vec<(String, EvolutionReport, Option<ViewDef>)> = Vec::new();
        for (name, mv) in &self.views {
            let outcome = synchronize(&mv.def, change, &self.mkb, &self.sync_options)?;
            decisions.push(self.decide(name, &mv.def, &outcome, &rank_mkb)?);
        }
        self.commit_capability_change(change, new_extent, decisions)
    }

    /// The batched capability-change primitive: skips views that cannot
    /// reference the changed relation, synchronizes the rest through the
    /// engine's [`SearchMode`] (the default [`SearchMode::Exhaustive`] goes
    /// through the [`RewriteCache`]; `BestFirst`/`Beam` run the streaming
    /// enumerator), and builds the ranking MKB only when some view is
    /// actually affected. Under the exhaustive mode verdicts are identical
    /// to the sequential path — the prefilter is a sound superset of the
    /// synchronizer's own affectedness notion; the pruned modes trade the
    /// candidate tail for search-time bounds.
    pub(crate) fn capability_change_batched(
        &mut self,
        change: &SchemaChange,
        new_extent: Option<Relation>,
    ) -> Result<Vec<EvolutionReport>> {
        let touched = eve_sync::batch::touched_relation(change);
        let mut rank_mkb: Option<Mkb> = None;
        let mut decisions: Vec<(String, EvolutionReport, Option<ViewDef>)> = Vec::new();
        for (name, mv) in &self.views {
            let candidate =
                touched.is_some_and(|rel| mv.def.from.iter().any(|f| f.relation == rel));
            if !candidate {
                decisions.push((name.clone(), Self::unaffected_report(name), None));
                continue;
            }
            let outcome = match self.search {
                SearchMode::Exhaustive => self.rewrite_cache.synchronize(
                    &mv.def,
                    change,
                    &self.mkb,
                    &self.sync_options,
                )?,
                SearchMode::BestFirst => {
                    let guide =
                        eve_qc::QcGuide::auto(&mv.def, &self.mkb, &self.qc_params, self.workload)?;
                    // Route through the RewriteCache's shared PartnerCache
                    // so pruned searches over many views reuse one partner
                    // closure per relation (outcomes are not memoized).
                    self.rewrite_cache
                        .synchronize_with_policy(
                            &mv.def,
                            change,
                            &self.mkb,
                            &self.sync_options,
                            &eve_sync::ExplorationPolicy::BestFirst { guide: &guide },
                        )?
                        .0
                }
                SearchMode::Beam { width } => {
                    // Drive the beam through the engine's own sync_options
                    // (max_rewritings, dispensable-drop spectrum) — unlike
                    // `synchronize_heuristic`, which owns its options.
                    let guide = eve_sync::HeuristicGuide::new(&HeuristicOptions {
                        max_candidates: width.max(1),
                        ..HeuristicOptions::default()
                    })?;
                    self.rewrite_cache
                        .synchronize_with_policy(
                            &mv.def,
                            change,
                            &self.mkb,
                            &self.sync_options,
                            &eve_sync::ExplorationPolicy::Beam {
                                width: width.max(1),
                                guide: &guide,
                            },
                        )?
                        .0
                }
            };
            if !outcome.affected {
                decisions.push((name.clone(), Self::unaffected_report(name), None));
                continue;
            }
            if rank_mkb.is_none() {
                rank_mkb = Some(self.build_rank_mkb(change)?);
            }
            let rmkb = rank_mkb.as_ref().expect("just built");
            decisions.push(self.decide(name, &mv.def, &outcome, rmkb)?);
        }
        self.commit_capability_change(change, new_extent, decisions)
    }

    /// Builds the MKB used for ranking: statistics for everything a
    /// rewriting may reference. The pre-change MKB covers deleted
    /// components; renames additionally need the *new* name registered with
    /// the old statistics.
    fn build_rank_mkb(&self, change: &SchemaChange) -> Result<Mkb> {
        let mut rank_mkb = self.mkb.clone();
        match change {
            SchemaChange::RenameRelation { from, to } => {
                let mut info = rank_mkb.relation(from)?.clone();
                info.name = to.clone();
                rank_mkb.register_relation(info)?;
            }
            SchemaChange::RenameAttribute { relation, from, to } => {
                let attr = rank_mkb
                    .relation(relation)?
                    .attribute(from)
                    .cloned()
                    .ok_or_else(|| Error::State {
                        detail: format!("`{relation}` has no attribute `{from}`"),
                    })?;
                rank_mkb.apply_change(&SchemaChange::AddAttribute {
                    relation: relation.clone(),
                    attribute: eve_misd::AttributeInfo {
                        name: to.clone(),
                        ty: attr.ty,
                        byte_size: attr.byte_size,
                    },
                })?;
            }
            _ => {}
        }
        Ok(rank_mkb)
    }

    fn unaffected_report(name: &str) -> EvolutionReport {
        EvolutionReport {
            view_name: name.to_owned(),
            affected: false,
            survived: true,
            candidates: 0,
            adopted: None,
        }
    }

    /// Ranks an affected view's rewritings and selects one, yielding the
    /// report and the adopted definition (or `None` when the view dies).
    fn decide(
        &self,
        name: &str,
        def: &ViewDef,
        outcome: &SyncOutcome,
        rank_mkb: &Mkb,
    ) -> Result<(String, EvolutionReport, Option<ViewDef>)> {
        if !outcome.affected {
            return Ok((name.to_owned(), Self::unaffected_report(name), None));
        }
        let scored = rank_rewritings(
            def,
            &outcome.rewritings,
            rank_mkb,
            &self.qc_params,
            self.workload,
        )?;
        let chosen = self.strategy.select(&scored).cloned();
        let new_def = chosen.as_ref().map(|c| c.rewriting.view.clone());
        Ok((
            name.to_owned(),
            EvolutionReport {
                view_name: name.to_owned(),
                affected: true,
                survived: chosen.is_some(),
                candidates: scored.len(),
                adopted: chosen,
            },
            new_def,
        ))
    }

    /// Phases 2–3 of the Fig. 1 loop: evolve the MKB and the information
    /// space, then adopt or drop each view per the phase-1 decisions.
    fn commit_capability_change(
        &mut self,
        change: &SchemaChange,
        new_extent: Option<Relation>,
        decisions: Vec<(String, EvolutionReport, Option<ViewDef>)>,
    ) -> Result<Vec<EvolutionReport>> {
        self.apply_change_to_space(change, new_extent)?;
        self.mkb.apply_change(change)?;

        let mut reports = Vec::new();
        for (name, report, new_def) in decisions {
            if !report.affected {
                reports.push(report);
                continue;
            }
            match new_def {
                Some(def) => {
                    let extent = self.evaluate(&def)?;
                    let mut def = def;
                    def.name = name.clone();
                    self.views
                        .insert(name.clone(), MaterializedView { def, extent });
                }
                None => {
                    self.views.remove(&name);
                }
            }
            reports.push(report);
        }
        Ok(reports)
    }

    fn apply_change_to_space(
        &mut self,
        change: &SchemaChange,
        new_extent: Option<Relation>,
    ) -> Result<()> {
        match change {
            SchemaChange::DeleteRelation { relation } => {
                let site = self.mkb.relation(relation)?.site;
                self.sites
                    .get_mut(&site.0)
                    .ok_or_else(|| Error::State {
                        detail: format!("unknown site {site}"),
                    })?
                    .drop_relation(relation)?;
            }
            SchemaChange::AddRelation { relation } => {
                let extent = new_extent.ok_or_else(|| Error::State {
                    detail: format!("add-relation {} requires an extent", relation.name),
                })?;
                let site = self
                    .sites
                    .get_mut(&relation.site.0)
                    .ok_or_else(|| Error::State {
                        detail: format!("unknown site {}", relation.site),
                    })?;
                let mut named = extent;
                named.set_name(relation.name.clone());
                site.host(named, relation.blocking_factor)?;
            }
            SchemaChange::DeleteAttribute {
                relation,
                attribute,
            } => {
                let info = self.mkb.relation(relation)?;
                let site_id = info.site.0;
                let keep: Vec<eve_relational::ColumnRef> = info
                    .attributes
                    .iter()
                    .filter(|a| &a.name != attribute)
                    .map(|a| eve_relational::ColumnRef::bare(a.name.clone()))
                    .collect();
                let site = self.sites.get_mut(&site_id).ok_or_else(|| Error::State {
                    detail: format!("unknown site {site_id}"),
                })?;
                let old = site.drop_relation(relation)?;
                let mut projected = eve_relational::algebra::project(&old, &keep, false)?;
                projected.set_name(relation.clone());
                site.host(projected, info.blocking_factor)?;
            }
            SchemaChange::AddAttribute {
                relation,
                attribute,
            } => {
                let info = self.mkb.relation(relation)?;
                let site_id = info.site.0;
                let site = self.sites.get_mut(&site_id).ok_or_else(|| Error::State {
                    detail: format!("unknown site {site_id}"),
                })?;
                let old = site.drop_relation(relation)?;
                let default = match attribute.ty {
                    eve_relational::DataType::Int => Value::Int(0),
                    eve_relational::DataType::Float => Value::Float(0.0),
                    eve_relational::DataType::Bool => Value::Bool(false),
                    eve_relational::DataType::Text => Value::Text(String::new()),
                };
                let new_schema = old.schema().concat(&eve_relational::Schema::new(vec![
                    eve_relational::ColumnDef::sized(
                        eve_relational::ColumnRef::bare(attribute.name.clone()),
                        attribute.ty,
                        attribute.byte_size,
                    ),
                ])?)?;
                let mut rebuilt = Relation::empty(relation.clone(), new_schema);
                for t in old.tuples() {
                    let mut vals = t.values().to_vec();
                    vals.push(default.clone());
                    rebuilt.insert(eve_relational::Tuple::new(vals))?;
                }
                site.host(rebuilt, info.blocking_factor)?;
            }
            SchemaChange::RenameAttribute { relation, from, to } => {
                let info = self.mkb.relation(relation)?;
                let site_id = info.site.0;
                let site = self.sites.get_mut(&site_id).ok_or_else(|| Error::State {
                    detail: format!("unknown site {site_id}"),
                })?;
                let old = site.drop_relation(relation)?;
                let names: Vec<eve_relational::ColumnRef> = old
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| {
                        if c.column.name == *from {
                            eve_relational::ColumnRef::bare(to.clone())
                        } else {
                            eve_relational::ColumnRef::bare(c.column.name.clone())
                        }
                    })
                    .collect();
                let mut renamed = eve_relational::algebra::rename_columns(&old, &names)?;
                renamed.set_name(relation.clone());
                site.host(renamed, info.blocking_factor)?;
            }
            SchemaChange::RenameRelation { from, to } => {
                let info = self.mkb.relation(from)?;
                let site_id = info.site.0;
                let site = self.sites.get_mut(&site_id).ok_or_else(|| Error::State {
                    detail: format!("unknown site {site_id}"),
                })?;
                let mut old = site.drop_relation(from)?;
                old.set_name(to.clone());
                site.host(old, info.blocking_factor)?;
            }
        }
        // Extent-rebuilding changes drop the rebuilt relation's warmed
        // indexes with its old storage; re-warm the declared ones.
        self.warm_declared_indexes();
        Ok(())
    }

    /// Total block I/Os charged across all sites.
    #[must_use]
    pub fn total_io(&self) -> u64 {
        self.sites.values().map(SimSite::io_count).sum()
    }

    /// Total messages charged across all sites (update notifications plus
    /// maintenance query/answer pairs). Together with [`total_io`], this
    /// makes batched and sequential cost reports comparable: both paths
    /// charge the same sites for the same traffic.
    ///
    /// [`total_io`]: EveEngine::total_io
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.sites.values().map(SimSite::message_count).sum()
    }

    /// Resets every site's resource accounting — I/O **and** message
    /// counters — so reports taken after the reset compare like for like.
    ///
    /// The reset also covers the observability counters of the rewrite
    /// machinery (rewrite-cache and partner-cache hit/miss counters, MKB
    /// inverted-index hit/miss counters): `stats` deltas taken between
    /// checkpoints all start from the same origin. Only *counters* reset;
    /// the memoized caches themselves stay warm.
    pub fn reset_io(&mut self) {
        for s in self.sites.values_mut() {
            s.reset_io();
        }
        // Every counter family the engine owns resets through ONE registry
        // call: the telemetry registry adopts the MKB inverted-index and
        // rewrite/partner cache handles, so `reset()` zeroes them all
        // without per-subsystem reset plumbing.
        self.telemetry_registry().reset();
        for rel in self
            .sites
            .values()
            .flat_map(SimSite::hosted_relations)
            .chain(self.views.values().map(|mv| &mv.extent))
        {
            rel.reset_index_counters();
        }
    }

    /// An instance [`eve_trace::Registry`] adopting the engine's
    /// per-instance counter handles (MKB inverted-index hit/miss,
    /// rewrite-cache and partner-cache hit/miss). Snapshots taken from it
    /// read the live atomics; [`Registry::reset`](eve_trace::Registry::reset)
    /// zeroes them all at once — which is exactly how
    /// [`reset_io`](EveEngine::reset_io) clears the engine counter surface.
    #[must_use]
    pub fn telemetry_registry(&self) -> eve_trace::Registry {
        let registry = eve_trace::Registry::new();
        for (name, handle) in self.mkb.index_counter_handles() {
            registry.register_counter(name, handle);
        }
        for (name, handle) in self.rewrite_cache.counter_handles() {
            registry.register_counter(name, handle);
        }
        registry
    }

    /// One merged metrics snapshot: the process-global families (`exec.`,
    /// `index.`, `intern.`, `store.`, `search.`, `engine.`, `trace.`) plus
    /// this engine's per-instance counters (`mkb.`, `cache.`).
    #[must_use]
    pub fn metrics_snapshot(&self) -> eve_trace::MetricsSnapshot {
        eve_trace::global()
            .snapshot()
            .merge(self.telemetry_registry().snapshot())
    }

    /// Mutable access to the site map (for the experiment harness).
    pub fn sites_mut(&mut self) -> &mut BTreeMap<u32, SimSite> {
        &mut self.sites
    }

    /// PC-partner closure cache statistics `(hits, misses)` of the engine's
    /// rewrite cache — how often a BFS over the PC constraints was replayed
    /// versus recomputed.
    #[must_use]
    pub fn partner_cache_stats(&self) -> (u64, u64) {
        self.rewrite_cache.partner_stats()
    }

    /// MKB inverted-index statistics `(hits, misses)` — constraint lookups
    /// served by an already-built index versus lazy rebuilds after MKB
    /// mutations (see [`Mkb::index_stats`]).
    #[must_use]
    pub fn mkb_index_stats(&self) -> (u64, u64) {
        self.mkb.index_stats()
    }

    /// Declares (and immediately warms) a secondary index on a hosted base
    /// relation. Returns `true` when the declaration is new, `false` when
    /// the same hint was already on file (the index is still re-warmed).
    ///
    /// The declaration is durable engine state: it is carried by
    /// [`snapshot_state`](EveEngine::snapshot_state) and re-warmed on
    /// restore. The warmed index itself lives in the relation's shared
    /// tuple storage, so query bindings ([`Relation::rebind`]) and
    /// copy-on-write descendants see it too, and it is maintained
    /// incrementally across inserts and deletes.
    ///
    /// # Errors
    ///
    /// [`Error::State`] for unregistered relations or unknown columns.
    pub fn declare_index(&mut self, relation: &str, column: &str, kind: IndexKind) -> Result<bool> {
        let info = self.mkb.relation(relation)?;
        let site_id = info.site.0;
        let site = self.sites.get(&site_id).ok_or_else(|| Error::State {
            detail: format!("unknown site {site_id}"),
        })?;
        let rel = site.relation(relation)?;
        let col = rel
            .schema()
            .columns()
            .iter()
            .position(|c| c.column.name == column)
            .ok_or_else(|| Error::State {
                detail: format!("relation `{relation}` has no column `{column}`"),
            })?;
        rel.warm_index(col, kind);
        let hint = IndexHint {
            relation: relation.to_owned(),
            column: column.to_owned(),
            kind,
        };
        if self.index_hints.contains(&hint) {
            return Ok(false);
        }
        self.index_hints.push(hint);
        Ok(true)
    }

    /// The declared secondary indexes, in declaration order.
    #[must_use]
    pub fn index_hints(&self) -> &[IndexHint] {
        &self.index_hints
    }

    /// Re-warms every declared index that still resolves to a hosted
    /// relation and column. Hints whose relation was dropped, renamed or
    /// reshaped are skipped silently — a declaration is a performance
    /// hint, never a correctness constraint. Called after snapshot restore
    /// and after schema changes that rebuild extents.
    pub fn warm_declared_indexes(&self) {
        for hint in &self.index_hints {
            let Ok(info) = self.mkb.relation(&hint.relation) else {
                continue;
            };
            let Some(site) = self.sites.get(&info.site.0) else {
                continue;
            };
            let Ok(rel) = site.relation(&hint.relation) else {
                continue;
            };
            if let Some(col) = rel
                .schema()
                .columns()
                .iter()
                .position(|c| c.column.name == hint.column)
            {
                rel.warm_index(col, hint.kind);
            }
        }
    }

    /// Aggregated columnar/index/interning counters across every relation
    /// extent the engine holds: site-hosted base relations and
    /// materialized view extents.
    #[must_use]
    pub fn column_layer_stats(&self) -> ColumnLayerStats {
        let mut stats = ColumnLayerStats {
            intern: eve_relational::intern::stats(),
            exec: eve_relational::morsel::stats(),
            ..ColumnLayerStats::default()
        };
        let extents = self
            .sites
            .values()
            .flat_map(SimSite::hosted_relations)
            .chain(self.views.values().map(|mv| &mv.extent));
        for rel in extents {
            stats.extents += 1;
            if rel.columnar_built() {
                stats.columnar_built += 1;
            }
            stats.index = stats.index.merged(rel.index_stats());
        }
        stats
    }
}

/// Per-view maintenance cost assessment (analytic, Eq. 24 under the
/// engine's workload model).
#[derive(Debug, Clone)]
pub struct ViewCostReport {
    /// The view's name.
    pub view_name: String,
    /// Cost factors for each possible update origin.
    pub per_origin: Vec<(String, CostFactors)>,
    /// Total cost per time unit under the engine's workload model.
    pub total_cost: f64,
}

/// Outcome of a cost-driven rebalancing pass for one view.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The view's name.
    pub view_name: String,
    /// Whether a migration was committed.
    pub migrated: bool,
    /// The relation that was replaced (when migrated).
    pub from_relation: Option<String>,
    /// The replacement relation (when migrated).
    pub to_relation: Option<String>,
    /// Maintenance cost before the pass.
    pub old_cost: f64,
    /// Maintenance cost after the pass.
    pub new_cost: f64,
}

impl EveEngine {
    /// Analytic maintenance cost of every materialized view, per update
    /// origin and in total under the configured workload model.
    ///
    /// # Errors
    ///
    /// MKB lookups for unregistered relations.
    pub fn cost_report(&self) -> Result<Vec<ViewCostReport>> {
        let mut out = Vec::new();
        for mv in self.views.values() {
            let plans = plans_for_view(&mv.def, &self.mkb)?;
            let per_origin = plans
                .iter()
                .map(|(origin, plan)| (origin.clone(), cost_factors(plan, &self.qc_params)))
                .collect();
            let total_cost = workload::total_cost(&plans, self.workload, &self.qc_params);
            out.push(ViewCostReport {
                view_name: mv.def.name.clone(),
                per_origin,
                total_cost,
            });
        }
        Ok(out)
    }

    /// Cost-driven migration: for each view, considers quality-neutral
    /// swaps onto *equivalent* replicas
    /// ([`eve_sync::equivalent_swaps`]) and adopts the cheapest one
    /// when it strictly undercuts the current maintenance cost. Before
    /// committing, the candidate's materialized extent is checked to
    /// coincide with the current one — a safety net against PC constraints
    /// that disagree with the actual data.
    ///
    /// # Errors
    ///
    /// Synchronization/plan/state failures.
    pub fn rebalance_views(&mut self) -> Result<Vec<MigrationReport>> {
        let mut reports = Vec::new();
        let names: Vec<String> = self.views.keys().cloned().collect();
        for name in names {
            let mv = self.views.get(&name).expect("exists").clone();
            let current_plans = plans_for_view(&mv.def, &self.mkb)?;
            let current_cost = workload::total_cost(&current_plans, self.workload, &self.qc_params);
            let mut best: Option<(f64, eve_sync::LegalRewriting)> = None;
            for candidate in eve_sync::equivalent_swaps(&mv.def, &self.mkb)? {
                let plans = plans_for_view(&candidate.view, &self.mkb)?;
                let cost = workload::total_cost(&plans, self.workload, &self.qc_params);
                if cost < current_cost - 1e-9 && best.as_ref().is_none_or(|(c, _)| cost < *c) {
                    best = Some((cost, candidate));
                }
            }
            match best {
                Some((new_cost, candidate)) => {
                    // Commit only when the data agrees with the constraint.
                    let new_extent = self.evaluate(&candidate.view)?;
                    let matches =
                        eve_relational::common::measure_common_sizes(&mv.extent, &new_extent)
                            .map(|s| s.original == s.overlap && s.rewriting == s.overlap)
                            .unwrap_or(false);
                    if !matches {
                        reports.push(MigrationReport {
                            view_name: name.clone(),
                            migrated: false,
                            from_relation: None,
                            to_relation: None,
                            old_cost: current_cost,
                            new_cost: current_cost,
                        });
                        continue;
                    }
                    let (from_rel, to_rel) = match candidate.provenance.actions.first() {
                        Some(eve_sync::RewriteAction::SwappedRelation {
                            old_relation,
                            new_relation,
                            ..
                        }) => (Some(old_relation.clone()), Some(new_relation.clone())),
                        _ => (None, None),
                    };
                    let mut def = candidate.view;
                    def.name = name.clone();
                    self.views.insert(
                        name.clone(),
                        MaterializedView {
                            def,
                            extent: new_extent,
                        },
                    );
                    reports.push(MigrationReport {
                        view_name: name,
                        migrated: true,
                        from_relation: from_rel,
                        to_relation: to_rel,
                        old_cost: current_cost,
                        new_cost,
                    });
                }
                None => reports.push(MigrationReport {
                    view_name: name,
                    migrated: false,
                    from_relation: None,
                    to_relation: None,
                    old_cost: current_cost,
                    new_cost: current_cost,
                }),
            }
        }
        Ok(reports)
    }

    /// Removes a materialized view from the warehouse.
    ///
    /// # Errors
    ///
    /// [`Error::State`] when the view does not exist.
    pub fn drop_view(&mut self, name: &str) -> Result<MaterializedView> {
        self.views.remove(name).ok_or_else(|| Error::State {
            detail: format!("no view named `{name}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, PcConstraint, PcRelationship, PcSide};
    use eve_relational::{tup, DataType, Schema};

    fn engine_with_travel_space() -> EveEngine {
        let mut e = EveEngine::new();
        e.add_site(SiteId(1), "customers-src").unwrap();
        e.add_site(SiteId(2), "flights-src").unwrap();
        e.add_site(SiteId(3), "tours-src").unwrap();

        let customer_schema =
            Schema::of(&[("Name", DataType::Text), ("Address", DataType::Text)]).unwrap();
        e.register_relation(
            RelationInfo::new(
                "Customer",
                SiteId(1),
                vec![
                    AttributeInfo::new("Name", DataType::Text),
                    AttributeInfo::new("Address", DataType::Text),
                ],
                3,
            ),
            Relation::with_tuples(
                "Customer",
                customer_schema,
                vec![
                    tup!["ann", "12 Elm"],
                    tup!["bob", "9 Oak"],
                    tup!["cho", "3 Pine"],
                ],
            )
            .unwrap(),
        )
        .unwrap();

        let flight_schema =
            Schema::of(&[("PName", DataType::Text), ("Dest", DataType::Text)]).unwrap();
        e.register_relation(
            RelationInfo::new(
                "FlightRes",
                SiteId(2),
                vec![
                    AttributeInfo::new("PName", DataType::Text),
                    AttributeInfo::new("Dest", DataType::Text),
                ],
                3,
            ),
            Relation::with_tuples(
                "FlightRes",
                flight_schema,
                vec![
                    tup!["ann", "Asia"],
                    tup!["bob", "Europe"],
                    tup!["cho", "Asia"],
                ],
            )
            .unwrap(),
        )
        .unwrap();

        // A tour-booking source that mirrors customers (replacement pool).
        let tour_schema =
            Schema::of(&[("Client", DataType::Text), ("Residence", DataType::Text)]).unwrap();
        e.register_relation(
            RelationInfo::new(
                "TourClient",
                SiteId(3),
                vec![
                    AttributeInfo::new("Client", DataType::Text),
                    AttributeInfo::new("Residence", DataType::Text),
                ],
                3,
            ),
            Relation::with_tuples(
                "TourClient",
                tour_schema,
                vec![
                    tup!["ann", "12 Elm"],
                    tup!["bob", "9 Oak"],
                    tup!["cho", "3 Pine"],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        e.mkb_mut()
            .add_pc_constraint(PcConstraint::new(
                PcSide::projection("Customer", &["Name", "Address"]),
                PcRelationship::Equivalent,
                PcSide::projection("TourClient", &["Client", "Residence"]),
            ))
            .unwrap();
        e
    }

    const ASIA_VIEW: &str = "CREATE VIEW Asia-Customer (VE = '~') AS \
        SELECT C.Name, C.Address \
        FROM Customer C (RR = true), FlightRes F \
        WHERE (C.Name = F.PName) AND (F.Dest = 'Asia')";

    #[test]
    fn define_and_query_view() {
        let mut e = engine_with_travel_space();
        let mv = e.define_view_sql(ASIA_VIEW).unwrap();
        assert_eq!(mv.extent.cardinality(), 2);
        assert!(e.define_view_sql(ASIA_VIEW).is_err(), "duplicate name");
    }

    #[test]
    fn view_validation_against_mkb() {
        let mut e = engine_with_travel_space();
        let bad = "CREATE VIEW V AS SELECT C.Ghost FROM Customer C";
        let err = e.define_view_sql(bad).unwrap_err();
        assert!(err.to_string().contains("no attribute"), "{err}");
        let bad = "CREATE VIEW V AS SELECT Z.A FROM Zilch Z";
        assert!(e.define_view_sql(bad).is_err());
    }

    #[test]
    fn data_update_maintains_views() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        let update = DataUpdate::insert("FlightRes", vec![tup!["bob", "Asia"]]);
        let traces = e.notify_data_update(&update).unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].1.view_inserts, 1);
        assert!(e
            .view("Asia-Customer")
            .unwrap()
            .extent
            .contains(&tup!["bob", "9 Oak"]));
    }

    #[test]
    fn capability_change_evolves_view() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        // The Customer source withdraws: EVE swaps in TourClient.
        let change = SchemaChange::DeleteRelation {
            relation: "Customer".into(),
        };
        let reports = e.notify_capability_change(&change, None).unwrap();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert!(r.affected && r.survived);
        assert_eq!(r.candidates, 1);
        let mv = e.view("Asia-Customer").unwrap();
        assert!(mv.def.from.iter().any(|f| f.relation == "TourClient"));
        // Interface preserved: output columns keep their names.
        assert_eq!(mv.def.output_columns(), vec!["Name", "Address"]);
        // Extent re-materialized over the substitute (equivalent data).
        assert_eq!(mv.extent.distinct_cardinality(), 2);
        assert!(mv.extent.contains(&tup!["ann", "12 Elm"]));
        // The MKB no longer knows Customer.
        assert!(!e.mkb().has_relation("Customer"));
    }

    #[test]
    fn view_dies_without_replacements() {
        let mut e = engine_with_travel_space();
        // FlightRes is strict (not replaceable, not dispensable).
        e.define_view_sql(ASIA_VIEW).unwrap();
        let change = SchemaChange::DeleteRelation {
            relation: "FlightRes".into(),
        };
        let reports = e.notify_capability_change(&change, None).unwrap();
        assert!(reports[0].affected);
        assert!(!reports[0].survived);
        assert!(e.view("Asia-Customer").is_err(), "dead view dropped");
    }

    #[test]
    fn unaffected_views_stay_put() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        let change = SchemaChange::DeleteRelation {
            relation: "TourClient".into(),
        };
        let reports = e.notify_capability_change(&change, None).unwrap();
        assert!(!reports[0].affected);
        assert!(reports[0].survived);
        assert!(e.view("Asia-Customer").is_ok());
    }

    #[test]
    fn rename_relation_keeps_view_running() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        let change = SchemaChange::RenameRelation {
            from: "FlightRes".into(),
            to: "Bookings".into(),
        };
        let reports = e.notify_capability_change(&change, None).unwrap();
        assert!(reports[0].survived);
        let mv = e.view("Asia-Customer").unwrap();
        assert!(mv.def.from.iter().any(|f| f.relation == "Bookings"));
        assert_eq!(mv.extent.distinct_cardinality(), 2);
        // Data updates keep flowing under the new name.
        let update = DataUpdate::insert("Bookings", vec![tup!["bob", "Asia"]]);
        let traces = e.notify_data_update(&update).unwrap();
        assert_eq!(traces[0].1.view_inserts, 1);
    }

    #[test]
    fn delete_attribute_projects_site_extent() {
        let mut e = engine_with_travel_space();
        let change = SchemaChange::DeleteAttribute {
            relation: "TourClient".into(),
            attribute: "Residence".into(),
        };
        e.notify_capability_change(&change, None).unwrap();
        let site = &e.sites[&3];
        assert_eq!(site.relation("TourClient").unwrap().schema().arity(), 1);
    }

    #[test]
    fn add_relation_requires_extent() {
        let mut e = engine_with_travel_space();
        let change = SchemaChange::AddRelation {
            relation: RelationInfo::new(
                "Hotel",
                SiteId(1),
                vec![AttributeInfo::new("Name", DataType::Text)],
                0,
            ),
        };
        assert!(e.notify_capability_change(&change, None).is_err());
        let extent = Relation::empty("Hotel", Schema::of(&[("Name", DataType::Text)]).unwrap());
        let reports = e.notify_capability_change(&change, Some(extent)).unwrap();
        assert!(reports.is_empty() || reports.iter().all(|r| !r.affected));
        assert!(e.mkb().has_relation("Hotel"));
    }

    #[test]
    fn add_attribute_backfills_defaults() {
        let mut e = engine_with_travel_space();
        let change = SchemaChange::AddAttribute {
            relation: "Customer".into(),
            attribute: AttributeInfo::new("Age", DataType::Int),
        };
        e.notify_capability_change(&change, None).unwrap();
        let site = &e.sites[&1];
        let rel = site.relation("Customer").unwrap();
        assert_eq!(rel.schema().arity(), 3);
        assert_eq!(rel.tuples()[0].get(2), &Value::Int(0));
    }

    #[test]
    fn cost_report_covers_every_view_and_origin() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        e.define_view_sql("CREATE VIEW Just (VE = '~') AS SELECT C.Name FROM Customer C")
            .unwrap();
        let report = e.cost_report().unwrap();
        assert_eq!(report.len(), 2);
        let asia = report
            .iter()
            .find(|r| r.view_name == "Asia-Customer")
            .unwrap();
        assert_eq!(asia.per_origin.len(), 2); // Customer + FlightRes origins
        assert!(asia.total_cost > 0.0);
        for (_, f) in &asia.per_origin {
            assert!(f.messages >= 1.0);
            assert!(f.transfer > 0.0);
        }
        // The single-relation view is cheaper to maintain than the join.
        let just = report.iter().find(|r| r.view_name == "Just").unwrap();
        assert!(just.total_cost < asia.total_cost);
    }

    #[test]
    fn rebalance_migrates_to_cheaper_colocated_replica() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        let before_extent = e.view("Asia-Customer").unwrap().extent.clone();

        // No strictly cheaper equivalent exists yet: TourClient mirrors
        // Customer at an equally-distant site.
        let reports = e.rebalance_views().unwrap();
        assert!(reports.iter().all(|r| !r.migrated));

        // A new replica arrives with *narrower declared attributes* (a
        // compact encoding): maintaining the view over it ships fewer bytes
        // per delta, so it is strictly cheaper.
        let passengers_schema =
            Schema::of(&[("PName2", DataType::Text), ("PAddr", DataType::Text)]).unwrap();
        e.notify_capability_change(
            &SchemaChange::AddRelation {
                relation: RelationInfo::new(
                    "Passengers",
                    SiteId(2),
                    vec![
                        AttributeInfo::sized("PName2", DataType::Text, 5),
                        AttributeInfo::sized("PAddr", DataType::Text, 5),
                    ],
                    3,
                ),
            },
            Some(
                Relation::with_tuples(
                    "Passengers",
                    passengers_schema,
                    vec![
                        tup!["ann", "12 Elm"],
                        tup!["bob", "9 Oak"],
                        tup!["cho", "3 Pine"],
                    ],
                )
                .unwrap(),
            ),
        )
        .unwrap();
        e.mkb_mut()
            .add_pc_constraint(PcConstraint::new(
                PcSide::projection("Customer", &["Name", "Address"]),
                PcRelationship::Equivalent,
                PcSide::projection("Passengers", &["PName2", "PAddr"]),
            ))
            .unwrap();

        let reports = e.rebalance_views().unwrap();
        let r = reports
            .iter()
            .find(|r| r.view_name == "Asia-Customer")
            .unwrap();
        assert!(r.migrated, "{r:?}");
        assert_eq!(r.from_relation.as_deref(), Some("Customer"));
        assert_eq!(r.to_relation.as_deref(), Some("Passengers"));
        assert!(r.new_cost < r.old_cost);

        // Interface and extent preserved.
        let after = e.view("Asia-Customer").unwrap();
        assert_eq!(after.def.output_columns(), vec!["Name", "Address"]);
        assert_eq!(
            before_extent.distinct().tuples(),
            after.extent.distinct().tuples()
        );
        // The migrated view keeps working for updates.
        let update = DataUpdate::insert("FlightRes", vec![tup!["bob", "Asia"]]);
        let traces = e.notify_data_update(&update).unwrap();
        assert_eq!(traces[0].1.view_inserts, 1);
    }

    #[test]
    fn drop_view_removes_and_errors_on_missing() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        let dropped = e.drop_view("Asia-Customer").unwrap();
        assert_eq!(dropped.def.name, "Asia-Customer");
        assert!(e.view("Asia-Customer").is_err());
        assert!(e.drop_view("Asia-Customer").is_err());
    }

    #[test]
    fn batch_updates_merge_traces() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        let updates = [
            DataUpdate::insert("FlightRes", vec![tup!["bob", "Asia"]]),
            DataUpdate::insert("Customer", vec![tup!["eli", "5 Ash"]]),
            DataUpdate::insert("FlightRes", vec![tup!["eli", "Asia"]]),
        ];
        let merged = e.notify_data_updates(&updates).unwrap();
        let trace = &merged["Asia-Customer"];
        assert_eq!(trace.view_inserts, 2); // bob and eli join the view
        assert!(trace.messages >= 3); // at least one notification each
        assert!(e
            .view("Asia-Customer")
            .unwrap()
            .extent
            .contains(&tup!["eli", "5 Ash"]));
    }

    #[test]
    fn reset_io_clears_io_and_message_accounting_together() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        e.reset_io();
        let update = DataUpdate::insert("FlightRes", vec![tup!["bob", "Asia"]]);
        let traces = e.notify_data_update(&update).unwrap();
        // Invariant: every message a trace reports was charged to a site,
        // so site-level and trace-level accounting agree — which is what
        // makes batched and sequential cost reports comparable.
        let trace_messages: u64 = traces.iter().map(|(_, t)| t.messages).sum();
        assert!(trace_messages > 0);
        assert_eq!(e.total_messages(), trace_messages);
        assert!(e.total_io() > 0);
        e.reset_io();
        assert_eq!(e.total_io(), 0);
        assert_eq!(e.total_messages(), 0, "reset_io clears messages too");
    }

    #[test]
    fn reset_io_also_zeroes_cache_and_index_counters() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        // Drive every counter: a capability change exercises the rewrite
        // cache, the partner cache and the MKB inverted index; a data update
        // charges I/O and messages.
        let change = SchemaChange::DeleteRelation {
            relation: "Customer".into(),
        };
        e.notify_capability_change(&change, None).unwrap();
        e.notify_data_update(&DataUpdate::insert("FlightRes", vec![tup!["zed", "Asia"]]))
            .unwrap();
        let (rw_h, rw_m) = e.rewrite_cache_stats();
        let (pc_h, pc_m) = e.partner_cache_stats();
        let (ix_h, ix_m) = e.mkb_index_stats();
        assert!(rw_h + rw_m > 0, "rewrite cache was exercised");
        assert!(pc_h + pc_m > 0, "partner cache was exercised");
        assert!(ix_h + ix_m > 0, "mkb index was exercised");
        assert!(e.total_io() > 0);

        e.reset_io();
        assert_eq!(e.total_io(), 0);
        assert_eq!(e.total_messages(), 0);
        assert_eq!(e.rewrite_cache_stats(), (0, 0), "rewrite counters reset");
        assert_eq!(e.partner_cache_stats(), (0, 0), "partner counters reset");
        assert_eq!(e.mkb_index_stats(), (0, 0), "index counters reset");

        // Post-reset deltas are meaningful: fresh activity counts from zero.
        e.notify_data_update(&DataUpdate::insert("FlightRes", vec![tup!["yan", "Asia"]]))
            .unwrap();
        assert!(e.total_io() > 0, "new work accrues after the reset");
    }

    #[test]
    fn no_telemetry_registry_counter_survives_reset() {
        // The registry-reset regression pin: every counter the engine's
        // telemetry registry adopts must read zero after `reset_io` —
        // a newly wired counter that dodges the registry fails here.
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        let change = SchemaChange::DeleteRelation {
            relation: "Customer".into(),
        };
        e.notify_capability_change(&change, None).unwrap();
        let before = e.telemetry_registry().snapshot();
        assert!(
            before.counters.values().sum::<u64>() > 0,
            "telemetry counters were exercised"
        );
        e.reset_io();
        let after = e.telemetry_registry().snapshot();
        assert_eq!(
            after.counters.len(),
            before.counters.len(),
            "reset must zero counters, not drop them"
        );
        for (name, v) in &after.counters {
            assert_eq!(*v, 0, "counter `{name}` survived reset_io");
        }
    }

    #[test]
    fn metrics_snapshot_merges_instance_and_global_families() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        e.notify_data_update(&DataUpdate::insert("FlightRes", vec![tup!["zed", "Asia"]]))
            .unwrap();
        let snap = e.metrics_snapshot();
        // Per-instance families appear alongside the process-global ones.
        assert!(snap.counters.contains_key("mkb.index_hits"));
        assert!(snap.counters.contains_key("cache.rewrite_hits"));
        assert!(
            snap.counters.contains_key("engine.data_updates"),
            "global engine family present"
        );
        assert!(
            snap.counters
                .get("engine.data_updates")
                .is_some_and(|&v| v > 0),
            "the update was counted"
        );
    }

    #[test]
    fn pruned_search_modes_adopt_the_same_rewriting() {
        // One legal repair exists (TourClient); every search mode must find
        // and adopt it — the modes differ in how much of the candidate
        // space they materialize, not in the winner.
        let change = SchemaChange::DeleteRelation {
            relation: "Customer".into(),
        };
        let mut adopted = Vec::new();
        for mode in [
            SearchMode::Exhaustive,
            SearchMode::BestFirst,
            SearchMode::Beam { width: 2 },
        ] {
            let mut e = engine_with_travel_space();
            e.search = mode;
            e.define_view_sql(ASIA_VIEW).unwrap();
            let reports = e.notify_capability_change(&change, None).unwrap();
            assert!(reports[0].survived, "{mode:?}");
            adopted.push(e.view("Asia-Customer").unwrap().def.to_string());
        }
        assert_eq!(adopted[0], adopted[1]);
        assert_eq!(adopted[0], adopted[2]);
    }

    #[test]
    fn beam_mode_honors_engine_sync_options() {
        // Two equivalent replacement pools for Customer; the beam width
        // admits both, but the engine's max_rewritings caps the candidate
        // set the QC ranking sees.
        let second_mirror = |e: &mut EveEngine| {
            let schema =
                Schema::of(&[("CName", DataType::Text), ("CAddr", DataType::Text)]).unwrap();
            e.register_relation(
                RelationInfo::new(
                    "TourClient2",
                    SiteId(3),
                    vec![
                        AttributeInfo::new("CName", DataType::Text),
                        AttributeInfo::new("CAddr", DataType::Text),
                    ],
                    3,
                ),
                Relation::with_tuples(
                    "TourClient2",
                    schema,
                    vec![
                        tup!["ann", "12 Elm"],
                        tup!["bob", "9 Oak"],
                        tup!["cho", "3 Pine"],
                    ],
                )
                .unwrap(),
            )
            .unwrap();
            e.mkb_mut()
                .add_pc_constraint(PcConstraint::new(
                    PcSide::projection("Customer", &["Name", "Address"]),
                    PcRelationship::Equivalent,
                    PcSide::projection("TourClient2", &["CName", "CAddr"]),
                ))
                .unwrap();
        };
        let change = SchemaChange::DeleteRelation {
            relation: "Customer".into(),
        };

        let mut wide = engine_with_travel_space();
        second_mirror(&mut wide);
        wide.search = SearchMode::Beam { width: 3 };
        wide.define_view_sql(ASIA_VIEW).unwrap();
        let reports = wide.notify_capability_change(&change, None).unwrap();
        assert_eq!(reports[0].candidates, 2, "width admits both mirrors");

        let mut capped = engine_with_travel_space();
        second_mirror(&mut capped);
        capped.search = SearchMode::Beam { width: 3 };
        capped.sync_options.max_rewritings = 1;
        capped.define_view_sql(ASIA_VIEW).unwrap();
        let reports = capped.notify_capability_change(&change, None).unwrap();
        assert_eq!(
            reports[0].candidates, 1,
            "engine max_rewritings caps the beam's emissions"
        );
    }

    #[test]
    fn stats_accessors_expose_cache_and_index_counters() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        let change = SchemaChange::DeleteRelation {
            relation: "Customer".into(),
        };
        e.notify_capability_change(&change, None).unwrap();
        let (_, pc_misses) = e.partner_cache_stats();
        assert!(pc_misses >= 1, "synchronization ran a partner BFS");
        let (ix_hits, ix_misses) = e.mkb_index_stats();
        assert!(
            ix_hits + ix_misses >= 1,
            "constraint lookups went through the index"
        );
    }

    #[test]
    fn first_found_strategy_is_respected() {
        let mut e = engine_with_travel_space();
        e.strategy = SelectionStrategy::FirstFound;
        e.define_view_sql(ASIA_VIEW).unwrap();
        let change = SchemaChange::DeleteRelation {
            relation: "Customer".into(),
        };
        let reports = e.notify_capability_change(&change, None).unwrap();
        let adopted = reports[0].adopted.as_ref().unwrap();
        assert_eq!(adopted.index, 0);
    }

    #[test]
    fn declare_index_warms_and_dedupes() {
        let mut e = engine_with_travel_space();
        assert!(e
            .declare_index("Customer", "Name", IndexKind::Hash)
            .unwrap());
        assert!(
            !e.declare_index("Customer", "Name", IndexKind::Hash)
                .unwrap(),
            "re-declaration is idempotent"
        );
        assert_eq!(e.index_hints().len(), 1);
        let rel = e.sites[&1].relation("Customer").unwrap();
        assert!(rel.has_index(0, IndexKind::Hash));
        assert!(e
            .declare_index("Customer", "Ghost", IndexKind::Hash)
            .is_err());
        assert!(e.declare_index("Zilch", "Name", IndexKind::Hash).is_err());
    }

    #[test]
    fn declared_index_survives_data_updates_and_stays_consistent() {
        let mut e = engine_with_travel_space();
        e.declare_index("FlightRes", "Dest", IndexKind::Hash)
            .unwrap();
        let update = DataUpdate {
            relation: "FlightRes".into(),
            inserts: vec![tup!["dee", "Asia"]],
            deletes: vec![tup!["bob", "Europe"]],
        };
        e.notify_data_update(&update).unwrap();
        let rel = e.sites[&2].relation("FlightRes").unwrap();
        assert!(
            rel.has_index(1, IndexKind::Hash),
            "index maintained, not dropped"
        );
        let rows = rel.index_eq_rows(1, &Value::from("Asia"));
        assert_eq!(rows.len(), 3, "ann, cho and dee fly to Asia");
    }

    #[test]
    fn column_layer_stats_aggregate_extents_and_indexes() {
        let mut e = engine_with_travel_space();
        e.define_view_sql(ASIA_VIEW).unwrap();
        e.declare_index("Customer", "Name", IndexKind::Hash)
            .unwrap();
        e.declare_index("FlightRes", "Dest", IndexKind::Sorted)
            .unwrap();
        let cl = e.column_layer_stats();
        assert_eq!(cl.extents, 4, "three base relations + one view extent");
        assert_eq!(cl.index.hash_indexes, 1);
        assert_eq!(cl.index.sorted_indexes, 1);
        assert!(cl.index.builds >= 2);
        assert!(cl.intern.symbols > 0, "text extents interned their strings");
    }

    #[test]
    fn schema_change_rewarrms_declared_indexes() {
        let mut e = engine_with_travel_space();
        e.declare_index("Customer", "Name", IndexKind::Hash)
            .unwrap();
        let change = SchemaChange::RenameAttribute {
            relation: "Customer".into(),
            from: "Address".into(),
            to: "Addr".into(),
        };
        e.notify_capability_change(&change, None).unwrap();
        let rel = e.sites[&1].relation("Customer").unwrap();
        assert!(
            rel.has_index(0, IndexKind::Hash),
            "rebuilt extent re-warmed the declared index"
        );
    }
}
