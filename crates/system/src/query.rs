//! View query evaluation.
//!
//! [`evaluate_view`] routes every view execution through the physical query
//! layer: the E-SQL definition is lowered to an
//! [`eve_relational::QuerySpec`] (scans of the bound extents, the WHERE
//! conjunction, the SELECT projection), compiled by the cost-ordered
//! planner ([`eve_relational::plan`]) — pushed-down selections, hash-join
//! keys resolved at plan time, selectivity-driven greedy join reordering —
//! and executed over `Arc`-shared storage ([`eve_relational::exec`]).
//!
//! [`evaluate_view_naive`] keeps the historical left-to-right fold as the
//! reference implementation: FROM relations joined in declaration order
//! with WHERE clauses applied as early as they become resolvable. The
//! differential property suites hold the planner to `planned ≡ naive` (as
//! bags — join reordering may permute physical row order).
//!
//! The result is a *bag* (duplicates preserved): materialized views keep all
//! derivations so that incremental deletions remove the right multiplicity;
//! the paper's set-semantics comparisons deduplicate afterwards.

use std::collections::BTreeMap;

use eve_esql::ViewDef;
use eve_relational::{
    algebra, ColumnRef, ExecOptions, PhysicalPlan, Predicate, PrimitiveClause, QueryInput,
    QuerySpec, Relation, RelationStats, Schema,
};

use crate::error::{Error, Result};

/// Re-qualifies a base relation's columns to a view binding name.
/// Zero-copy: the bound relation shares the input's tuple storage.
///
/// # Errors
///
/// Schema manipulation failures.
pub fn bind_relation(rel: &Relation, binding: &str) -> Result<Relation> {
    let schema = rel.schema().unqualify()?.qualify(binding);
    Ok(rel.rebind(binding, schema)?)
}

/// Lowers a *validated* view over the given extents into the planner's
/// neutral query form, attaching declared statistics where provided.
fn lower(
    view: &ViewDef,
    extents: &BTreeMap<String, Relation>,
    stats: &BTreeMap<String, RelationStats>,
) -> Result<QuerySpec> {
    let mut inputs = Vec::with_capacity(view.from.len());
    for item in &view.from {
        let rel = extents.get(&item.relation).ok_or_else(|| Error::State {
            detail: format!("no extent for relation `{}`", item.relation),
        })?;
        inputs.push(QueryInput {
            binding: item.binding_name().to_owned(),
            relation: bind_relation(rel, item.binding_name())?,
            stats: stats.get(&item.relation).cloned(),
        });
    }
    Ok(QuerySpec {
        name: view.name.clone(),
        inputs,
        clauses: view.conditions.iter().map(|c| c.clause.clone()).collect(),
        projection: view.select.iter().map(|s| s.attr.clone()).collect(),
        output: view
            .output_columns()
            .into_iter()
            .map(ColumnRef::bare)
            .collect(),
    })
}

/// Compiles a view over base extents into a physical plan without executing
/// it — the estimate inspection hook for benches and cost reports.
///
/// # Errors
///
/// Validation/state/planning failures.
pub fn plan_view(
    view: &ViewDef,
    extents: &BTreeMap<String, Relation>,
    stats: &BTreeMap<String, RelationStats>,
) -> Result<PhysicalPlan> {
    let view = eve_esql::validate::validate(view).map_err(|e| Error::Validation(e.message))?;
    Ok(eve_relational::plan::plan(lower(&view, extents, stats)?)?)
}

/// Evaluates a view over base extents keyed by *relation name*, through the
/// physical planner (measured-statistics mode).
///
/// # Errors
///
/// [`Error::State`] for missing extents, planning/validation failures for
/// clauses that never become resolvable, relational failures otherwise.
pub fn evaluate_view(view: &ViewDef, extents: &BTreeMap<String, Relation>) -> Result<Relation> {
    evaluate_view_with_stats(view, extents, &BTreeMap::new())
}

/// [`evaluate_view`] with declared [`RelationStats`] (keyed by relation
/// name) steering the planner; relations without an entry fall back to
/// measured statistics.
///
/// # Errors
///
/// As [`evaluate_view`].
pub fn evaluate_view_with_stats(
    view: &ViewDef,
    extents: &BTreeMap<String, Relation>,
    stats: &BTreeMap<String, RelationStats>,
) -> Result<Relation> {
    evaluate_view_with_options(view, extents, stats, &ExecOptions::default())
}

/// [`evaluate_view_with_stats`] under explicit [`ExecOptions`]: with
/// `parallelism > 1` the columnar operators run morsel-parallel (unless
/// the planner's cost model vetoes it for a tiny input). Output is
/// byte-identical to serial execution regardless of the options.
///
/// # Errors
///
/// As [`evaluate_view`].
pub fn evaluate_view_with_options(
    view: &ViewDef,
    extents: &BTreeMap<String, Relation>,
    stats: &BTreeMap<String, RelationStats>,
    options: &ExecOptions,
) -> Result<Relation> {
    let plan = plan_view(view, extents, stats)?;
    Ok(eve_relational::exec::execute_with_options(
        &plan,
        eve_relational::ExecMode::Columnar,
        options,
    )?)
}

/// Whether every column of a clause resolves in `schema`.
fn resolvable(clause: &PrimitiveClause, schema: &Schema) -> bool {
    clause
        .columns()
        .iter()
        .all(|c| schema.resolve(c, "probe").is_ok())
}

/// Splits `clauses` into those resolvable in `schema` and the rest.
fn split_resolvable(
    clauses: Vec<PrimitiveClause>,
    schema: &Schema,
) -> (Vec<PrimitiveClause>, Vec<PrimitiveClause>) {
    clauses.into_iter().partition(|c| resolvable(c, schema))
}

/// The naive reference evaluator: FROM relations folded left-to-right in
/// declaration order, WHERE clauses applied as early as they become
/// resolvable. Kept verbatim as the implementation the differential
/// property suites compare planned execution against.
///
/// # Errors
///
/// [`Error::State`] for missing extents, [`Error::Validation`] for clauses
/// that never become resolvable, relational failures otherwise.
pub fn evaluate_view_naive(
    view: &ViewDef,
    extents: &BTreeMap<String, Relation>,
) -> Result<Relation> {
    let view = eve_esql::validate::validate(view).map_err(|e| Error::Validation(e.message))?;

    let fetch = |item: &eve_esql::FromItem| -> Result<Relation> {
        let rel = extents.get(&item.relation).ok_or_else(|| Error::State {
            detail: format!("no extent for relation `{}`", item.relation),
        })?;
        bind_relation(rel, item.binding_name())
    };

    let mut remaining: Vec<PrimitiveClause> =
        view.conditions.iter().map(|c| c.clause.clone()).collect();

    let mut acc = fetch(&view.from[0])?;
    let (local, rest) = split_resolvable(remaining, acc.schema());
    remaining = rest;
    if !local.is_empty() {
        acc = algebra::select(&acc, &Predicate::new(local))?;
    }

    for item in &view.from[1..] {
        let mut next = fetch(item)?;
        let (local, rest) = split_resolvable(remaining, next.schema());
        remaining = rest;
        if !local.is_empty() {
            next = algebra::select(&next, &Predicate::new(local))?;
        }
        let combined = acc.schema().concat(next.schema())?;
        let (join_clauses, rest) = split_resolvable(remaining, &combined);
        remaining = rest;
        acc = algebra::join(&acc, &next, &Predicate::new(join_clauses))?;
    }

    if !remaining.is_empty() {
        return Err(Error::Validation(format!(
            "conditions reference no FROM relation: {}",
            Predicate::new(remaining)
        )));
    }

    // Project the SELECT list and rename to the output columns.
    let columns: Vec<ColumnRef> = view.select.iter().map(|s| s.attr.clone()).collect();
    let projected = algebra::project(&acc, &columns, false)?;
    let out_names: Vec<ColumnRef> = view
        .output_columns()
        .into_iter()
        .map(ColumnRef::bare)
        .collect();
    let mut out = algebra::rename_columns(&projected, &out_names)?;
    out.set_name(view.name.clone());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_esql::parse_view;
    use eve_relational::{tup, DataType, Tuple, Value};

    fn extents() -> BTreeMap<String, Relation> {
        let customer = Relation::with_tuples(
            "Customer",
            Schema::of(&[("Name", DataType::Text), ("Address", DataType::Text)]).unwrap(),
            vec![
                tup!["ann", "12 Elm St"],
                tup!["bob", "9 Oak Ave"],
                tup!["cho", "3 Pine Rd"],
            ],
        )
        .unwrap();
        let flights = Relation::with_tuples(
            "FlightRes",
            Schema::of(&[("PName", DataType::Text), ("Dest", DataType::Text)]).unwrap(),
            vec![
                tup!["ann", "Asia"],
                tup!["bob", "Europe"],
                tup!["cho", "Asia"],
                tup!["ann", "Asia"],
            ],
        )
        .unwrap();
        let mut m = BTreeMap::new();
        m.insert("Customer".to_owned(), customer);
        m.insert("FlightRes".to_owned(), flights);
        m
    }

    #[test]
    fn asia_customer_join() {
        let view = parse_view(
            "CREATE VIEW Asia-Customer (VE = '~') AS \
             SELECT C.Name, C.Address \
             FROM Customer C, FlightRes F \
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia')",
        )
        .unwrap();
        let out = evaluate_view(&view, &extents()).unwrap();
        // Bag semantics: ann appears twice (two Asia reservations).
        assert_eq!(out.cardinality(), 3);
        assert_eq!(out.distinct_cardinality(), 2);
        assert!(out.distinct().contains(&tup!["ann", "12 Elm St"]));
        assert!(out.distinct().contains(&tup!["cho", "3 Pine Rd"]));
        assert_eq!(out.name(), "Asia-Customer");
        assert_eq!(out.schema().column(0).column, ColumnRef::bare("Name"));
    }

    #[test]
    fn local_selection_applied_before_join() {
        let view =
            parse_view("CREATE VIEW V AS SELECT F.PName FROM FlightRes F WHERE F.Dest = 'Asia'")
                .unwrap();
        let out = evaluate_view(&view, &extents()).unwrap();
        assert_eq!(out.cardinality(), 3);
    }

    #[test]
    fn aliases_rename_output_columns() {
        let view = parse_view("CREATE VIEW V AS SELECT C.Name AS Who FROM Customer C").unwrap();
        let out = evaluate_view(&view, &extents()).unwrap();
        assert_eq!(out.schema().column(0).column, ColumnRef::bare("Who"));
    }

    #[test]
    fn explicit_column_list_renames() {
        let view =
            parse_view("CREATE VIEW V (X, Y) AS SELECT C.Name, C.Address FROM Customer C").unwrap();
        let out = evaluate_view(&view, &extents()).unwrap();
        assert_eq!(out.schema().column(0).column, ColumnRef::bare("X"));
        assert_eq!(out.schema().column(1).column, ColumnRef::bare("Y"));
    }

    #[test]
    fn missing_extent_reported() {
        let view = parse_view("CREATE VIEW V AS SELECT Z.A FROM Z").unwrap();
        let e = evaluate_view(&view, &extents()).unwrap_err();
        assert!(e.to_string().contains("no extent"));
    }

    #[test]
    fn three_way_chain_join() {
        let mut ext = BTreeMap::new();
        let mk = |name: &str, rows: Vec<Tuple>| {
            Relation::with_tuples(
                name,
                Schema::of(&[("K", DataType::Int), ("P", DataType::Int)]).unwrap(),
                rows,
            )
            .unwrap()
        };
        ext.insert("A".to_owned(), mk("A", vec![tup![1, 10], tup![2, 20]]));
        ext.insert("B".to_owned(), mk("B", vec![tup![1, 11], tup![3, 31]]));
        ext.insert("C".to_owned(), mk("C", vec![tup![1, 12], tup![2, 22]]));
        let view = parse_view(
            "CREATE VIEW V AS SELECT A.K, B.P AS BP, C.P AS CP FROM A, B, C \
             WHERE A.K = B.K AND B.K = C.K",
        )
        .unwrap();
        let out = evaluate_view(&view, &ext).unwrap();
        assert_eq!(out.tuples(), &[tup![1, 11, 12]]);
    }

    #[test]
    fn self_join_with_aliases() {
        let mut ext = BTreeMap::new();
        ext.insert(
            "E".to_owned(),
            Relation::with_tuples(
                "E",
                Schema::of(&[("Id", DataType::Int), ("Boss", DataType::Int)]).unwrap(),
                vec![tup![1, 2], tup![2, 3]],
            )
            .unwrap(),
        );
        let view = parse_view(
            "CREATE VIEW V AS SELECT X.Id, Y.Id AS BossId FROM E X, E Y WHERE X.Boss = Y.Id",
        )
        .unwrap();
        let out = evaluate_view(&view, &ext).unwrap();
        assert_eq!(out.tuples(), &[tup![1, 2]]);
    }

    #[test]
    fn dangling_condition_rejected() {
        // Condition references a binding that exists but with an unknown
        // attribute — surfaces as a relational error at join time, or as a
        // validation error if it never resolves.
        let view =
            parse_view("CREATE VIEW V AS SELECT C.Name FROM Customer C WHERE C.Ghost = 1").unwrap();
        assert!(evaluate_view(&view, &extents()).is_err());
    }

    #[test]
    fn literal_types_checked() {
        let view =
            parse_view("CREATE VIEW V AS SELECT C.Name FROM Customer C WHERE C.Name = 42").unwrap();
        let e = evaluate_view(&view, &extents()).unwrap_err();
        assert!(matches!(e, Error::Relational(_)));
    }

    #[test]
    fn bind_relation_requalifies() {
        let ext = extents();
        let bound = bind_relation(&ext["Customer"], "C").unwrap();
        assert!(bound
            .schema()
            .resolve(&ColumnRef::parse("C.Name"), "C")
            .is_ok());
        let v = Value::from("ann");
        assert_eq!(bound.tuples()[0].get(0), &v);
    }
}
