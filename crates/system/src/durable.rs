//! The durable engine: an [`EveEngine`] whose evolution history survives
//! crashes, backed by the `eve-store` write-ahead evolution log.
//!
//! ## Durability contract
//!
//! Every mutating call on [`DurableEngine`] first applies to the in-memory
//! engine, then enqueues one log record on the store's **group-commit
//! writer** and waits on its commit ticket — the ticket resolves only
//! after the batch containing the record is `fsync`'d, so when a call
//! returns `Ok`, the operation is on disk and recovery will reproduce it.
//! A crash between apply and commit loses at most the in-flight call
//! (which was never acknowledged); a crash mid-append leaves a torn frame
//! the next [`DurableEngine::open`] truncates. The group-commit queue is
//! what lets many concurrent appenders (e.g. the throughput benches
//! driving [`eve_store::GroupCommitLog`] directly) share one fsync per
//! batch instead of paying one each.
//!
//! ## Recovery
//!
//! [`DurableEngine::open`] loads the newest intact snapshot, rebuilds the
//! engine from it, and replays the log tail through the *live* pipeline —
//! the same [`EveEngine::apply_batch`] path the records originally took.
//! Since application is deterministic under a fixed configuration (the
//! configuration is part of every snapshot), the recovered engine is
//! byte-identical — MKB generation, site extents and counters, installed
//! rewritings — to the engine that never crashed. The differential suite
//! in `tests/durability.rs` pins exactly that across random op streams and
//! random crash points.
//!
//! ## Time travel
//!
//! Records carry the MKB generation observed after applying them, and
//! snapshots are retained (until [`DurableEngine::compact`]), so
//! [`DurableEngine::open_at`] can rebuild the engine as of any retained
//! generation `g`: the newest snapshot at or before `g` plus every record
//! whose post-generation is `≤ g`. Queries can then be evaluated against
//! past MKB generations — "what did this view look like at generation N".

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use eve_misd::{JoinConstraint, Mkb, PcConstraint, RelationInfo, SchemaChange, SiteId};
use eve_relational::{IndexKind, Relation, Tuple};
use eve_store::{
    DeltaSnapshot, EngineConfig, EngineSnapshot, EvolutionStore, GroupCommitLog, GroupCommitPolicy,
    LogRecord, RecoveredLog, SearchModeState, SiteSnapshot, SnapshotMeta, StoreStats, ViewSnapshot,
};
use eve_sync::EvolutionOp;

use crate::engine::{BatchOutcome, EveEngine, EvolutionReport, MaterializedView, SearchMode};
use crate::error::{Error, Result};
use crate::maintainer::{DataUpdate, MaintenanceTrace};
use crate::site::SimSite;

impl From<eve_store::Error> for Error {
    fn from(e: eve_store::Error) -> Error {
        match e {
            // Keep "store busy" typed across the layer boundary: the shell
            // and server surface it with the lock path and a usage hint
            // instead of collapsing it into a generic state error.
            eve_store::Error::Busy { .. } => Error::Busy {
                detail: e.to_string(),
            },
            other => Error::State {
                detail: other.to_string(),
            },
        }
    }
}

/// What [`DurableEngine::open`] reports about the recovery it performed.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot recovery anchored on (`None` when
    /// the store held no intact snapshot and replay started from empty).
    pub snapshot_seq: Option<u64>,
    /// MKB generation of that snapshot.
    pub snapshot_generation: Option<u64>,
    /// Log records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Bytes truncated from a torn tail frame (0 on a clean shutdown).
    pub torn_bytes_truncated: u64,
    /// Damaged snapshot files that were skipped in favour of older ones.
    pub snapshots_skipped: usize,
    /// MKB generation after recovery completed.
    pub generation: u64,
}

/// An engine plus its evolution store. All mutations must flow through
/// this wrapper to be durable; [`DurableEngine::engine_mut`] exists for
/// read-mostly tweaks but anything reaching state the snapshot covers
/// should be followed by [`DurableEngine::checkpoint`].
#[derive(Debug)]
pub struct DurableEngine {
    engine: EveEngine,
    log: GroupCommitLog,
    dir: PathBuf,
    /// Write a snapshot automatically after every `k` batches (`None`
    /// disables automatic checkpoints; explicit ones always work).
    pub snapshot_every: Option<u64>,
    /// Automatic checkpoints write incremental **delta** snapshots (cost
    /// proportional to state changed since the last anchor, not total
    /// warehouse state), with a periodic full image so recovery chains
    /// stay short. `false` makes every automatic checkpoint a full image.
    /// Explicit [`DurableEngine::checkpoint`] is always full.
    pub delta_checkpoints: bool,
    batches_since_snapshot: u64,
    /// Seq and materialized state of the newest snapshot written or
    /// recovered through this handle — the base the next delta diffs
    /// against.
    last_snapshot: Option<(u64, EngineSnapshot)>,
    deltas_since_full: u64,
    /// Set when a failed mutation could not be re-anchored with a
    /// snapshot: the store is behind the live engine. While poisoned,
    /// every durable mutation fails closed (the engine is not touched);
    /// a successful [`DurableEngine::checkpoint`] clears it.
    poisoned: Option<String>,
}

/// Every `N`th automatic delta checkpoint is promoted to a full image,
/// bounding the recovery chain length (the store also enforces a hard
/// depth cap when resolving chains).
const FULL_SNAPSHOT_EVERY: u64 = 8;

impl DurableEngine {
    /// Creates a fresh store at `dir` around a new, empty engine.
    ///
    /// # Errors
    ///
    /// Store I/O failures, or `dir` already holding a store.
    pub fn create(dir: impl Into<PathBuf>) -> Result<DurableEngine> {
        DurableEngine::create_with(dir, EveEngine::new())
    }

    /// Creates a fresh store at `dir`, bootstrapping it with `engine`'s
    /// current state as the sequence-0 snapshot (so pre-existing sites,
    /// relations and views are durable from the start).
    ///
    /// # Errors
    ///
    /// Store I/O failures, or `dir` already holding a store.
    pub fn create_with(dir: impl Into<PathBuf>, engine: EveEngine) -> Result<DurableEngine> {
        let dir = dir.into();
        let mut store = EvolutionStore::create(&dir)?;
        let snapshot = engine.snapshot_state();
        let seq = store.write_snapshot(&snapshot)?;
        Ok(DurableEngine {
            engine,
            log: GroupCommitLog::new(store, GroupCommitPolicy::default()),
            dir,
            snapshot_every: None,
            delta_checkpoints: true,
            batches_since_snapshot: 0,
            last_snapshot: Some((seq, snapshot)),
            deltas_since_full: 0,
            poisoned: None,
        })
    }

    /// Opens an existing store at `dir`, recovering the engine from the
    /// newest intact snapshot plus log-tail replay (truncating a torn tail
    /// record, if the process died mid-write).
    ///
    /// # Errors
    ///
    /// Store I/O/corruption failures, or replay failures (which indicate a
    /// log produced under a different engine version).
    pub fn open(dir: impl Into<PathBuf>) -> Result<(DurableEngine, RecoveryReport)> {
        let dir = dir.into();
        let (store, recovered) = EvolutionStore::open(&dir)?;
        let RecoveredLog {
            snapshot,
            tail,
            torn_bytes,
            snapshots_skipped,
            ..
        } = recovered;
        let (snapshot_seq, snapshot_generation, last_snapshot, mut engine) = match snapshot {
            Some((seq, snap)) => {
                let generation = snap.generation();
                let engine = EveEngine::from_snapshot_state(&snap)?;
                (Some(seq), Some(generation), Some((seq, snap)), engine)
            }
            None => (None, None, None, EveEngine::new()),
        };
        let replayed_records = tail.len() as u64;
        for sealed in tail {
            apply_record(&mut engine, sealed.record)?;
        }
        let report = RecoveryReport {
            snapshot_seq,
            snapshot_generation,
            replayed_records,
            torn_bytes_truncated: torn_bytes,
            snapshots_skipped,
            generation: engine.mkb().generation(),
        };
        Ok((
            DurableEngine {
                engine,
                log: GroupCommitLog::new(store, GroupCommitPolicy::default()),
                dir,
                snapshot_every: None,
                delta_checkpoints: true,
                batches_since_snapshot: 0,
                last_snapshot,
                deltas_since_full: 0,
                poisoned: None,
            },
            report,
        ))
    }

    /// Opens the store read-only as of MKB generation `generation`: the
    /// newest snapshot at or before it plus every record whose
    /// post-generation does not exceed it — i.e. the state just before the
    /// first operation that moved the MKB past `generation`.
    ///
    /// Uses the store's read-only travel planner, so it works while a
    /// *live* [`DurableEngine`] still holds the directory's single-opener
    /// lock — historical reads never contend with the writer.
    ///
    /// # Errors
    ///
    /// Store failures, `generation` preceding the retained (compacted)
    /// horizon, or replay failures.
    pub fn open_at(dir: impl AsRef<Path>, generation: u64) -> Result<EveEngine> {
        let (snapshot, records) = EvolutionStore::plan_travel_in(dir.as_ref(), generation)?;
        let mut engine = EveEngine::from_snapshot_state(&snapshot)?;
        for sealed in records {
            apply_record(&mut engine, sealed.record)?;
        }
        Ok(engine)
    }

    /// The wrapped engine (read access).
    #[must_use]
    pub fn engine(&self) -> &EveEngine {
        &self.engine
    }

    /// Mutable engine access. Mutations made here bypass the log — use the
    /// durable wrappers for anything recovery must reproduce, or follow up
    /// with [`DurableEngine::checkpoint`].
    pub fn engine_mut(&mut self) -> &mut EveEngine {
        &mut self.engine
    }

    /// The store's accumulated I/O counters.
    #[must_use]
    pub fn store_stats(&self) -> StoreStats {
        self.log.with_store(|s| s.stats())
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number of the next log record.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.log.with_store(|s| s.next_seq())
    }

    /// Intact snapshots (full and delta), in sequence order.
    ///
    /// # Errors
    ///
    /// Store I/O failures.
    pub fn snapshot_index(&self) -> Result<Vec<SnapshotMeta>> {
        Ok(self.log.with_store(|s| s.snapshot_index())?)
    }

    /// Number of log segment files on disk.
    ///
    /// # Errors
    ///
    /// Store I/O failures.
    pub fn segment_count(&self) -> Result<usize> {
        Ok(self.log.with_store(|s| s.segment_count())?)
    }

    /// Resets resource accounting: the engine's counters (sites, caches,
    /// index — see [`EveEngine::reset_io`]) *and* the store's I/O counters.
    pub fn reset_io(&mut self) {
        self.engine.reset_io();
        self.log.with_store(|s| s.reset_stats());
    }

    /// Writes a **full** snapshot of the current engine state and rotates
    /// the log segment. History stays on disk for time travel until
    /// [`DurableEngine::compact`].
    ///
    /// # Errors
    ///
    /// Store I/O failures.
    pub fn checkpoint(&mut self) -> Result<u64> {
        self.batches_since_snapshot = 0;
        self.deltas_since_full = 0;
        let snapshot = self.engine.snapshot_state();
        let seq = self.log.with_store(|s| s.write_snapshot(&snapshot))?;
        self.last_snapshot = Some((seq, snapshot));
        // A full snapshot re-anchors durability on the live state: any
        // earlier double failure is healed, so the host is live again.
        self.poisoned = None;
        Ok(seq)
    }

    /// Writes an **incremental** delta checkpoint: the state difference
    /// against the last snapshot written or recovered through this handle.
    /// I/O cost is proportional to the state *changed* since that anchor
    /// — unchanged relations are recognized in O(1) via shared extent
    /// storage — so periodic checkpointing stops scaling with total
    /// warehouse state. Falls back to a full snapshot when there is no
    /// base to diff against or every [`FULL_SNAPSHOT_EVERY`]th call, which
    /// bounds the chain recovery must resolve.
    ///
    /// # Errors
    ///
    /// Store I/O failures.
    pub fn checkpoint_delta(&mut self) -> Result<u64> {
        let Some(base_seq) = self.last_snapshot.as_ref().map(|(seq, _)| *seq) else {
            return self.checkpoint();
        };
        if self.deltas_since_full + 1 >= FULL_SNAPSHOT_EVERY {
            return self.checkpoint();
        }
        if self.log.with_store(|s| s.next_seq()) == base_seq {
            // Nothing logged since the anchor: a delta here could only be
            // empty — and would shadow its own base at the same seq.
            self.batches_since_snapshot = 0;
            return Ok(base_seq);
        }
        let current = self.engine.snapshot_state();
        let base = &self.last_snapshot.as_ref().expect("checked above").1;
        let delta = DeltaSnapshot::between(base_seq, base, &current);
        let seq = self.log.with_store(|s| s.write_delta_snapshot(&delta))?;
        self.batches_since_snapshot = 0;
        self.deltas_since_full += 1;
        self.last_snapshot = Some((seq, current));
        Ok(seq)
    }

    /// Drops history before the newest snapshot, bounding disk use and
    /// recovery replay at the price of the time-travel horizon. Returns
    /// `(segments_deleted, snapshots_deleted)`.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn compact(&mut self) -> Result<(usize, usize)> {
        Ok(self.log.with_store(|s| s.compact())?)
    }

    /// Whether the host is poisoned: a failed mutation could not be
    /// re-anchored with a snapshot, so the on-disk store is behind the
    /// live engine. While poisoned every durable mutation fails closed;
    /// a successful [`DurableEngine::checkpoint`] heals the host.
    #[must_use]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// The double-failure message that poisoned the host, if any.
    #[must_use]
    pub fn poison_detail(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Records the double failure and returns the typed error surfaced to
    /// the caller (and to every durable mutation attempted afterwards).
    fn poison(&mut self, detail: String) -> Error {
        self.poisoned = Some(detail.clone());
        Error::Poisoned { detail }
    }

    /// Fails closed when the host is poisoned — called before the engine
    /// is touched, so a half-anchored store never drifts further from its
    /// log while the operator decides how to recover.
    fn ensure_live(&self) -> Result<()> {
        match &self.poisoned {
            Some(detail) => Err(Error::Poisoned {
                detail: detail.clone(),
            }),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Durable mutation wrappers (engine first, then the fsync'd record)
    // ------------------------------------------------------------------

    /// Appends the record for a mutation the engine has already applied:
    /// enqueue on the group-commit writer, then block on the commit ticket
    /// until the record's batch is fsync'd. If the commit fails, the live
    /// engine is ahead of the log; a snapshot re-anchors durability on the
    /// actual state (the same remedy as a failed batch) before the error
    /// is surfaced — without it, later successful appends would replay on
    /// top of a log missing this record and recovery would silently
    /// diverge.
    fn log(&mut self, record: LogRecord) -> Result<()> {
        match self
            .log
            .append_durable(self.engine.mkb().generation(), record)
        {
            Ok(_) => Ok(()),
            Err(append_err) => match self.checkpoint() {
                Ok(_) => Err(append_err.into()),
                Err(anchor_err) => Err(self.poison(format!(
                    "log append failed ({append_err}) and the re-anchoring snapshot \
                     also failed ({anchor_err}): the store is behind the live engine"
                ))),
            },
        }
    }

    /// Durable [`EveEngine::add_site`].
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn add_site(&mut self, id: SiteId, name: impl Into<String>) -> Result<()> {
        self.ensure_live()?;
        let name = name.into();
        self.engine.add_site(id, name.clone())?;
        self.log(LogRecord::AddSite { id: id.0, name })
    }

    /// Durable [`EveEngine::register_relation`].
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn register_relation(&mut self, info: RelationInfo, extent: Relation) -> Result<()> {
        self.ensure_live()?;
        self.engine
            .register_relation(info.clone(), extent.clone())?;
        self.log(LogRecord::RegisterRelation { info, extent })
    }

    /// Durable base-data seeding (no view maintenance — initial loading).
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn seed_tuples(&mut self, relation: &str, tuples: Vec<Tuple>) -> Result<()> {
        self.ensure_live()?;
        let info = self.engine.mkb().relation(relation)?;
        let site_id = info.site.0;
        self.engine
            .sites_mut()
            .get_mut(&site_id)
            .ok_or_else(|| Error::State {
                detail: format!("unknown site {site_id}"),
            })?
            .apply_update(relation, &tuples, &[])?;
        self.log(LogRecord::SeedTuples {
            relation: relation.to_owned(),
            tuples,
        })
    }

    /// Durable [`Mkb::add_pc_constraint`].
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn add_pc_constraint(&mut self, pc: PcConstraint) -> Result<()> {
        self.ensure_live()?;
        self.engine
            .mkb_mut()
            .add_pc_constraint(pc.clone())
            .map_err(Error::from)?;
        self.log(LogRecord::AddPcConstraint(pc))
    }

    /// Durable [`Mkb::add_join_constraint`].
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn add_join_constraint(&mut self, jc: JoinConstraint) -> Result<()> {
        self.ensure_live()?;
        self.engine
            .mkb_mut()
            .add_join_constraint(jc.clone())
            .map_err(Error::from)?;
        self.log(LogRecord::AddJoinConstraint(jc))
    }

    /// Durable [`Mkb::set_join_selectivity`].
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn set_join_selectivity(&mut self, a: &str, b: &str, js: f64) -> Result<()> {
        self.ensure_live()?;
        self.engine.mkb_mut().set_join_selectivity(a, b, js);
        self.log(LogRecord::SetJoinSelectivity {
            left: a.to_owned(),
            right: b.to_owned(),
            js,
        })
    }

    /// Durable [`Mkb::set_default_join_selectivity`].
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn set_default_join_selectivity(&mut self, js: f64) -> Result<()> {
        self.ensure_live()?;
        self.engine.mkb_mut().set_default_join_selectivity(js);
        self.log(LogRecord::SetDefaultJoinSelectivity { js })
    }

    /// Durable [`EveEngine::declare_index`]. Only *new* declarations are
    /// logged — re-declaring an existing hint re-warms the index without
    /// touching the log.
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn declare_index(&mut self, relation: &str, column: &str, kind: IndexKind) -> Result<bool> {
        self.ensure_live()?;
        let added = self.engine.declare_index(relation, column, kind)?;
        if added {
            let hint = self
                .engine
                .index_hints()
                .last()
                .expect("declare_index just pushed a hint");
            self.log(LogRecord::DeclareIndex(hint_to_state(hint)))?;
        }
        Ok(added)
    }

    /// Durable [`EveEngine::define_view_sql`].
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn define_view_sql(&mut self, sql: &str) -> Result<&MaterializedView> {
        self.ensure_live()?;
        let def = self.engine.define_view_sql(sql)?.def.clone();
        let name = def.name.clone();
        self.log(LogRecord::DefineView(def))?;
        self.engine.view(&name)
    }

    /// Durable [`EveEngine::drop_view`].
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn drop_view(&mut self, name: &str) -> Result<MaterializedView> {
        self.ensure_live()?;
        let dropped = self.engine.drop_view(name)?;
        self.log(LogRecord::DropView {
            name: name.to_owned(),
        })?;
        Ok(dropped)
    }

    /// Durable [`EveEngine::apply_batch`] — the log unit of the evolution
    /// stream. On success the whole batch is one fsync'd record; if the
    /// engine rejects the batch partway (independent partitions may already
    /// have applied), an immediate snapshot re-anchors durability on the
    /// actual state instead of logging a record that only partially
    /// applied.
    ///
    /// # Errors
    ///
    /// Engine failures (after the re-anchoring snapshot) or store
    /// failures.
    pub fn apply_batch(&mut self, ops: Vec<EvolutionOp>) -> Result<BatchOutcome> {
        self.ensure_live()?;
        match self.engine.apply_batch(ops.clone()) {
            Ok(outcome) => {
                self.log(LogRecord::Batch(ops))?;
                self.batches_since_snapshot += 1;
                if let Some(k) = self.snapshot_every {
                    if self.batches_since_snapshot >= k.max(1) {
                        if self.delta_checkpoints {
                            self.checkpoint_delta()?;
                        } else {
                            self.checkpoint()?;
                        }
                    }
                }
                Ok(outcome)
            }
            Err(e) => {
                // The batch failed mid-flight; the engine is whole but not
                // necessarily the pre-batch state. Snapshot it so recovery
                // lands exactly here. If even that fails, say so loudly —
                // the store is now behind the live engine.
                match self.checkpoint() {
                    Ok(_) => Err(e),
                    Err(anchor_err) => Err(self.poison(format!(
                        "batch failed ({e}) and the re-anchoring snapshot also \
                         failed ({anchor_err}): the store is behind the live engine"
                    ))),
                }
            }
        }
    }

    /// Durable [`EveEngine::notify_data_update`] (single-op batch).
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn notify_data_update(
        &mut self,
        update: &DataUpdate,
    ) -> Result<BTreeMap<String, MaintenanceTrace>> {
        Ok(self
            .apply_batch(vec![EvolutionOp::from(update.clone())])?
            .traces)
    }

    /// Durable [`EveEngine::notify_capability_change`] (single-op batch).
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn notify_capability_change(
        &mut self,
        change: &SchemaChange,
        new_extent: Option<Relation>,
    ) -> Result<Vec<EvolutionReport>> {
        Ok(self
            .apply_batch(vec![EvolutionOp::Capability {
                change: change.clone(),
                new_extent,
            }])?
            .reports)
    }

    /// Durable [`EveEngine::rebalance_views`]: migrations mutate installed
    /// rewritings, so the pass is followed by a checkpoint when anything
    /// moved.
    ///
    /// # Errors
    ///
    /// Engine or store failures.
    pub fn rebalance_views(&mut self) -> Result<Vec<crate::engine::MigrationReport>> {
        self.ensure_live()?;
        let reports = self.engine.rebalance_views()?;
        if reports.iter().any(|r| r.migrated) {
            self.checkpoint()?;
        }
        Ok(reports)
    }
}

/// Replays one log record through the live engine pipeline.
fn apply_record(engine: &mut EveEngine, record: LogRecord) -> Result<()> {
    match record {
        LogRecord::AddSite { id, name } => engine.add_site(SiteId(id), name),
        LogRecord::RegisterRelation { info, extent } => engine.register_relation(info, extent),
        LogRecord::SeedTuples { relation, tuples } => {
            let info = engine.mkb().relation(&relation)?;
            let site_id = info.site.0;
            engine
                .sites_mut()
                .get_mut(&site_id)
                .ok_or_else(|| Error::State {
                    detail: format!("unknown site {site_id}"),
                })?
                .apply_update(&relation, &tuples, &[])
        }
        LogRecord::AddPcConstraint(pc) => {
            engine.mkb_mut().add_pc_constraint(pc).map_err(Error::from)
        }
        LogRecord::AddJoinConstraint(jc) => engine
            .mkb_mut()
            .add_join_constraint(jc)
            .map_err(Error::from),
        LogRecord::SetJoinSelectivity { left, right, js } => {
            engine.mkb_mut().set_join_selectivity(&left, &right, js);
            Ok(())
        }
        LogRecord::SetDefaultJoinSelectivity { js } => {
            engine.mkb_mut().set_default_join_selectivity(js);
            Ok(())
        }
        LogRecord::DefineView(def) => engine.define_view(def).map(|_| ()),
        LogRecord::DropView { name } => engine.drop_view(&name).map(|_| ()),
        LogRecord::Batch(ops) => engine.apply_batch(ops).map(|_| ()),
        LogRecord::DeclareIndex(hint) => {
            let hint = hint_from_state(&hint);
            engine
                .declare_index(&hint.relation, &hint.column, hint.kind)
                .map(|_| ())
        }
    }
}

// ---------------------------------------------------------------------
// Engine <-> snapshot conversion
// ---------------------------------------------------------------------

impl From<SearchMode> for SearchModeState {
    fn from(mode: SearchMode) -> SearchModeState {
        match mode {
            SearchMode::Exhaustive => SearchModeState::Exhaustive,
            SearchMode::BestFirst => SearchModeState::BestFirst,
            SearchMode::Beam { width } => SearchModeState::Beam { width },
        }
    }
}

impl From<SearchModeState> for SearchMode {
    fn from(mode: SearchModeState) -> SearchMode {
        match mode {
            SearchModeState::Exhaustive => SearchMode::Exhaustive,
            SearchModeState::BestFirst => SearchMode::BestFirst,
            SearchModeState::Beam { width } => SearchMode::Beam { width },
        }
    }
}

impl EveEngine {
    /// Captures the engine's complete durable state — MKB (with its
    /// generation), per-site extents and accounting, installed rewritings
    /// and configuration — as a canonical [`EngineSnapshot`]. Equal engine
    /// states produce byte-equal [`EngineSnapshot::to_bytes`] encodings,
    /// which is the comparison the crash-recovery test suites run on.
    ///
    /// Ephemeral memoization (rewrite cache, partner closures, index
    /// hit/miss counters) is deliberately excluded: it is reconstructible
    /// and does not affect any observable outcome.
    #[must_use]
    pub fn snapshot_state(&self) -> EngineSnapshot {
        EngineSnapshot {
            mkb: self.mkb.export_state(),
            sites: self
                .sites
                .values()
                .map(|site| SiteSnapshot {
                    id: site.id.0,
                    name: site.name.clone(),
                    relations: site
                        .hosted_with_blocking_factors()
                        .map(|(rel, bfr)| (rel.clone(), bfr))
                        .collect(),
                    io_count: site.io_count(),
                    message_count: site.message_count(),
                })
                .collect(),
            views: self
                .views
                .values()
                .map(|mv| ViewSnapshot {
                    def: mv.def.clone(),
                    extent: mv.extent.clone(),
                })
                .collect(),
            config: EngineConfig {
                sync_options: self.sync_options.clone(),
                qc_params: self.qc_params.clone(),
                workload: self.workload,
                strategy: self.strategy,
                search: self.search.into(),
                index_hints: self.index_hints.iter().map(hint_to_state).collect(),
            },
        }
    }

    /// Rebuilds an engine from a snapshot, re-validating the MKB and site
    /// extents. The restored engine starts with cold caches but identical
    /// durable state (including the MKB generation and site accounting).
    ///
    /// # Errors
    ///
    /// Validation failures on corrupted snapshots.
    pub fn from_snapshot_state(snapshot: &EngineSnapshot) -> Result<EveEngine> {
        let mkb = Mkb::from_state(&snapshot.mkb)?;
        let mut sites = BTreeMap::new();
        for s in &snapshot.sites {
            let site = SimSite::from_parts(
                SiteId(s.id),
                s.name.clone(),
                s.relations.clone(),
                s.io_count,
                s.message_count,
            )?;
            sites.insert(s.id, site);
        }
        let mut views = BTreeMap::new();
        for v in &snapshot.views {
            views.insert(
                v.def.name.clone(),
                MaterializedView {
                    def: v.def.clone(),
                    extent: v.extent.clone(),
                },
            );
        }
        let engine = EveEngine {
            mkb,
            sites,
            views,
            index_hints: snapshot
                .config
                .index_hints
                .iter()
                .map(hint_from_state)
                .collect(),
            rewrite_cache: eve_sync::RewriteCache::new(),
            sync_options: snapshot.config.sync_options.clone(),
            qc_params: snapshot.config.qc_params.clone(),
            workload: snapshot.config.workload,
            strategy: snapshot.config.strategy,
            search: snapshot.config.search.into(),
            // Runtime tuning knob, deliberately not part of snapshots:
            // recovery always starts serial and byte-identical.
            exec_options: eve_relational::ExecOptions::default(),
        };
        // Index contents are reconstructible and deliberately not part of
        // the snapshot; re-warm the declared ones on the restored extents.
        engine.warm_declared_indexes();
        Ok(engine)
    }
}

/// `IndexHint` → its plain-data snapshot form.
fn hint_to_state(hint: &crate::engine::IndexHint) -> eve_store::IndexHintState {
    eve_store::IndexHintState {
        relation: hint.relation.clone(),
        column: hint.column.clone(),
        kind: match hint.kind {
            IndexKind::Hash => eve_store::IndexKindState::Hash,
            IndexKind::Sorted => eve_store::IndexKindState::Sorted,
        },
    }
}

/// Snapshot form → `IndexHint`.
fn hint_from_state(state: &eve_store::IndexHintState) -> crate::engine::IndexHint {
    crate::engine::IndexHint {
        relation: state.relation.clone(),
        column: state.column.clone(),
        kind: match state.kind {
            eve_store::IndexKindState::Hash => IndexKind::Hash,
            eve_store::IndexKindState::Sorted => IndexKind::Sorted,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, PcRelationship, PcSide};
    use eve_relational::{tup, DataType, Schema};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eve-durable-tests-{}-{}-{name}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn attrs() -> Vec<AttributeInfo> {
        vec![
            AttributeInfo::new("K", DataType::Int),
            AttributeInfo::new("P", DataType::Int),
        ]
    }

    fn schema() -> Schema {
        Schema::of(&[("K", DataType::Int), ("P", DataType::Int)]).unwrap()
    }

    /// Builds a small durable warehouse entirely through logged calls.
    fn build(dir: &Path) -> DurableEngine {
        let mut d = DurableEngine::create(dir).unwrap();
        d.add_site(SiteId(1), "one").unwrap();
        d.add_site(SiteId(2), "two").unwrap();
        for (name, site) in [("Ra", 1u32), ("Rb", 1), ("Rc", 2)] {
            d.register_relation(
                RelationInfo::new(name, SiteId(site), attrs(), 10),
                Relation::empty(name, schema()),
            )
            .unwrap();
            d.seed_tuples(name, (0..10i64).map(|k| tup![k, k % 3]).collect())
                .unwrap();
        }
        d.add_pc_constraint(PcConstraint::new(
            PcSide::projection("Rb", &["K", "P"]),
            PcRelationship::Equivalent,
            PcSide::projection("Rc", &["K", "P"]),
        ))
        .unwrap();
        d.set_join_selectivity("Ra", "Rb", 0.01).unwrap();
        d.define_view_sql(
            "CREATE VIEW V (VE = '~') AS SELECT A.K, B.P AS BP \
             FROM Ra A, Rb B (RR = true) WHERE A.K = B.K",
        )
        .unwrap();
        d
    }

    fn fingerprint(engine: &EveEngine) -> Vec<u8> {
        engine.snapshot_state().to_bytes()
    }

    #[test]
    fn snapshot_state_roundtrips_byte_identically() {
        let dir = temp_dir("roundtrip");
        let d = build(&dir);
        let snap = d.engine().snapshot_state();
        let rebuilt = EveEngine::from_snapshot_state(&snap).unwrap();
        assert_eq!(fingerprint(&rebuilt), snap.to_bytes());
        // And the rebuilt engine answers queries identically.
        let v1 = d.engine().view("V").unwrap();
        let v2 = rebuilt.view("V").unwrap();
        assert_eq!(v1.extent.tuples(), v2.extent.tuples());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_byte_identical_state() {
        let dir = temp_dir("reopen");
        let mut d = build(&dir);
        d.apply_batch(vec![
            EvolutionOp::insert("Ra", vec![tup![100, 0]]),
            EvolutionOp::insert("Rb", vec![tup![100, 2]]),
        ])
        .unwrap();
        d.notify_capability_change(
            &SchemaChange::DeleteRelation {
                relation: "Rb".into(),
            },
            None,
        )
        .unwrap();
        let expected = fingerprint(d.engine());
        drop(d); // crash: no shutdown handshake

        let (recovered, report) = DurableEngine::open(&dir).unwrap();
        assert_eq!(fingerprint(recovered.engine()), expected);
        assert!(report.replayed_records > 0);
        assert_eq!(report.torn_bytes_truncated, 0);
        assert_eq!(report.generation, recovered.engine().mkb().generation());
        // The view survived the capability change via the Rc mirror and is
        // intact after recovery.
        let v = recovered.engine().view("V").unwrap();
        assert!(v.def.from.iter().any(|f| f.relation == "Rc"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_bounds_replay_and_preserves_state() {
        let dir = temp_dir("checkpoint");
        let mut d = build(&dir);
        d.apply_batch(vec![EvolutionOp::insert("Ra", vec![tup![50, 1]])])
            .unwrap();
        d.checkpoint().unwrap();
        d.apply_batch(vec![EvolutionOp::insert("Ra", vec![tup![51, 1]])])
            .unwrap();
        let expected = fingerprint(d.engine());
        drop(d);
        let (recovered, report) = DurableEngine::open(&dir).unwrap();
        assert_eq!(report.replayed_records, 1, "only the post-snapshot batch");
        assert!(report.snapshot_seq.is_some());
        assert_eq!(fingerprint(recovered.engine()), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn automatic_snapshots_every_k_batches() {
        let dir = temp_dir("auto");
        let mut d = build(&dir);
        d.snapshot_every = Some(2);
        let snaps_before = d.snapshot_index().unwrap().len();
        for k in 0..4 {
            d.apply_batch(vec![EvolutionOp::insert("Ra", vec![tup![200 + k, 0]])])
                .unwrap();
        }
        let snaps_after = d.snapshot_index().unwrap().len();
        assert_eq!(snaps_after - snaps_before, 2, "4 batches / every 2");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_record_is_dropped_cleanly() {
        let dir = temp_dir("torn");
        let mut d = build(&dir);
        d.apply_batch(vec![EvolutionOp::insert("Ra", vec![tup![70, 0]])])
            .unwrap();
        let before_last = fingerprint(d.engine());
        d.apply_batch(vec![EvolutionOp::insert("Ra", vec![tup![71, 0]])])
            .unwrap();
        drop(d);

        // Tear the final record mid-frame.
        let mut segs: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "evl"))
            .collect();
        segs.sort();
        let active = segs.last().unwrap();
        let len = std::fs::metadata(active).unwrap().len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(active)
            .unwrap();
        f.set_len(len - 7).unwrap();
        f.sync_all().unwrap();
        drop(f);

        let (recovered, report) = DurableEngine::open(&dir).unwrap();
        assert!(report.torn_bytes_truncated > 0);
        assert_eq!(
            fingerprint(recovered.engine()),
            before_last,
            "state rolls back to the last intact record"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_at_travels_to_past_generations() {
        let dir = temp_dir("travel");
        let mut d = build(&dir);
        let g0 = d.engine().mkb().generation();
        let fp0 = fingerprint(d.engine());
        // A data batch does not move the MKB generation…
        d.apply_batch(vec![EvolutionOp::insert("Ra", vec![tup![42, 2]])])
            .unwrap();
        assert_eq!(d.engine().mkb().generation(), g0);
        let fp_data = fingerprint(d.engine());
        // …a capability change does.
        d.notify_capability_change(
            &SchemaChange::DeleteRelation {
                relation: "Rb".into(),
            },
            None,
        )
        .unwrap();
        let g1 = d.engine().mkb().generation();
        let fp1 = fingerprint(d.engine());
        assert!(g1 > g0);
        drop(d);

        // Travelling to g0 includes the data batch (same generation) but
        // not the capability change.
        let at_g0 = DurableEngine::open_at(&dir, g0).unwrap();
        assert_eq!(fingerprint(&at_g0), fp_data);
        assert_ne!(fp0, fp_data, "the data batch changed site extents");
        // The historical engine still answers queries: Rb exists there.
        assert!(at_g0.mkb().has_relation("Rb"));
        assert!(at_g0
            .view("V")
            .unwrap()
            .def
            .from
            .iter()
            .any(|f| f.relation == "Rb"));

        // Travelling to the latest generation reproduces the final state.
        let at_g1 = DurableEngine::open_at(&dir, g1).unwrap();
        assert_eq!(fingerprint(&at_g1), fp1);

        // Travelling to generation 0 lands on the bootstrap snapshot: the
        // empty engine `create` anchored the store with.
        let at_zero = DurableEngine::open_at(&dir, 0).unwrap();
        assert!(!at_zero.mkb().has_relation("Ra"), "pre-registration state");
        assert!(at_zero.view("V").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_trades_travel_horizon_for_space() {
        let dir = temp_dir("compact");
        let mut d = build(&dir);
        let g0 = d.engine().mkb().generation();
        d.notify_capability_change(
            &SchemaChange::DeleteRelation {
                relation: "Rb".into(),
            },
            None,
        )
        .unwrap();
        d.checkpoint().unwrap();
        let (segs, snaps) = d.compact().unwrap();
        assert!(segs >= 1 && snaps >= 1);
        let latest = fingerprint(d.engine());
        drop(d);
        // Recovery still lands on the exact latest state…
        let (recovered, _) = DurableEngine::open(&dir).unwrap();
        assert_eq!(fingerprint(recovered.engine()), latest);
        drop(recovered);
        // …but travel before the compaction anchor now fails loudly.
        let err = DurableEngine::open_at(&dir, g0).unwrap_err();
        assert!(err.to_string().contains("horizon"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_view_and_selectivities_replay() {
        let dir = temp_dir("dropview");
        let mut d = build(&dir);
        d.set_default_join_selectivity(0.02).unwrap();
        d.drop_view("V").unwrap();
        let expected = fingerprint(d.engine());
        drop(d);
        let (recovered, _) = DurableEngine::open(&dir).unwrap();
        assert_eq!(fingerprint(recovered.engine()), expected);
        assert!(recovered.engine().view("V").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_checkpoints_recover_byte_identically() {
        let dir = temp_dir("delta");
        let mut d = build(&dir);
        d.snapshot_every = Some(1); // a delta checkpoint after every batch
        for k in 0..5 {
            d.apply_batch(vec![EvolutionOp::insert("Ra", vec![tup![300 + k, 0]])])
                .unwrap();
        }
        let index = d.snapshot_index().unwrap();
        assert!(
            index
                .iter()
                .any(|m| m.kind == eve_store::SnapshotKind::Delta),
            "automatic checkpoints wrote deltas: {index:?}"
        );
        let expected = fingerprint(d.engine());
        drop(d);
        let (recovered, report) = DurableEngine::open(&dir).unwrap();
        assert_eq!(fingerprint(recovered.engine()), expected);
        // Recovery anchored on the newest (delta) snapshot, so the chain
        // resolution — not tail replay — reproduced the state.
        assert_eq!(report.replayed_records, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_at_works_while_a_live_handle_holds_the_lock() {
        let dir = temp_dir("live-travel");
        let mut d = build(&dir);
        let g0 = d.engine().mkb().generation();
        d.notify_capability_change(
            &SchemaChange::DeleteRelation {
                relation: "Rb".into(),
            },
            None,
        )
        .unwrap();
        // Historical reads go through the read-only travel planner and
        // succeed while the live handle holds the single-opener lock…
        let past = DurableEngine::open_at(&dir, g0).unwrap();
        assert!(past.mkb().has_relation("Rb"));
        // …whereas a second full open is refused outright.
        let err = DurableEngine::open(&dir).unwrap_err();
        assert!(err.to_string().contains("already open"), "{err}");
        drop(d);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_batch_reanchors_with_a_snapshot() {
        let dir = temp_dir("failbatch");
        let mut d = build(&dir);
        let snaps_before = d.snapshot_index().unwrap().len();
        let err = d.apply_batch(vec![
            EvolutionOp::insert("Ra", vec![tup![1, 1]]),
            EvolutionOp::insert("Ghost", vec![tup![2, 2]]),
        ]);
        assert!(err.is_err());
        assert_eq!(
            d.snapshot_index().unwrap().len(),
            snaps_before + 1,
            "failure re-anchors durability on the actual state"
        );
        let expected = fingerprint(d.engine());
        drop(d);
        let (recovered, _) = DurableEngine::open(&dir).unwrap();
        assert_eq!(fingerprint(recovered.engine()), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn declared_indexes_survive_log_replay_and_snapshots() {
        let dir = temp_dir("index-hints");
        let mut d = build(&dir);
        assert!(d.declare_index("Ra", "K", IndexKind::Hash).unwrap());
        assert!(
            !d.declare_index("Ra", "K", IndexKind::Hash).unwrap(),
            "duplicate declaration is not re-logged"
        );
        d.declare_index("Rb", "P", IndexKind::Sorted).unwrap();
        let expected = fingerprint(d.engine());
        drop(d);

        // Log replay restores the hints and re-warms the indexes.
        let (recovered, _) = DurableEngine::open(&dir).unwrap();
        assert_eq!(fingerprint(recovered.engine()), expected);
        assert_eq!(recovered.engine().index_hints().len(), 2);
        let ra = recovered.engine().sites[&1].relation("Ra").unwrap();
        assert!(ra.has_index(0, IndexKind::Hash), "replay re-warmed Ra.K");

        // A snapshot carries the hints without the log.
        let mut recovered = recovered;
        recovered.checkpoint().unwrap();
        drop(recovered);
        let (from_snap, report) = DurableEngine::open(&dir).unwrap();
        assert_eq!(report.replayed_records, 0, "state came from the snapshot");
        assert_eq!(fingerprint(from_snap.engine()), expected);
        assert_eq!(from_snap.engine().index_hints().len(), 2);
        let rb = from_snap.engine().sites[&1].relation("Rb").unwrap();
        assert!(rb.has_index(1, IndexKind::Sorted), "restore re-warmed Rb.P");
        std::fs::remove_dir_all(&dir).ok();
    }
}
