//! Property suites for the metrics and span halves of `eve-trace`.
//!
//! Histogram invariants: merge commutes and is associative, quantiles are
//! monotone in `q` and never below the true quantile (they round *up* to
//! a log₂ bucket bound), and a live-recorded snapshot is byte-identical
//! to one rebuilt from the raw sample list. Span invariants: ring-buffer
//! wraparound evicts only *recorded* events — the open-span stack (and
//! therefore every future parent link) survives arbitrarily deep nesting
//! through arbitrarily small rings.

use proptest::prelude::*;

use eve_trace::{Histogram, HistogramSnapshot};

fn rebuild(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

/// True quantile of a sample list (nearest-rank, matching the histogram's
/// ⌈q·n⌉ definition).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn snapshot_equals_rebuild_from_samples(samples in prop::collection::vec(0u64..1_000_000, 0..200)) {
        let live = Histogram::new();
        for &s in &samples {
            live.record(s);
        }
        prop_assert_eq!(live.snapshot(), rebuild(&samples));
        prop_assert_eq!(live.snapshot().count(), samples.len() as u64);
        prop_assert_eq!(live.snapshot().sum, samples.iter().sum::<u64>());
    }

    #[test]
    fn merge_commutes_and_matches_concatenation(
        a in prop::collection::vec(0u64..1_000_000, 0..120),
        b in prop::collection::vec(0u64..1_000_000, 0..120),
    ) {
        let sa = rebuild(&a);
        let sb = rebuild(&b);
        prop_assert_eq!(sa.merged(&sb), sb.merged(&sa), "merge commutes");
        let mut both = a.clone();
        both.extend_from_slice(&b);
        prop_assert_eq!(sa.merged(&sb), rebuild(&both), "merge ≡ concatenated recording");
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_tight(
        samples in prop::collection::vec(0u64..1_000_000, 1..200),
        q_mils in prop::collection::vec(0u32..=1000, 2..6),
    ) {
        let snap = rebuild(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let mut qs: Vec<f64> = q_mils.iter().map(|&m| f64::from(m) / 1000.0).collect();
        qs.sort_by(f64::total_cmp);
        let mut last = 0u64;
        for &q in &qs {
            let approx = snap.quantile(q);
            prop_assert!(approx >= last, "quantile monotone in q");
            last = approx;
            let exact = exact_quantile(&sorted, q);
            prop_assert!(approx >= exact, "reported {approx} below exact {exact}");
            // Tight to one log₂ bucket: the reported value is the upper
            // bound of the exact quantile's bucket.
            prop_assert_eq!(
                eve_trace::metrics::bucket_of(approx),
                eve_trace::metrics::bucket_of(exact),
                "q={} exact={} approx={}", q, exact, approx
            );
        }
    }

    #[test]
    fn merged_quantile_never_below_either_arms_min(
        a in prop::collection::vec(0u64..100_000, 1..80),
        b in prop::collection::vec(0u64..100_000, 1..80),
    ) {
        let merged = rebuild(&a).merged(&rebuild(&b));
        let min = *a.iter().chain(b.iter()).min().expect("non-empty");
        let max = *a.iter().chain(b.iter()).max().expect("non-empty");
        prop_assert!(merged.quantile(0.0) >= min);
        // p100 rounds up to a bucket bound but stays within max's bucket.
        prop_assert_eq!(
            eve_trace::metrics::bucket_of(merged.quantile(1.0)),
            eve_trace::metrics::bucket_of(max)
        );
    }
}

mod span_ring {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The span collector is process-global; serialize the tests that
    /// reconfigure it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn wraparound_never_loses_the_open_span_stack(
            depth in 1usize..24,
            capacity in 1usize..8,
            noise in 1usize..40,
        ) {
            let _guard = lock();
            eve_trace::set_capacity(capacity);
            eve_trace::set_enabled(true);

            // Open `depth` nested spans, then spam instants well past the
            // ring capacity so early events are evicted while the spans
            // are still open.
            let mut open = Vec::with_capacity(depth);
            for _ in 0..depth {
                open.push(eve_trace::span("props.nest"));
            }
            for _ in 0..noise {
                eve_trace::instant("props.noise");
            }
            let ids: Vec<u64> = open.iter().map(eve_trace::SpanGuard::id).collect();

            // Close innermost-first; every recorded close must carry the
            // parent captured at open time — the id one level up.
            while let Some(guard) = open.pop() {
                drop(guard);
            }
            eve_trace::set_enabled(false);
            let events = eve_trace::snapshot_events();
            for (level, &id) in ids.iter().enumerate() {
                let expected_parent = if level == 0 { 0 } else { ids[level - 1] };
                if let Some(ev) = events.iter().find(|e| e.id == id) {
                    prop_assert_eq!(ev.parent, expected_parent,
                        "span at nesting level {} lost its parent link", level);
                }
                // Evicted events are allowed (tiny ring); lost *links* are
                // not — which the surviving deepest spans demonstrate.
            }
            // The deepest span closed first, so it is recorded unless the
            // closing sequence itself overflowed the ring.
            let deepest = *ids.last().expect("depth >= 1");
            if depth <= capacity {
                prop_assert!(events.iter().any(|e| e.id == deepest));
            }
            eve_trace::set_capacity(eve_trace::span::DEFAULT_CAPACITY);
        }
    }
}
