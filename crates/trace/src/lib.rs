//! `eve-trace` — the warehouse's unified observability layer.
//!
//! Two halves, both zero-dependency and std-only:
//!
//! * [`metrics`] — a named registry of atomic [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket log₂ latency [`Histogram`]s. Snapshots are deterministic
//!   (name-ordered), mergeable across registries, and render either as
//!   human-readable text or Prometheus exposition format. Every subsystem
//!   (store, executor, rewrite search, server) publishes into the
//!   process-wide [`global`] registry; per-engine and per-server counters
//!   live in instance registries and merge into one surface at query time.
//! * [`span`] — a lightweight structured tracing collector: RAII span
//!   guards with ids, parent links and monotonic microsecond timestamps,
//!   recorded into a bounded ring buffer and dumpable as
//!   `chrome://tracing` JSON. Tracing is off by default; the disabled
//!   path is a single relaxed atomic load per instrumentation site.
//!
//! The split mirrors how the two are consumed: metrics are *always on*
//! (cheap monotone counters the shell `stats`/`metrics` commands and the
//! server's `Metrics` request read at any time), spans are *opt-in*
//! (enabled around a workload to capture its execution structure).

pub mod metrics;
pub mod span;

pub use metrics::{
    bucket_of, global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
    HISTOGRAM_BUCKETS,
};
pub use span::{
    chrome_json, clear as clear_spans, instant, set_capacity, set_enabled, snapshot_events, span,
    spans_enabled, SpanGuard, TraceEvent,
};
