//! The tracing half: RAII spans with parent links, recorded into a
//! bounded ring buffer, dumpable as `chrome://tracing` JSON.
//!
//! # Design
//!
//! * **Off by default.** [`span`] and [`instant`] check one relaxed
//!   atomic load when tracing is disabled and return inert guards — the
//!   instrumentation sites scattered through the executor, store and
//!   server cost effectively nothing until [`set_enabled`]`(true)`.
//! * **Parent links from a thread-local stack.** Each thread keeps its
//!   open-span stack in TLS; a new span's parent is the top of that
//!   stack. The stack lives *outside* the ring buffer, so ring
//!   wraparound (old events evicted under sustained load) can never
//!   corrupt the ancestry of spans still open — a property the
//!   wraparound proptests pin.
//! * **Complete events.** A span records one [`TraceEvent`] when it
//!   closes (start timestamp + duration), matching the `"ph":"X"`
//!   complete-event form of the Chrome trace format; [`instant`] records
//!   zero-duration marks.
//! * **Monotonic microseconds.** Timestamps are microseconds since the
//!   collector's first use (one process-wide [`Instant`] origin), so
//!   events from different threads order consistently.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::global;

/// Default ring capacity: enough for a full bench workload's operator
/// spans without unbounded growth.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One recorded span or instant mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span id (unique per process run, never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread (0 = root).
    pub parent: u64,
    /// Site name (static: instrumentation sites are compiled in).
    pub name: &'static str,
    /// Start timestamp, microseconds since the collector origin.
    pub start_us: u64,
    /// Duration in microseconds (0 for instant marks).
    pub dur_us: u64,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// `true` for zero-duration [`instant`] marks, `false` for spans.
    pub mark: bool,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        })
    })
}

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    u64::try_from(origin().elapsed().as_micros()).unwrap_or(u64::MAX)
}

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Turns span recording on or off. Disabling does not clear recorded
/// events ([`clear`] does).
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[must_use]
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Replaces the ring capacity (and clears the buffer): bench isolation
/// and the wraparound tests.
pub fn set_capacity(capacity: usize) {
    let mut ring = ring().lock().expect("trace ring poisoned");
    ring.capacity = capacity.max(1);
    ring.events.clear();
    ring.dropped = 0;
}

/// Drops every recorded event (open spans stay open — their stacks are
/// thread-local and unaffected).
pub fn clear() {
    let mut ring = ring().lock().expect("trace ring poisoned");
    ring.events.clear();
    ring.dropped = 0;
}

/// The recorded events, oldest first.
#[must_use]
pub fn snapshot_events() -> Vec<TraceEvent> {
    ring()
        .lock()
        .expect("trace ring poisoned")
        .events
        .iter()
        .cloned()
        .collect()
}

/// Events evicted by ring wraparound since the last [`clear`].
#[must_use]
pub fn dropped_events() -> u64 {
    ring().lock().expect("trace ring poisoned").dropped
}

/// Opens a span. Returns an inert guard (one atomic load, no allocation,
/// no lock) when tracing is disabled; otherwise the span records a
/// complete event when the guard drops.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard {
            id: 0,
            parent: 0,
            name,
            start_us: 0,
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    SpanGuard {
        id,
        parent,
        name,
        start_us: now_us(),
    }
}

/// Records a zero-duration mark under the current open span.
pub fn instant(name: &'static str) {
    if !spans_enabled() {
        return;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
    let ev = TraceEvent {
        id,
        parent,
        name,
        start_us: now_us(),
        dur_us: 0,
        thread: THREAD_ID.with(|t| *t),
        mark: true,
    };
    global().counter("trace.events_recorded").inc();
    ring().lock().expect("trace ring poisoned").push(ev);
}

/// RAII span handle: records its event (and pops the thread's open-span
/// stack) on drop. Inert when created with tracing disabled.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
}

impl SpanGuard {
    /// The span id (0 for an inert guard).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards normally drop LIFO; a held-out-of-order guard removes
            // its own id wherever it sits so the stack never wedges.
            if s.last() == Some(&self.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&v| v == self.id) {
                s.remove(pos);
            }
        });
        let ev = TraceEvent {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_us: self.start_us,
            dur_us: now_us().saturating_sub(self.start_us),
            thread: THREAD_ID.with(|t| *t),
            mark: false,
        };
        global().counter("trace.events_recorded").inc();
        ring().lock().expect("trace ring poisoned").push(ev);
    }
}

/// Renders the recorded events as `chrome://tracing` JSON (load via
/// `chrome://tracing` or Perfetto's legacy importer).
#[must_use]
pub fn chrome_json() -> String {
    let events = snapshot_events();
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = if ev.mark { "i" } else { "X" };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            ev.name, ev.start_us, ev.thread
        ));
        if ph == "X" {
            out.push_str(&format!(",\"dur\":{}", ev.dur_us));
        } else {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(&format!(
            ",\"args\":{{\"id\":{},\"parent\":{}}}}}",
            ev.id, ev.parent
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock as StdOnceLock};

    /// Span tests toggle process-global state; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdOnceLock<StdMutex<()>> = StdOnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = lock();
        set_enabled(false);
        set_capacity(DEFAULT_CAPACITY);
        {
            let _s = span("nothing");
            instant("nothing.mark");
        }
        assert!(snapshot_events().is_empty());
    }

    #[test]
    fn nested_spans_link_parents() {
        let _guard = lock();
        set_capacity(DEFAULT_CAPACITY);
        set_enabled(true);
        {
            let outer = span("outer");
            let outer_id = outer.id();
            {
                let inner = span("inner");
                assert_ne!(inner.id(), 0);
            }
            instant("mark");
            drop(outer);
            let events = snapshot_events();
            let inner = events.iter().find(|e| e.name == "inner").expect("inner");
            let mark = events.iter().find(|e| e.name == "mark").expect("mark");
            let outer_ev = events.iter().find(|e| e.name == "outer").expect("outer");
            assert_eq!(inner.parent, outer_id);
            assert_eq!(mark.parent, outer_id);
            assert_eq!(outer_ev.parent, 0, "outer span is a root");
            assert!(outer_ev.dur_us >= inner.dur_us);
        }
        set_enabled(false);
    }

    #[test]
    fn wraparound_keeps_newest_events_and_counts_drops() {
        let _guard = lock();
        set_capacity(4);
        set_enabled(true);
        for _ in 0..10 {
            let _s = span("wrap");
        }
        let events = snapshot_events();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped_events(), 6);
        // Newest retained: ids strictly increase.
        assert!(events.windows(2).all(|w| w[0].id < w[1].id));
        set_enabled(false);
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn chrome_json_has_trace_events_envelope() {
        let _guard = lock();
        set_capacity(DEFAULT_CAPACITY);
        set_enabled(true);
        {
            let _s = span("render.me");
        }
        instant("render.mark");
        set_enabled(false);
        let json = chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"render.me\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn out_of_order_guard_drop_does_not_wedge_the_stack() {
        let _guard = lock();
        set_capacity(DEFAULT_CAPACITY);
        set_enabled(true);
        let a = span("a");
        let b = span("b");
        drop(a); // non-LIFO
        let c = span("c");
        let events_parent_of_c = b.id();
        drop(c);
        drop(b);
        set_enabled(false);
        let events = snapshot_events();
        let c_ev = events.iter().find(|e| e.name == "c").expect("c recorded");
        assert_eq!(c_ev.parent, events_parent_of_c, "b still open when c began");
        STACK.with(|s| assert!(s.borrow().is_empty(), "stack drained"));
        set_capacity(DEFAULT_CAPACITY);
    }
}
