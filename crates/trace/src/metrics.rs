//! The metrics half: atomic primitives, a named registry, deterministic
//! snapshots and exposition formats.
//!
//! # Primitives
//!
//! * [`Counter`] — monotone `u64` (resettable for bench isolation).
//! * [`Gauge`] — signed instantaneous value.
//! * [`Histogram`] — 64 log₂ buckets over `u64` samples (bucket `b > 0`
//!   holds values in `[2^(b-1), 2^b)`, bucket 0 holds zero). Recording is
//!   one relaxed `fetch_add`; snapshots are mergeable and quantiles come
//!   straight from the cumulative bucket counts, so p50/p99 extraction
//!   needs no retained samples.
//!
//! # Registry
//!
//! A [`Registry`] maps hierarchical names (`store.fsyncs`,
//! `server.latency_us.query`) to shared metric handles. Handles are
//! `Arc`s: call sites cache them and pay only the atomic op per event,
//! never a map lookup. The process-wide [`global`] registry carries the
//! subsystem families; instance registries (one per engine, one per
//! server) carry per-instance counters and [merge](MetricsSnapshot::merge)
//! into one queryable surface.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of log₂ histogram buckets (covers the full `u64` range).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotone atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A fresh zero counter.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Zeroes the counter.
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

impl Clone for Counter {
    /// Clones *detach*: the copy starts at the source's current value but
    /// counts independently afterwards — value semantics, matching how
    /// engine state (and therefore its embedded counters) is cloned for
    /// differential oracles.
    fn clone(&self) -> Counter {
        Counter {
            v: AtomicU64::new(self.get()),
        }
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.v.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// Bucket index of a sample: 0 for 0, else `64 - leading_zeros` (capped).
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (u64::BITS - v.leading_zeros()).min(63) as usize
    }
}

/// Inclusive upper bound of bucket `b` — the value a quantile query
/// reports for samples landing in that bucket.
#[must_use]
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 63 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A fixed-bucket log₂ histogram over `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time snapshot of the bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every bucket and the sum.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// An immutable histogram image: mergeable, and the unit quantiles are
/// extracted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket 0 = value 0, bucket `b` = values
    /// in `[2^(b-1), 2^b)`).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket-wise sum with `other` — commutative and associative, so
    /// per-shard histograms roll up in any order.
    #[must_use]
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            sum: self.sum + other.sum,
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the first
    /// bucket whose cumulative count reaches `⌈q·count⌉` — i.e. the true
    /// quantile rounded up to its log₂ bucket boundary. Returns 0 for an
    /// empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ⌈q·count⌉, at least 1 so q=0 lands in the first occupied bucket.
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return bucket_upper_bound(b);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Index of the bucket the `q`-quantile falls in (for "within one
    /// log₂ bucket" agreement checks).
    #[must_use]
    pub fn quantile_bucket(&self, q: f64) -> usize {
        bucket_of(self.quantile(q))
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Cheap to create; snapshots are
/// deterministic (name order) and mergeable across registries.
#[derive(Debug, Default)]
pub struct Registry {
    slots: RwLock<BTreeMap<String, Slot>>,
}

impl Registry {
    /// A fresh empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        self.slots
            .read()
            .expect("metrics registry poisoned")
            .get(name)
            .cloned()
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(slot) = self.lookup(name) {
            match slot {
                Slot::Counter(c) => return c,
                _ => panic!("metric `{name}` is not a counter"),
            }
        }
        let mut slots = self.slots.write().expect("metrics registry poisoned");
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Counter(Arc::new(Counter::new())))
        {
            Slot::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(slot) = self.lookup(name) {
            match slot {
                Slot::Gauge(g) => return g,
                _ => panic!("metric `{name}` is not a gauge"),
            }
        }
        let mut slots = self.slots.write().expect("metrics registry poisoned");
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Gauge(Arc::new(Gauge::new())))
        {
            Slot::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(slot) = self.lookup(name) {
            match slot {
                Slot::Histogram(h) => return h,
                _ => panic!("metric `{name}` is not a histogram"),
            }
        }
        let mut slots = self.slots.write().expect("metrics registry poisoned");
        match slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Histogram(Arc::new(Histogram::new())))
        {
            Slot::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Adopts an externally owned counter under `name` (how per-instance
    /// counters — an MKB's index counters, a cache's hit counters — join
    /// an instance registry so one [`reset`](Registry::reset) covers
    /// them). Replaces any previous registration of the name.
    pub fn register_counter(&self, name: &str, counter: Arc<Counter>) {
        self.slots
            .write()
            .expect("metrics registry poisoned")
            .insert(name.to_owned(), Slot::Counter(counter));
    }

    /// Point-in-time snapshot of every registered metric, in name order.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.read().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Slot::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Slot::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Zeroes every registered metric — the one-call reset the engine's
    /// `reset_io` and the morsel scheduler's `reset_stats` route through.
    pub fn reset(&self) {
        self.reset_prefix("");
    }

    /// Zeroes every metric whose name starts with `prefix` (family-scoped
    /// reset, e.g. `exec.`).
    pub fn reset_prefix(&self, prefix: &str) {
        let slots = self.slots.read().expect("metrics registry poisoned");
        for (name, slot) in slots.iter() {
            if !name.starts_with(prefix) {
                continue;
            }
            match slot {
                Slot::Counter(c) => c.reset(),
                Slot::Gauge(g) => g.reset(),
                Slot::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-wide registry every subsystem family publishes into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A deterministic, mergeable image of a registry: counters, gauges and
/// histogram snapshots keyed by metric name (sorted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram images by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: colliding counters and gauges add,
    /// colliding histograms merge bucket-wise — so instance registries
    /// fold into the global families without losing samples.
    #[must_use]
    pub fn merge(mut self, other: MetricsSnapshot) -> MetricsSnapshot {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges {
            *self.gauges.entry(name).or_insert(0) += v;
        }
        for (name, h) in other.histograms {
            let slot = self.histograms.entry(name).or_default();
            *slot = slot.merged(&h);
        }
        self
    }

    /// Human-readable rendering, one metric per line (name order).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name}: count={} sum={} p50<={} p90<={} p99<={}\n",
                h.count(),
                h.sum,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ));
        }
        out
    }

    /// Prometheus text exposition (metric names sanitized: `.` and `-`
    /// become `_`; histograms render as cumulative `le` buckets with
    /// `_sum`/`_count`).
    #[must_use]
    pub fn prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            let top = h
                .buckets
                .iter()
                .rposition(|&c| c > 0)
                .unwrap_or(0)
                .min(HISTOGRAM_BUCKETS - 2);
            for (b, c) in h.buckets.iter().enumerate().take(top + 1) {
                cum += c;
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cum}\n",
                    bucket_upper_bound(b)
                ));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
            out.push_str(&format!("{n}_sum {}\n", h.sum));
            out.push_str(&format!("{n}_count {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
        for b in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_of(bucket_upper_bound(b)), b);
        }
    }

    #[test]
    fn histogram_quantiles_round_up_to_bucket_bounds() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 1106);
        // p50 is the 3rd sample (value 3) → bucket 2 upper bound.
        assert_eq!(s.quantile(0.50), 3);
        assert_eq!(s.quantile(1.0), 1023);
        assert_eq!(s.quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0);
    }

    #[test]
    fn registry_handles_are_shared_and_reset_covers_them() {
        let r = Registry::new();
        let a = r.counter("fam.a");
        let b = r.counter("fam.a");
        a.add(3);
        assert_eq!(b.get(), 3, "same name → same counter");
        r.histogram("fam.h").record(7);
        r.gauge("fam.g").set(-4);
        r.reset();
        assert_eq!(a.get(), 0);
        assert_eq!(r.gauge("fam.g").get(), 0);
        assert_eq!(r.histogram("fam.h").snapshot().count(), 0);
    }

    #[test]
    fn reset_prefix_scopes_to_a_family() {
        let r = Registry::new();
        r.counter("one.a").add(1);
        r.counter("two.a").add(2);
        r.reset_prefix("one.");
        assert_eq!(r.counter("one.a").get(), 0);
        assert_eq!(r.counter("two.a").get(), 2);
    }

    #[test]
    fn adopted_counters_reset_through_the_registry() {
        let r = Registry::new();
        let external = Arc::new(Counter::new());
        external.add(9);
        r.register_counter("inst.hits", Arc::clone(&external));
        assert_eq!(r.snapshot().counters["inst.hits"], 9);
        r.reset();
        assert_eq!(external.get(), 0, "one registry call resets the adoptee");
    }

    #[test]
    fn snapshots_merge_by_adding() {
        let a = Registry::new();
        a.counter("n").add(1);
        a.histogram("h").record(4);
        let b = Registry::new();
        b.counter("n").add(2);
        b.histogram("h").record(4);
        b.counter("only_b").add(5);
        let merged = a.snapshot().merge(b.snapshot());
        assert_eq!(merged.counters["n"], 3);
        assert_eq!(merged.counters["only_b"], 5);
        assert_eq!(merged.histograms["h"].count(), 2);
    }

    #[test]
    fn counter_clone_detaches() {
        let c = Counter::new();
        c.add(5);
        let d = c.clone();
        c.add(1);
        assert_eq!(d.get(), 5);
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_sanitized() {
        let r = Registry::new();
        r.counter("store.fsyncs").add(2);
        let h = r.histogram("server.latency_us.query");
        h.record(1);
        h.record(3);
        let text = r.snapshot().prometheus();
        assert!(text.contains("# TYPE store_fsyncs counter"));
        assert!(text.contains("store_fsyncs 2"));
        assert!(text.contains("server_latency_us_query_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("server_latency_us_query_count 2"));
        let b1 = text
            .lines()
            .find(|l| l.contains("le=\"1\""))
            .expect("bucket 1 line");
        assert!(b1.ends_with(" 1"), "cumulative count at le=1: {b1}");
        let b3 = text
            .lines()
            .find(|l| l.contains("le=\"3\""))
            .expect("bucket 2 line");
        assert!(b3.ends_with(" 2"), "cumulative count at le=3: {b3}");
    }
}
