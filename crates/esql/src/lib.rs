//! # eve-esql
//!
//! E-SQL (*Evolvable SQL*, paper §3.1) — SQL SELECT-FROM-WHERE view
//! definitions extended with **evolution preferences** that tell the EVE
//! system what may be dropped or replaced when underlying information
//! sources change their schemas:
//!
//! * per-attribute `AD` (attribute-dispensable) / `AR` (attribute-replaceable),
//! * per-relation `RD` / `RR`,
//! * per-condition `CD` / `CR`,
//! * per-view `VE` (view-extent): how the new extent may relate to the old
//!   one (`≈` no restriction, `≡` equal, `⊇` superset, `⊆` subset).
//!
//! All parameters default to `false` (indispensable / non-replaceable), as in
//! the paper's Fig. 3.
//!
//! The crate provides the AST ([`ast`]), a hand-written lexer ([`lexer`]) and
//! recursive-descent parser ([`parser`]) for the Fig. 2 syntax, a canonical
//! pretty-printer (via [`std::fmt::Display`]) and structural validation
//! ([`validate`]). Example accepted input:
//!
//! ```text
//! CREATE VIEW Asia-Customer (VE = '~') AS
//! SELECT C.Name, C.Address, C.Phone (AD = true, AR = true)
//! FROM Customer C (RR = true), FlightRes F
//! WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod validate;

pub use ast::{
    AttrEvolution, CondEvolution, ConditionItem, FromItem, RelEvolution, SelectItem, ViewDef,
    ViewExtent,
};
pub use error::{ParseError, ParseResult};
pub use parser::parse_view;
