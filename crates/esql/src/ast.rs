//! E-SQL abstract syntax (paper Fig. 2–3).

use std::fmt;

use eve_relational::{ColumnRef, PrimitiveClause};

/// The view-extent evolution parameter `VE` (Fig. 3): which relationship the
/// evolved extent must keep to the original one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ViewExtent {
    /// `≈` — no restriction on the new extent.
    Approximate,
    /// `≡` — new extent must equal the old extent. This is the default: with
    /// no stated preference, EVE falls back to classical equivalent
    /// rewritings.
    #[default]
    Equal,
    /// `⊇` — new extent must be a superset of the old extent.
    Superset,
    /// `⊆` — new extent must be a subset of the old extent.
    Subset,
}

impl ViewExtent {
    /// Canonical E-SQL spelling (ASCII).
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            ViewExtent::Approximate => "~",
            ViewExtent::Equal => "=",
            ViewExtent::Superset => ">=",
            ViewExtent::Subset => "<=",
        }
    }
}

impl fmt::Display for ViewExtent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Per-attribute evolution parameters `(AD, AR)` (Fig. 3, rows 1–2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AttrEvolution {
    /// `AD` — the attribute may be dropped from the view interface.
    pub dispensable: bool,
    /// `AR` — the attribute may be replaced by similar information from
    /// another IS.
    pub replaceable: bool,
}

impl AttrEvolution {
    /// `(AD = true, AR = true)` — the paper's category C1.
    pub const BOTH: AttrEvolution = AttrEvolution {
        dispensable: true,
        replaceable: true,
    };
    /// `(AD = true, AR = false)` — category C2.
    pub const DISPENSABLE: AttrEvolution = AttrEvolution {
        dispensable: true,
        replaceable: false,
    };
    /// `(AD = false, AR = true)` — category C3 (must stay, may be sourced
    /// elsewhere).
    pub const REPLACEABLE: AttrEvolution = AttrEvolution {
        dispensable: false,
        replaceable: true,
    };
    /// `(AD = false, AR = false)` — category C4 (default).
    pub const STRICT: AttrEvolution = AttrEvolution {
        dispensable: false,
        replaceable: false,
    };
}

/// Per-condition evolution parameters `(CD, CR)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CondEvolution {
    /// `CD` — the condition may be dropped.
    pub dispensable: bool,
    /// `CR` — the condition may be replaced (its attributes substituted).
    pub replaceable: bool,
}

/// Per-relation evolution parameters `(RD, RR)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RelEvolution {
    /// `RD` — the relation (and everything derived from it) may be dropped.
    pub dispensable: bool,
    /// `RR` — the relation may be replaced by another relation.
    pub replaceable: bool,
}

/// One SELECT item: `R.A (AD = …, AR = …) [AS B]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectItem {
    /// The source attribute (qualifier must name a FROM item's alias).
    pub attr: ColumnRef,
    /// Optional output name; defaults to the attribute name.
    pub alias: Option<String>,
    /// Evolution parameters.
    pub evolution: AttrEvolution,
}

impl SelectItem {
    /// Plain item with default (strict) evolution.
    #[must_use]
    pub fn new(attr: ColumnRef) -> SelectItem {
        SelectItem {
            attr,
            alias: None,
            evolution: AttrEvolution::default(),
        }
    }

    /// Item with explicit evolution parameters.
    #[must_use]
    pub fn with_evolution(attr: ColumnRef, evolution: AttrEvolution) -> SelectItem {
        SelectItem {
            attr,
            alias: None,
            evolution,
        }
    }

    /// The output column name this item produces.
    #[must_use]
    pub fn output_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.attr.name)
    }
}

/// One FROM item: `Relation [Alias] (RD = …, RR = …)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    /// Base relation name as registered with an information source.
    pub relation: String,
    /// Optional alias; defaults to the relation name.
    pub alias: Option<String>,
    /// Evolution parameters.
    pub evolution: RelEvolution,
}

impl FromItem {
    /// Plain item with default (strict) evolution.
    #[must_use]
    pub fn new(relation: impl Into<String>) -> FromItem {
        FromItem {
            relation: relation.into(),
            alias: None,
            evolution: RelEvolution::default(),
        }
    }

    /// Item with explicit evolution parameters.
    #[must_use]
    pub fn with_evolution(relation: impl Into<String>, evolution: RelEvolution) -> FromItem {
        FromItem {
            relation: relation.into(),
            alias: None,
            evolution,
        }
    }

    /// The name by which attributes reference this item.
    #[must_use]
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.relation)
    }
}

/// One WHERE conjunct: `(clause) (CD = …, CR = …)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionItem {
    /// The primitive clause.
    pub clause: PrimitiveClause,
    /// Evolution parameters.
    pub evolution: CondEvolution,
}

impl ConditionItem {
    /// Plain condition with default (strict) evolution.
    #[must_use]
    pub fn new(clause: PrimitiveClause) -> ConditionItem {
        ConditionItem {
            clause,
            evolution: CondEvolution::default(),
        }
    }

    /// Condition with explicit evolution parameters.
    #[must_use]
    pub fn with_evolution(clause: PrimitiveClause, evolution: CondEvolution) -> ConditionItem {
        ConditionItem { clause, evolution }
    }
}

/// A complete E-SQL view definition (Fig. 2):
///
/// ```text
/// CREATE VIEW V (B_1, …, B_m) (VE = VE_V) AS
/// SELECT R_1.A_11 (AD = …, AR = …), …
/// FROM   R_1 (RD = …, RR = …), …
/// WHERE  C_1 (CD = …, CR = …) AND …
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// Optional explicit output column names `(B_1 … B_m)`; when present the
    /// length must equal the number of SELECT items.
    pub column_names: Option<Vec<String>>,
    /// View-extent evolution parameter.
    pub ve: ViewExtent,
    /// SELECT items.
    pub select: Vec<SelectItem>,
    /// FROM items.
    pub from: Vec<FromItem>,
    /// WHERE conjuncts.
    pub conditions: Vec<ConditionItem>,
}

impl ViewDef {
    /// Builds a view with no conditions and default VE.
    #[must_use]
    pub fn new(name: impl Into<String>, select: Vec<SelectItem>, from: Vec<FromItem>) -> ViewDef {
        ViewDef {
            name: name.into(),
            column_names: None,
            ve: ViewExtent::default(),
            select,
            from,
            conditions: Vec::new(),
        }
    }

    /// Output column names, in order: explicit `column_names` if given,
    /// otherwise each item's alias or attribute name.
    #[must_use]
    pub fn output_columns(&self) -> Vec<String> {
        match &self.column_names {
            Some(names) => names.clone(),
            None => self
                .select
                .iter()
                .map(|s| s.output_name().to_owned())
                .collect(),
        }
    }

    /// The output column name of SELECT item `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn output_column(&self, i: usize) -> String {
        match &self.column_names {
            Some(names) => names[i].clone(),
            None => self.select[i].output_name().to_owned(),
        }
    }

    /// Finds the FROM item bound under `binding` (alias or relation name).
    #[must_use]
    pub fn from_item(&self, binding: &str) -> Option<&FromItem> {
        self.from.iter().find(|f| f.binding_name() == binding)
    }

    /// The FROM bindings referenced by a column (qualified references only).
    #[must_use]
    pub fn binding_of(&self, col: &ColumnRef) -> Option<&FromItem> {
        col.qualifier.as_deref().and_then(|q| self.from_item(q))
    }

    /// All SELECT items drawing from the FROM binding `binding`.
    #[must_use]
    pub fn select_items_of(&self, binding: &str) -> Vec<&SelectItem> {
        self.select
            .iter()
            .filter(|s| s.attr.qualifier.as_deref() == Some(binding))
            .collect()
    }

    /// All conditions referencing the FROM binding `binding`.
    #[must_use]
    pub fn conditions_of(&self, binding: &str) -> Vec<&ConditionItem> {
        self.conditions
            .iter()
            .filter(|c| c.clause.references_qualifier(binding))
            .collect()
    }

    /// Conjunction of all condition clauses.
    #[must_use]
    pub fn predicate(&self) -> eve_relational::Predicate {
        eve_relational::Predicate::new(self.conditions.iter().map(|c| c.clause.clone()).collect())
    }
}

fn fmt_props(f: &mut fmt::Formatter<'_>, props: &[(&str, bool)]) -> fmt::Result {
    // Only print parameters that deviate from the default (false), matching
    // the paper's convention ("parameters set to false omitted").
    let set: Vec<&(&str, bool)> = props.iter().filter(|(_, v)| *v).collect();
    if set.is_empty() {
        return Ok(());
    }
    write!(f, " (")?;
    for (i, (name, _)) in set.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{name} = true")?;
    }
    write!(f, ")")
}

impl fmt::Display for ViewDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE VIEW {}", self.name)?;
        if let Some(cols) = &self.column_names {
            write!(f, " ({})", cols.join(", "))?;
        }
        writeln!(f, " (VE = '{}') AS", self.ve)?;
        write!(f, "SELECT ")?;
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", s.attr)?;
            if let Some(a) = &s.alias {
                write!(f, " AS {a}")?;
            }
            fmt_props(
                f,
                &[
                    ("AD", s.evolution.dispensable),
                    ("AR", s.evolution.replaceable),
                ],
            )?;
        }
        writeln!(f)?;
        write!(f, "FROM ")?;
        for (i, r) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", r.relation)?;
            if let Some(a) = &r.alias {
                write!(f, " {a}")?;
            }
            fmt_props(
                f,
                &[
                    ("RD", r.evolution.dispensable),
                    ("RR", r.evolution.replaceable),
                ],
            )?;
        }
        if !self.conditions.is_empty() {
            writeln!(f)?;
            write!(f, "WHERE ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "({})", c.clause)?;
                fmt_props(
                    f,
                    &[
                        ("CD", c.evolution.dispensable),
                        ("CR", c.evolution.replaceable),
                    ],
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::{CompOp, Value};

    /// The paper's running example (query 2): the Asia-Customer view.
    pub(crate) fn asia_customer() -> ViewDef {
        ViewDef {
            name: "Asia-Customer".into(),
            column_names: None,
            ve: ViewExtent::Approximate,
            select: vec![
                SelectItem::new(ColumnRef::parse("C.Name")),
                SelectItem::new(ColumnRef::parse("C.Address")),
                SelectItem::with_evolution(ColumnRef::parse("C.Phone"), AttrEvolution::BOTH),
            ],
            from: vec![
                FromItem {
                    relation: "Customer".into(),
                    alias: Some("C".into()),
                    evolution: RelEvolution {
                        dispensable: false,
                        replaceable: true,
                    },
                },
                FromItem {
                    relation: "FlightRes".into(),
                    alias: Some("F".into()),
                    evolution: RelEvolution::default(),
                },
            ],
            conditions: vec![
                ConditionItem::new(PrimitiveClause::eq(
                    ColumnRef::parse("C.Name"),
                    ColumnRef::parse("F.PName"),
                )),
                ConditionItem::with_evolution(
                    PrimitiveClause::lit(
                        ColumnRef::parse("F.Dest"),
                        CompOp::Eq,
                        Value::from("Asia"),
                    ),
                    CondEvolution {
                        dispensable: true,
                        replaceable: false,
                    },
                ),
            ],
        }
    }

    #[test]
    fn output_columns_default_to_attr_names() {
        let v = asia_customer();
        assert_eq!(v.output_columns(), vec!["Name", "Address", "Phone"]);
    }

    #[test]
    fn explicit_column_names_win() {
        let mut v = asia_customer();
        v.column_names = Some(vec!["N".into(), "A".into(), "P".into()]);
        assert_eq!(v.output_columns(), vec!["N", "A", "P"]);
        assert_eq!(v.output_column(2), "P");
    }

    #[test]
    fn alias_overrides_attr_name() {
        let mut v = asia_customer();
        v.select[0].alias = Some("CustomerName".into());
        assert_eq!(v.output_columns()[0], "CustomerName");
    }

    #[test]
    fn from_item_lookup_by_alias() {
        let v = asia_customer();
        assert_eq!(v.from_item("C").unwrap().relation, "Customer");
        assert!(v.from_item("Customer").is_none()); // bound under alias C
        assert_eq!(
            v.binding_of(&ColumnRef::parse("F.Dest")).unwrap().relation,
            "FlightRes"
        );
    }

    #[test]
    fn select_items_and_conditions_by_binding() {
        let v = asia_customer();
        assert_eq!(v.select_items_of("C").len(), 3);
        assert_eq!(v.select_items_of("F").len(), 0);
        assert_eq!(v.conditions_of("F").len(), 2);
        assert_eq!(v.conditions_of("C").len(), 1);
    }

    #[test]
    fn display_omits_default_parameters() {
        let text = asia_customer().to_string();
        assert!(text.contains("C.Phone (AD = true, AR = true)"));
        assert!(!text.contains("C.Name (")); // strict attr prints bare
        assert!(text.contains("Customer C (RR = true)"));
        assert!(text.contains("(F.Dest = 'Asia') (CD = true)"));
        assert!(text.starts_with("CREATE VIEW Asia-Customer (VE = '~') AS"));
    }

    #[test]
    fn predicate_collects_all_clauses() {
        let v = asia_customer();
        assert_eq!(v.predicate().clauses().len(), 2);
    }

    #[test]
    fn ve_defaults_to_equal() {
        assert_eq!(ViewExtent::default(), ViewExtent::Equal);
        let v = ViewDef::new("V", vec![], vec![]);
        assert_eq!(v.ve, ViewExtent::Equal);
    }
}
