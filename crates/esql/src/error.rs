//! Parse and validation errors with source positions.

use std::fmt;

/// Result alias for parsing.
pub type ParseResult<T> = std::result::Result<T, ParseError>;

/// A lexing/parsing/validation error at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Builds an error at the given position.
    #[must_use]
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(3, 14, "expected `AS`");
        assert_eq!(e.to_string(), "3:14: expected `AS`");
    }
}
