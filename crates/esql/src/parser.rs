//! Recursive-descent parser for the Fig. 2 E-SQL grammar.
//!
//! ```text
//! view        := CREATE VIEW name [ '(' ident, … ')' ] [ '(' VE '=' ve ')' ] AS
//!                SELECT item, …  FROM rel, …  [ WHERE cond AND … ]
//! item        := column [ AS ident ] [ props ]
//! rel         := ident [ ident ] [ props ]
//! cond        := [ '(' ] column θ (column | literal) [ ')' ] [ props ]
//! props       := '(' (AD|AR|RD|RR|CD|CR) '=' (true|false), … ')'
//! ve          := '~' | '=' | '>=' | '<=' | string | approx|any|equal|superset|subset
//! ```
//!
//! The unicode spellings `≈ ≡ ⊇ ⊆` are accepted inside the VE string literal.

use eve_relational::{ColumnRef, CompOp, Operand, PrimitiveClause, Value};

use crate::ast::{
    AttrEvolution, CondEvolution, ConditionItem, FromItem, RelEvolution, SelectItem, ViewDef,
    ViewExtent,
};
use crate::error::{ParseError, ParseResult};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a complete `CREATE VIEW` statement.
///
/// # Errors
///
/// Returns a positioned [`ParseError`] on any lexical or syntactic problem,
/// including trailing garbage after the statement.
pub fn parse_view(src: &str) -> ParseResult<ViewDef> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let view = p.view()?;
    p.expect_eof()?;
    Ok(view)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const PROP_KEYWORDS: [&str; 6] = ["AD", "AR", "RD", "RR", "CD", "CR"];

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, offset: usize) -> &Token {
        &self.tokens[(self.pos + offset).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(t.line, t.column, msg.into())
    }

    fn expect(&mut self, kind: &TokenKind) -> ParseResult<Token> {
        if &self.peek().kind == kind {
            Ok(self.advance())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn expect_eof(&self) -> ParseResult<()> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error(format!(
                "unexpected {} after view definition",
                self.peek().kind.describe()
            )))
        }
    }

    /// Consumes an identifier, returning its spelling.
    fn ident(&mut self, what: &str) -> ParseResult<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    /// Consumes a specific case-insensitive keyword.
    fn keyword(&mut self, kw: &str) -> ParseResult<()> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.advance();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn view(&mut self) -> ParseResult<ViewDef> {
        self.keyword("CREATE")?;
        self.keyword("VIEW")?;
        let name = self.ident("view name")?;

        let mut column_names = None;
        // Optional output-column list — but "(VE = …)" is the extent
        // parameter, not a column list.
        if self.peek().kind == TokenKind::LParen && !self.lookahead_ve() {
            self.advance();
            let mut cols = vec![self.ident("column name")?];
            while self.peek().kind == TokenKind::Comma {
                self.advance();
                cols.push(self.ident("column name")?);
            }
            self.expect(&TokenKind::RParen)?;
            column_names = Some(cols);
        }

        let mut ve = ViewExtent::default();
        if self.peek().kind == TokenKind::LParen && self.lookahead_ve() {
            self.advance();
            self.keyword("VE")?;
            self.expect(&TokenKind::Eq)?;
            ve = self.ve_value()?;
            self.expect(&TokenKind::RParen)?;
        }

        self.keyword("AS")?;
        self.keyword("SELECT")?;
        let mut select = vec![self.select_item()?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            select.push(self.select_item()?);
        }

        self.keyword("FROM")?;
        let mut from = vec![self.from_item()?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            from.push(self.from_item()?);
        }

        let mut conditions = Vec::new();
        if self.at_keyword("WHERE") {
            self.advance();
            conditions.push(self.condition()?);
            while self.at_keyword("AND") {
                self.advance();
                conditions.push(self.condition()?);
            }
        }

        if let Some(cols) = &column_names {
            if cols.len() != select.len() {
                return Err(self.error(format!(
                    "view column list has {} names but SELECT produces {} columns",
                    cols.len(),
                    select.len()
                )));
            }
        }

        Ok(ViewDef {
            name,
            column_names,
            ve,
            select,
            from,
            conditions,
        })
    }

    /// Whether the upcoming `(` opens a `(VE = …)` parameter.
    fn lookahead_ve(&self) -> bool {
        matches!(&self.peek_at(1).kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case("VE"))
            && self.peek_at(2).kind == TokenKind::Eq
    }

    /// Whether the upcoming `(` opens an evolution-parameter list.
    fn lookahead_props(&self) -> bool {
        if self.peek().kind != TokenKind::LParen {
            return false;
        }
        let is_prop = matches!(&self.peek_at(1).kind,
            TokenKind::Ident(s) if PROP_KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k)));
        is_prop && self.peek_at(2).kind == TokenKind::Eq
    }

    fn ve_value(&mut self) -> ParseResult<ViewExtent> {
        let tok = self.advance();
        let from_str = |s: &str| match s {
            "~" | "\u{2248}" => Some(ViewExtent::Approximate), // ≈
            "=" | "\u{2261}" => Some(ViewExtent::Equal),       // ≡
            ">=" | "\u{2287}" => Some(ViewExtent::Superset),   // ⊇
            "<=" | "\u{2286}" => Some(ViewExtent::Subset),     // ⊆
            _ => None,
        };
        let parsed = match &tok.kind {
            TokenKind::Str(s) => from_str(s).or_else(|| word_ve(s)),
            TokenKind::Ident(s) => word_ve(s),
            TokenKind::Tilde => Some(ViewExtent::Approximate),
            TokenKind::Eq => Some(ViewExtent::Equal),
            TokenKind::Ge => Some(ViewExtent::Superset),
            TokenKind::Le => Some(ViewExtent::Subset),
            _ => None,
        };
        parsed.ok_or_else(|| {
            ParseError::new(
                tok.line,
                tok.column,
                format!("invalid VE value {}", tok.kind.describe()),
            )
        })
    }

    /// Parses `(P = bool, …)` into flag assignments.
    fn props(&mut self) -> ParseResult<Vec<(String, bool)>> {
        self.expect(&TokenKind::LParen)?;
        let mut out = Vec::new();
        loop {
            let name = self.ident("evolution parameter")?;
            let upper = name.to_ascii_uppercase();
            if !PROP_KEYWORDS.contains(&upper.as_str()) {
                return Err(self.error(format!("unknown evolution parameter `{name}`")));
            }
            self.expect(&TokenKind::Eq)?;
            let v = self.ident("true or false")?;
            let value = if v.eq_ignore_ascii_case("true") {
                true
            } else if v.eq_ignore_ascii_case("false") {
                false
            } else {
                return Err(self.error(format!("expected `true` or `false`, found `{v}`")));
            };
            out.push((upper, value));
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(out)
    }

    fn attr_props(&mut self) -> ParseResult<AttrEvolution> {
        let mut ev = AttrEvolution::default();
        for (name, value) in self.props()? {
            match name.as_str() {
                "AD" => ev.dispensable = value,
                "AR" => ev.replaceable = value,
                other => return Err(self.error(format!("`{other}` is not valid on a SELECT item"))),
            }
        }
        Ok(ev)
    }

    fn rel_props(&mut self) -> ParseResult<RelEvolution> {
        let mut ev = RelEvolution::default();
        for (name, value) in self.props()? {
            match name.as_str() {
                "RD" => ev.dispensable = value,
                "RR" => ev.replaceable = value,
                other => return Err(self.error(format!("`{other}` is not valid on a FROM item"))),
            }
        }
        Ok(ev)
    }

    fn cond_props(&mut self) -> ParseResult<CondEvolution> {
        let mut ev = CondEvolution::default();
        for (name, value) in self.props()? {
            match name.as_str() {
                "CD" => ev.dispensable = value,
                "CR" => ev.replaceable = value,
                other => return Err(self.error(format!("`{other}` is not valid on a condition"))),
            }
        }
        Ok(ev)
    }

    fn column_ref(&mut self) -> ParseResult<ColumnRef> {
        let first = self.ident("column reference")?;
        if self.peek().kind == TokenKind::Dot {
            self.advance();
            let name = self.ident("attribute name")?;
            Ok(ColumnRef::qualified(first, name))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn select_item(&mut self) -> ParseResult<SelectItem> {
        let attr = self.column_ref()?;
        let mut alias = None;
        if self.at_keyword("AS") {
            self.advance();
            alias = Some(self.ident("output alias")?);
        }
        let evolution = if self.lookahead_props() {
            self.attr_props()?
        } else {
            AttrEvolution::default()
        };
        Ok(SelectItem {
            attr,
            alias,
            evolution,
        })
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM item; not a conversion
    fn from_item(&mut self) -> ParseResult<FromItem> {
        let relation = self.ident("relation name")?;
        let mut alias = None;
        // An alias is a bare identifier that is not a keyword opener.
        if let TokenKind::Ident(s) = &self.peek().kind {
            if !s.eq_ignore_ascii_case("WHERE") && !s.eq_ignore_ascii_case("AS") {
                alias = Some(self.ident("relation alias")?);
            }
        }
        let evolution = if self.lookahead_props() {
            self.rel_props()?
        } else {
            RelEvolution::default()
        };
        Ok(FromItem {
            relation,
            alias,
            evolution,
        })
    }

    fn comp_op(&mut self) -> ParseResult<CompOp> {
        let tok = self.advance();
        match tok.kind {
            TokenKind::Lt => Ok(CompOp::Lt),
            TokenKind::Le => Ok(CompOp::Le),
            TokenKind::Eq => Ok(CompOp::Eq),
            TokenKind::Ge => Ok(CompOp::Ge),
            TokenKind::Gt => Ok(CompOp::Gt),
            other => Err(ParseError::new(
                tok.line,
                tok.column,
                format!("expected comparison operator, found {}", other.describe()),
            )),
        }
    }

    fn operand(&mut self) -> ParseResult<Operand> {
        match &self.peek().kind {
            TokenKind::Int(v) => {
                let v = *v;
                self.advance();
                Ok(Operand::Literal(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                let v = *v;
                let tok = self.advance();
                Value::float(v).map(Operand::Literal).map_err(|_| {
                    ParseError::new(tok.line, tok.column, "float literal is not a number")
                })
            }
            TokenKind::Str(s) => {
                let s = s.clone();
                self.advance();
                Ok(Operand::Literal(Value::Text(s)))
            }
            TokenKind::Ident(s)
                if s.eq_ignore_ascii_case("true") || s.eq_ignore_ascii_case("false") =>
            {
                let v = s.eq_ignore_ascii_case("true");
                self.advance();
                Ok(Operand::Literal(Value::Bool(v)))
            }
            TokenKind::Ident(_) => Ok(Operand::Column(self.column_ref()?)),
            other => Err(self.error(format!(
                "expected column or literal, found {}",
                other.describe()
            ))),
        }
    }

    fn condition(&mut self) -> ParseResult<ConditionItem> {
        // A condition may be wrapped in parentheses — but "(" could also be a
        // prop list only after the clause, so here "(" always opens a clause.
        let parenthesized = self.peek().kind == TokenKind::LParen;
        if parenthesized {
            self.advance();
        }
        let left = self.column_ref()?;
        let op = self.comp_op()?;
        let right = self.operand()?;
        if parenthesized {
            self.expect(&TokenKind::RParen)?;
        }
        let evolution = if self.lookahead_props() {
            self.cond_props()?
        } else {
            CondEvolution::default()
        };
        Ok(ConditionItem {
            clause: PrimitiveClause { left, op, right },
            evolution,
        })
    }
}

fn word_ve(s: &str) -> Option<ViewExtent> {
    if s.eq_ignore_ascii_case("approx")
        || s.eq_ignore_ascii_case("approximate")
        || s.eq_ignore_ascii_case("any")
    {
        Some(ViewExtent::Approximate)
    } else if s.eq_ignore_ascii_case("equal") || s.eq_ignore_ascii_case("equivalent") {
        Some(ViewExtent::Equal)
    } else if s.eq_ignore_ascii_case("superset") {
        Some(ViewExtent::Superset)
    } else if s.eq_ignore_ascii_case("subset") {
        Some(ViewExtent::Subset)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ASIA: &str = "CREATE VIEW Asia-Customer (VE = '~') AS\n\
        SELECT C.Name, C.Address, C.Phone (AD = true, AR = true)\n\
        FROM Customer C (RR = true), FlightRes F\n\
        WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)";

    #[test]
    fn parses_paper_query_2() {
        let v = parse_view(ASIA).unwrap();
        assert_eq!(v.name, "Asia-Customer");
        assert_eq!(v.ve, ViewExtent::Approximate);
        assert_eq!(v.select.len(), 3);
        assert_eq!(v.select[2].evolution, AttrEvolution::BOTH);
        assert_eq!(v.select[0].evolution, AttrEvolution::STRICT);
        assert_eq!(v.from.len(), 2);
        assert_eq!(v.from[0].alias.as_deref(), Some("C"));
        assert!(v.from[0].evolution.replaceable);
        assert!(!v.from[0].evolution.dispensable);
        assert_eq!(v.conditions.len(), 2);
        assert!(v.conditions[1].evolution.dispensable);
        assert!(!v.conditions[0].evolution.dispensable);
    }

    #[test]
    fn parses_paper_query_6() {
        // Example 1's view V.
        let src = "CREATE VIEW V (VE = '=') AS\n\
            SELECT A, B (AD = true, AR = true), C (AD = true, AR = true)\n\
            FROM R\n\
            WHERE R.A > 10";
        let v = parse_view(src).unwrap();
        assert_eq!(v.select.len(), 3);
        assert_eq!(v.ve, ViewExtent::Equal);
        assert_eq!(v.conditions.len(), 1);
        assert_eq!(v.conditions[0].clause.to_string(), "R.A > 10");
    }

    #[test]
    fn ve_spellings() {
        for (s, want) in [
            ("'~'", ViewExtent::Approximate),
            ("'\u{2248}'", ViewExtent::Approximate),
            ("~", ViewExtent::Approximate),
            ("'='", ViewExtent::Equal),
            ("'\u{2261}'", ViewExtent::Equal),
            ("'>='", ViewExtent::Superset),
            ("'\u{2287}'", ViewExtent::Superset),
            (">=", ViewExtent::Superset),
            ("superset", ViewExtent::Superset),
            ("'<='", ViewExtent::Subset),
            ("'\u{2286}'", ViewExtent::Subset),
            ("subset", ViewExtent::Subset),
            ("approx", ViewExtent::Approximate),
            ("equal", ViewExtent::Equal),
        ] {
            let src = format!("CREATE VIEW V (VE = {s}) AS SELECT R.A FROM R");
            let v = parse_view(&src).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(v.ve, want, "spelling {s}");
        }
    }

    #[test]
    fn ve_defaults_to_equal_when_missing() {
        let v = parse_view("CREATE VIEW V AS SELECT R.A FROM R").unwrap();
        assert_eq!(v.ve, ViewExtent::Equal);
    }

    #[test]
    fn column_list_and_ve_both_accepted() {
        let v = parse_view("CREATE VIEW V (X, Y) (VE = '~') AS SELECT R.A, R.B FROM R").unwrap();
        assert_eq!(v.column_names, Some(vec!["X".into(), "Y".into()]));
        assert_eq!(v.output_columns(), vec!["X", "Y"]);
    }

    #[test]
    fn column_list_arity_mismatch_rejected() {
        let e = parse_view("CREATE VIEW V (X) AS SELECT R.A, R.B FROM R").unwrap_err();
        assert!(e.message.contains("column list"));
    }

    #[test]
    fn select_alias() {
        let v = parse_view("CREATE VIEW V AS SELECT R.A AS Alpha FROM R").unwrap();
        assert_eq!(v.select[0].alias.as_deref(), Some("Alpha"));
        assert_eq!(v.output_columns(), vec!["Alpha"]);
    }

    #[test]
    fn unparenthesized_condition() {
        let v =
            parse_view("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A >= 3 AND R.A < 9").unwrap();
        assert_eq!(v.conditions.len(), 2);
        assert_eq!(v.conditions[0].clause.op, CompOp::Ge);
        assert_eq!(v.conditions[1].clause.op, CompOp::Lt);
    }

    #[test]
    fn condition_with_boolean_literal() {
        let v = parse_view("CREATE VIEW V AS SELECT R.A FROM R WHERE R.Ok = true").unwrap();
        assert_eq!(
            v.conditions[0].clause.right,
            Operand::Literal(Value::Bool(true))
        );
    }

    #[test]
    fn float_literal() {
        let v = parse_view("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A < 3.5").unwrap();
        assert_eq!(
            v.conditions[0].clause.right,
            Operand::Literal(Value::Float(3.5))
        );
    }

    #[test]
    fn wrong_prop_on_select_item_rejected() {
        let e = parse_view("CREATE VIEW V AS SELECT R.A (RD = true) FROM R").unwrap_err();
        assert!(e.message.contains("not valid on a SELECT item"), "{e}");
    }

    #[test]
    fn wrong_prop_on_condition_rejected() {
        let e =
            parse_view("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A > 1 (AD = true)").unwrap_err();
        assert!(e.message.contains("not valid on a condition"), "{e}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = parse_view("CREATE VIEW V AS SELECT R.A FROM R garbage garbage").unwrap_err();
        assert!(e.message.contains("unexpected"), "{e}");
    }

    #[test]
    fn missing_from_rejected() {
        assert!(parse_view("CREATE VIEW V AS SELECT R.A").is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        let v1 = parse_view(ASIA).unwrap();
        let printed = v1.to_string();
        let v2 = parse_view(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(v1, v2);
    }

    #[test]
    fn keywords_case_insensitive() {
        let v = parse_view("create view V as select R.A from R where R.A > 1").unwrap();
        assert_eq!(v.name, "V");
    }

    #[test]
    fn error_position_is_useful() {
        let e = parse_view("CREATE VIEW V AS SELECT FROM R").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.column >= 25, "column {}", e.column);
    }
}
