//! Structural validation and normalization of parsed views.
//!
//! Validation is purely syntactic/structural (no catalog needed):
//!
//! * at least one FROM item, with pairwise-distinct binding names,
//! * every qualified column references a FROM binding,
//! * bare columns are only allowed when a single FROM item makes them
//!   unambiguous (normalization qualifies them),
//! * output column names are pairwise distinct.
//!
//! Schema-aware checks (attribute existence, types) happen later against the
//! Meta Knowledge Base in `eve-misd`.

use std::collections::BTreeSet;
use std::fmt;

use eve_relational::ColumnRef;

use crate::ast::ViewDef;

/// A structural validation problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Human-readable description.
    pub message: String,
}

impl ValidationError {
    fn new(message: impl Into<String>) -> ValidationError {
        ValidationError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid view: {}", self.message)
    }
}

impl std::error::Error for ValidationError {}

/// Validates a view and returns a normalized copy in which every bare column
/// reference is qualified with its FROM binding.
///
/// # Errors
///
/// Returns the first [`ValidationError`] encountered.
pub fn validate(view: &ViewDef) -> Result<ViewDef, ValidationError> {
    if view.from.is_empty() {
        return Err(ValidationError::new("view has no FROM items"));
    }
    if view.select.is_empty() {
        return Err(ValidationError::new("view selects no attributes"));
    }

    // Distinct binding names.
    let mut bindings = BTreeSet::new();
    for f in &view.from {
        if !bindings.insert(f.binding_name().to_owned()) {
            return Err(ValidationError::new(format!(
                "duplicate FROM binding `{}`",
                f.binding_name()
            )));
        }
    }

    // Distinct output names.
    let mut outputs = BTreeSet::new();
    for name in view.output_columns() {
        if !outputs.insert(name.clone()) {
            return Err(ValidationError::new(format!(
                "duplicate output column `{name}`"
            )));
        }
    }

    let single_binding = if view.from.len() == 1 {
        Some(view.from[0].binding_name().to_owned())
    } else {
        None
    };

    let qualify = |col: &ColumnRef, what: &str| -> Result<ColumnRef, ValidationError> {
        match &col.qualifier {
            Some(q) => {
                if bindings.contains(q) {
                    Ok(col.clone())
                } else {
                    Err(ValidationError::new(format!(
                        "{what} `{col}` references unknown FROM binding `{q}`"
                    )))
                }
            }
            None => match &single_binding {
                Some(b) => Ok(ColumnRef::qualified(b.clone(), col.name.clone())),
                None => Err(ValidationError::new(format!(
                    "{what} `{col}` is unqualified but the view has {} FROM items",
                    view.from.len()
                ))),
            },
        }
    };

    let mut normalized = view.clone();
    for item in &mut normalized.select {
        item.attr = qualify(&item.attr, "SELECT item")?;
    }
    for cond in &mut normalized.conditions {
        let left = qualify(&cond.clause.left, "condition column")?;
        let right = match &cond.clause.right {
            eve_relational::Operand::Column(c) => {
                eve_relational::Operand::Column(qualify(c, "condition column")?)
            }
            lit @ eve_relational::Operand::Literal(_) => lit.clone(),
        };
        cond.clause = eve_relational::PrimitiveClause {
            left,
            op: cond.clause.op,
            right,
        };
    }
    Ok(normalized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_view;

    #[test]
    fn normalizes_bare_columns_with_single_from() {
        let v = parse_view("CREATE VIEW V AS SELECT A, B FROM R WHERE A > 10").unwrap();
        let n = validate(&v).unwrap();
        assert_eq!(n.select[0].attr, ColumnRef::parse("R.A"));
        assert_eq!(n.conditions[0].clause.left, ColumnRef::parse("R.A"));
    }

    #[test]
    fn bare_column_with_two_from_items_rejected() {
        let v = parse_view("CREATE VIEW V AS SELECT A FROM R, S").unwrap();
        let e = validate(&v).unwrap_err();
        assert!(e.message.contains("unqualified"), "{e}");
    }

    #[test]
    fn unknown_binding_rejected() {
        let v = parse_view("CREATE VIEW V AS SELECT T.A FROM R, S").unwrap();
        let e = validate(&v).unwrap_err();
        assert!(e.message.contains("unknown FROM binding `T`"), "{e}");
    }

    #[test]
    fn alias_binds_and_relation_name_does_not() {
        let v = parse_view("CREATE VIEW V AS SELECT Customer.Name FROM Customer C").unwrap();
        let e = validate(&v).unwrap_err();
        assert!(e.message.contains("unknown FROM binding `Customer`"), "{e}");
        let ok = parse_view("CREATE VIEW V AS SELECT C.Name FROM Customer C").unwrap();
        assert!(validate(&ok).is_ok());
    }

    #[test]
    fn duplicate_bindings_rejected() {
        let v = parse_view("CREATE VIEW V AS SELECT R.A FROM R, R").unwrap();
        assert!(validate(&v).unwrap_err().message.contains("duplicate FROM"));
        // Distinct aliases for the same relation are fine (self-join).
        let ok = parse_view("CREATE VIEW V AS SELECT X.A, Y.A AS A2 FROM R X, R Y").unwrap();
        assert!(validate(&ok).is_ok());
    }

    #[test]
    fn duplicate_output_names_rejected() {
        let v = parse_view("CREATE VIEW V AS SELECT X.A, Y.A FROM R X, R Y").unwrap();
        let e = validate(&v).unwrap_err();
        assert!(e.message.contains("duplicate output column `A`"), "{e}");
    }

    #[test]
    fn validates_paper_example() {
        let v = parse_view(
            "CREATE VIEW Asia-Customer (VE = '~') AS\n\
             SELECT C.Name, C.Address, C.Phone (AD = true, AR = true)\n\
             FROM Customer C (RR = true), FlightRes F\n\
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)",
        )
        .unwrap();
        let n = validate(&v).unwrap();
        assert_eq!(n, v, "already fully qualified: normalization is identity");
    }

    #[test]
    fn empty_select_rejected() {
        // Constructed directly: the parser cannot produce an empty SELECT.
        let v = ViewDef::new("V", vec![], vec![crate::ast::FromItem::new("R")]);
        assert!(validate(&v).unwrap_err().message.contains("selects no"));
    }

    #[test]
    fn no_from_rejected() {
        let v = ViewDef::new(
            "V",
            vec![crate::ast::SelectItem::new(ColumnRef::parse("R.A"))],
            vec![],
        );
        assert!(validate(&v).unwrap_err().message.contains("no FROM"));
    }
}
