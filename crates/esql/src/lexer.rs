//! Hand-written lexer for E-SQL.
//!
//! Identifiers may contain `-` after the first character (the paper names
//! views like `Asia-Customer`); keywords are case-insensitive; strings use
//! single quotes with `''` escaping.

use crate::error::{ParseError, ParseResult};

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (unescaped content).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<>`
    Ne,
    /// `~` (used in `VE = '~'` alternatives)
    Tilde,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short description for error messages.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Str(s) => format!("string `'{s}'`"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Ne => "`<>`".into(),
            TokenKind::Tilde => "`~`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Tokenizes E-SQL source text.
///
/// # Errors
///
/// Returns a [`ParseError`] for unterminated strings, malformed numbers or
/// unexpected characters.
pub fn tokenize(src: &str) -> ParseResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            tokens.push(Token {
                kind: $kind,
                line: $l,
                column: $c,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                // SQL comment to end of line.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < chars.len() && chars[i + 1].is_ascii_digit() => {
                // Negative numeric literal (a lone `-` can only start a
                // number: hyphens inside identifiers are consumed by the
                // identifier rule).
                let start = i;
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                col += i - start;
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| ParseError::new(tl, tc, format!("bad float `{text}`")))?;
                    push!(TokenKind::Float(v), tl, tc);
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| ParseError::new(tl, tc, format!("bad integer `{text}`")))?;
                    push!(TokenKind::Int(v), tl, tc);
                }
            }
            '(' => {
                push!(TokenKind::LParen, tl, tc);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(TokenKind::RParen, tl, tc);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(TokenKind::Comma, tl, tc);
                i += 1;
                col += 1;
            }
            '.' => {
                push!(TokenKind::Dot, tl, tc);
                i += 1;
                col += 1;
            }
            '=' => {
                push!(TokenKind::Eq, tl, tc);
                i += 1;
                col += 1;
            }
            '~' => {
                push!(TokenKind::Tilde, tl, tc);
                i += 1;
                col += 1;
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(TokenKind::Le, tl, tc);
                    i += 2;
                    col += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    push!(TokenKind::Ne, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Lt, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    push!(TokenKind::Ge, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Gt, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < chars.len() {
                    if chars[j] == '\'' {
                        if j + 1 < chars.len() && chars[j + 1] == '\'' {
                            s.push('\'');
                            j += 2;
                        } else {
                            closed = true;
                            j += 1;
                            break;
                        }
                    } else {
                        s.push(chars[j]);
                        j += 1;
                    }
                }
                if !closed {
                    return Err(ParseError::new(tl, tc, "unterminated string literal"));
                }
                col += j - i;
                i = j;
                push!(TokenKind::Str(s), tl, tc);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                col += i - start;
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| ParseError::new(tl, tc, format!("bad float `{text}`")))?;
                    push!(TokenKind::Float(v), tl, tc);
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| ParseError::new(tl, tc, format!("bad integer `{text}`")))?;
                    push!(TokenKind::Int(v), tl, tc);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '-')
                {
                    i += 1;
                }
                // A trailing '-' belongs to punctuation, not the identifier.
                while i > start + 1 && chars[i - 1] == '-' {
                    i -= 1;
                }
                let text: String = chars[start..i].iter().collect();
                col += i - start;
                push!(TokenKind::Ident(text), tl, tc);
            }
            other => {
                return Err(ParseError::new(
                    tl,
                    tc,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        column: col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT R.A, 42"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("R".into()),
                TokenKind::Dot,
                TokenKind::Ident("A".into()),
                TokenKind::Comma,
                TokenKind::Int(42),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = <>"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn hyphenated_identifier() {
        assert_eq!(
            kinds("Asia-Customer"),
            vec![TokenKind::Ident("Asia-Customer".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn string_with_escape() {
        assert_eq!(
            kinds("'Asia' 'O''Hare'"),
            vec![
                TokenKind::Str("Asia".into()),
                TokenKind::Str("O'Hare".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let e = tokenize("'oops").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn floats_and_ints() {
        assert_eq!(
            kinds("3.25 7"),
            vec![TokenKind::Float(3.25), TokenKind::Int(7), TokenKind::Eof]
        );
    }

    #[test]
    fn negative_literals() {
        assert_eq!(
            kinds("-42 -3.5"),
            vec![TokenKind::Int(-42), TokenKind::Float(-3.5), TokenKind::Eof]
        );
        // Hyphen inside an identifier still lexes as one identifier…
        assert_eq!(
            kinds("Asia-2"),
            vec![TokenKind::Ident("Asia-2".into()), TokenKind::Eof]
        );
        // …and a comparison against a negative number works.
        assert_eq!(
            kinds("A > -7"),
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::Gt,
                TokenKind::Int(-7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comment_skipped() {
        assert_eq!(
            kinds("A -- rest is ignored\nB"),
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::Ident("B".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("A\n  B").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn unexpected_character_reported() {
        let e = tokenize("SELECT ;").unwrap_err();
        assert!(e.message.contains("unexpected character"));
        assert_eq!(e.column, 8);
    }

    #[test]
    fn tilde_token() {
        assert_eq!(kinds("~"), vec![TokenKind::Tilde, TokenKind::Eof]);
    }
}
