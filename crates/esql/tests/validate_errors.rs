//! Integration coverage of `esql::validate`'s error paths. The unit tests
//! exercise the happy path and a few rejections; this suite pins every
//! error branch, including the ones only reachable through hand-built ASTs
//! and through condition columns on either operand side.

use eve_esql::validate::validate;
use eve_esql::{parse_view, FromItem, SelectItem, ViewDef};
use eve_relational::{ColumnRef, CompOp, Operand, PrimitiveClause};

fn err(view: &ViewDef) -> String {
    validate(view).unwrap_err().message
}

#[test]
fn empty_from_and_empty_select_are_rejected_in_that_order() {
    // No FROM at all.
    let v = ViewDef::new(
        "V",
        vec![SelectItem::new(ColumnRef::parse("R.A"))],
        Vec::new(),
    );
    assert!(err(&v).contains("no FROM items"));
    // FROM present, SELECT empty: reported as the select problem.
    let v = ViewDef::new("V", Vec::new(), vec![FromItem::new("R")]);
    assert!(err(&v).contains("selects no attributes"));
    // Both empty: FROM wins (checked first).
    let v = ViewDef::new("V", Vec::new(), Vec::new());
    assert!(err(&v).contains("no FROM items"));
}

#[test]
fn duplicate_bindings_are_rejected_for_aliases_too() {
    // Same alias twice over different relations.
    let v = parse_view("CREATE VIEW V AS SELECT X.A FROM R X, S X").unwrap();
    assert!(err(&v).contains("duplicate FROM binding `X`"));
    // Alias colliding with another item's bare relation name.
    let v = parse_view("CREATE VIEW V AS SELECT R.A FROM R, S R").unwrap();
    assert!(err(&v).contains("duplicate FROM binding `R`"));
}

#[test]
fn duplicate_output_columns_cover_aliases_and_column_lists() {
    // Via aliases.
    let v = parse_view("CREATE VIEW V AS SELECT R.A AS X, R.B AS X FROM R").unwrap();
    assert!(err(&v).contains("duplicate output column `X`"));
    // Via an explicit column-name list.
    let mut v = parse_view("CREATE VIEW V AS SELECT R.A, R.B FROM R").unwrap();
    v.column_names = Some(vec!["C".into(), "C".into()]);
    assert!(err(&v).contains("duplicate output column `C`"));
}

#[test]
fn select_items_must_reference_known_bindings() {
    let v = parse_view("CREATE VIEW V AS SELECT Ghost.A FROM R, S").unwrap();
    let e = err(&v);
    assert!(e.contains("SELECT item"), "{e}");
    assert!(e.contains("unknown FROM binding `Ghost`"), "{e}");
}

#[test]
fn condition_columns_are_checked_on_both_operand_sides() {
    // Unknown binding on the left.
    let v = parse_view("CREATE VIEW V AS SELECT R.A FROM R, S WHERE Ghost.A > 1").unwrap();
    let e = err(&v);
    assert!(e.contains("condition column"), "{e}");
    assert!(e.contains("`Ghost`"), "{e}");
    // Unknown binding on the right (column-to-column comparison).
    let v = parse_view("CREATE VIEW V AS SELECT R.A FROM R, S WHERE R.A = Ghost.B").unwrap();
    let e = err(&v);
    assert!(e.contains("condition column"), "{e}");
    assert!(e.contains("`Ghost`"), "{e}");
}

#[test]
fn bare_columns_are_ambiguous_with_multiple_from_items() {
    // In SELECT.
    let v = parse_view("CREATE VIEW V AS SELECT A FROM R, S").unwrap();
    assert!(err(&v).contains("unqualified but the view has 2 FROM items"));
    // In WHERE, left side.
    let v = parse_view("CREATE VIEW V AS SELECT R.A FROM R, S WHERE A > 1").unwrap();
    assert!(err(&v).contains("unqualified"));
    // In WHERE, right side.
    let mut v = parse_view("CREATE VIEW V AS SELECT R.A FROM R, S").unwrap();
    v.conditions
        .push(eve_esql::ConditionItem::new(PrimitiveClause {
            left: ColumnRef::parse("R.A"),
            op: CompOp::Eq,
            right: Operand::Column(ColumnRef::bare("B")),
        }));
    assert!(err(&v).contains("unqualified"));
}

#[test]
fn normalization_qualifies_every_bare_reference() {
    let v = parse_view("CREATE VIEW V AS SELECT A, B FROM R WHERE (A > 1) AND (B = A)").unwrap();
    let n = validate(&v).unwrap();
    for item in &n.select {
        assert_eq!(item.attr.qualifier.as_deref(), Some("R"));
    }
    for cond in &n.conditions {
        for col in cond.clause.columns() {
            assert_eq!(col.qualifier.as_deref(), Some("R"), "{col}");
        }
    }
    // Idempotent: validating the normalized view is the identity.
    assert_eq!(validate(&n).unwrap(), n);
}

#[test]
fn relation_name_does_not_leak_past_an_alias_in_conditions() {
    // `Customer` is aliased to `C`, so qualifying by the relation name in
    // WHERE must fail just as it does in SELECT.
    let v = parse_view("CREATE VIEW V AS SELECT C.Name FROM Customer C WHERE Customer.Name = 'x'")
        .unwrap();
    assert!(err(&v).contains("unknown FROM binding `Customer`"));
}
