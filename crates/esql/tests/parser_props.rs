//! Property-based tests of the E-SQL parser: round-trips over richly
//! structured generated views, and robustness against mangled input.

use proptest::prelude::*;

use eve_esql::{
    parse_view, AttrEvolution, CondEvolution, ConditionItem, FromItem, RelEvolution, SelectItem,
    ViewDef, ViewExtent,
};
use eve_relational::{ColumnRef, CompOp, Operand, PrimitiveClause, Value};

fn ident() -> impl Strategy<Value = String> {
    "[A-Z][A-Za-z0-9_]{0,8}".prop_map(|s| s)
}

fn hyphen_ident() -> impl Strategy<Value = String> {
    "[A-Z][a-z]{1,5}(-[a-z]{1,4})?".prop_map(|s| s)
}

fn comp_op() -> impl Strategy<Value = CompOp> {
    prop_oneof![
        Just(CompOp::Lt),
        Just(CompOp::Le),
        Just(CompOp::Eq),
        Just(CompOp::Ge),
        Just(CompOp::Gt),
    ]
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|v| Value::Int(i64::from(v))),
        "[a-zA-Z ]{0,12}".prop_map(Value::from),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn view_extent() -> impl Strategy<Value = ViewExtent> {
    prop_oneof![
        Just(ViewExtent::Approximate),
        Just(ViewExtent::Equal),
        Just(ViewExtent::Superset),
        Just(ViewExtent::Subset),
    ]
}

/// A structurally valid multi-relation view with aliases and mixed
/// conditions.
fn rich_view() -> impl Strategy<Value = ViewDef> {
    (
        hyphen_ident(),
        view_extent(),
        prop::collection::vec((ident(), any::<bool>(), any::<bool>(), any::<bool>()), 1..4),
        prop::collection::vec(
            (
                0usize..4,
                ident(),
                prop::option::of(ident()),
                any::<bool>(),
                any::<bool>(),
            ),
            1..5,
        ),
        prop::collection::vec(
            (
                0usize..4,
                ident(),
                comp_op(),
                literal(),
                any::<bool>(),
                any::<bool>(),
            ),
            0..4,
        ),
    )
        .prop_map(|(name, ve, rels, attrs, conds)| {
            // FROM items with unique binding names F0, F1, …
            let from: Vec<FromItem> = rels
                .iter()
                .enumerate()
                .map(|(i, (rel, alias, rd, rr))| FromItem {
                    relation: rel.clone(),
                    alias: if *alias || rels.iter().filter(|x| x.0 == *rel).count() > 1 {
                        Some(format!("F{i}"))
                    } else {
                        None
                    },
                    evolution: RelEvolution {
                        dispensable: *rd,
                        replaceable: *rr,
                    },
                })
                .collect();
            // Deduplicate binding names (relation names may repeat).
            let mut from = from;
            let mut seen = std::collections::BTreeSet::new();
            for (i, f) in from.iter_mut().enumerate() {
                if !seen.insert(f.binding_name().to_owned()) {
                    f.alias = Some(format!("F{i}"));
                    seen.insert(f.binding_name().to_owned());
                }
            }
            let binding = |i: usize| from[i % from.len()].binding_name().to_owned();
            let select: Vec<SelectItem> = attrs
                .iter()
                .enumerate()
                .map(|(n, (b, attr, alias, ad, ar))| SelectItem {
                    attr: ColumnRef::qualified(binding(*b), attr.clone()),
                    // Unique output names via forced aliases.
                    alias: Some(alias.clone().unwrap_or_else(|| format!("Out{n}"))),
                    evolution: AttrEvolution {
                        dispensable: *ad,
                        replaceable: *ar,
                    },
                })
                .collect();
            // Ensure output names unique.
            let mut select = select;
            for (n, item) in select.iter_mut().enumerate() {
                item.alias = Some(format!("Out{n}"));
            }
            let conditions: Vec<ConditionItem> = conds
                .into_iter()
                .map(|(b, attr, op, lit, cd, cr)| ConditionItem {
                    clause: PrimitiveClause {
                        left: ColumnRef::qualified(binding(b), attr),
                        op,
                        right: Operand::Literal(lit),
                    },
                    evolution: CondEvolution {
                        dispensable: cd,
                        replaceable: cr,
                    },
                })
                .collect();
            ViewDef {
                name,
                column_names: None,
                ve,
                select,
                from,
                conditions,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rich_roundtrip(view in rich_view()) {
        let printed = view.to_string();
        let reparsed = parse_view(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&view, &reparsed, "printed:\n{}", printed);
        // And printing is a fixed point.
        prop_assert_eq!(printed, reparsed.to_string());
    }

    #[test]
    fn validation_accepts_generated_views(view in rich_view()) {
        // Every generated view is structurally valid: qualified columns,
        // unique bindings, unique outputs.
        let normalized = eve_esql::validate::validate(&view)
            .unwrap_or_else(|e| panic!("{e}\n{view}"));
        // Normalization of an already-qualified view is the identity.
        prop_assert_eq!(normalized, view);
    }

    #[test]
    fn parser_never_panics_on_mangled_input(view in rich_view(), cut in 0usize..200, junk in "[ -~]{0,6}") {
        // Truncate the valid text at an arbitrary byte boundary and splice
        // junk in; the parser must return Ok or Err, never panic.
        let mut printed = view.to_string();
        let cut = cut.min(printed.len());
        while !printed.is_char_boundary(cut) && cut > 0 { /* unreachable for ASCII */ }
        printed.truncate(cut);
        printed.push_str(&junk);
        let _ = parse_view(&printed);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_ascii(input in "[ -~]{0,80}") {
        let _ = parse_view(&input);
    }

    #[test]
    fn error_positions_are_in_range(input in "CREATE VIEW [A-Z]{1,3} AS SELECT [a-z.,( ]{0,20}") {
        if let Err(e) = parse_view(&input) {
            prop_assert!(e.line >= 1);
            prop_assert!(e.column >= 1);
            // Single-line inputs report line 1.
            prop_assert_eq!(e.line, 1);
        }
    }
}
