//! Property suite: pretty-printing a parsed E-SQL view and re-parsing it
//! yields an identical AST.
//!
//! The durable evolution store serializes view definitions, and humans
//! read the pretty-printed form in `show views` / log inspection — so
//! `Display` must be a faithful inverse of `parse_view` on every AST the
//! parser can produce. The generators below cover the parseable surface:
//! hyphenated identifiers, aliases, explicit column lists, every VE
//! spelling, all evolution-parameter combinations, and literals of every
//! type (negative ints, finite decimal floats, escaped-quote strings,
//! booleans).

use proptest::prelude::*;

use eve_esql::{
    parse_view, AttrEvolution, CondEvolution, ConditionItem, FromItem, RelEvolution, SelectItem,
    ViewDef, ViewExtent,
};
use eve_relational::{ColumnRef, CompOp, Operand, PrimitiveClause, Value};

/// Keywords and property names the grammar reserves (case-insensitively);
/// generated identifiers must avoid them, exactly as real schemas do.
const RESERVED: &[&str] = &[
    "CREATE", "VIEW", "AS", "SELECT", "FROM", "WHERE", "AND", "VE", "AD", "AR", "RD", "RR", "CD",
    "CR", "TRUE", "FALSE",
];

fn ident() -> impl Strategy<Value = String> {
    // Leading alphabetic, then alphanumerics/underscores/inner hyphens
    // (the lexer strips a *trailing* hyphen, so end on an alphanumeric).
    "[A-Za-z][A-Za-z0-9_-]{0,6}[A-Za-z0-9]"
        .prop_map(|s| s)
        .prop_filter("reserved word or trailing hyphen", |s| {
            !s.ends_with('-') && !RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k))
        })
}

fn attr_evolution() -> impl Strategy<Value = AttrEvolution> {
    (any::<bool>(), any::<bool>()).prop_map(|(d, r)| AttrEvolution {
        dispensable: d,
        replaceable: r,
    })
}

fn rel_evolution() -> impl Strategy<Value = RelEvolution> {
    (any::<bool>(), any::<bool>()).prop_map(|(d, r)| RelEvolution {
        dispensable: d,
        replaceable: r,
    })
}

fn cond_evolution() -> impl Strategy<Value = CondEvolution> {
    (any::<bool>(), any::<bool>()).prop_map(|(d, r)| CondEvolution {
        dispensable: d,
        replaceable: r,
    })
}

fn view_extent() -> impl Strategy<Value = ViewExtent> {
    prop_oneof![
        Just(ViewExtent::Approximate),
        Just(ViewExtent::Equal),
        Just(ViewExtent::Superset),
        Just(ViewExtent::Subset),
    ]
}

fn comp_op() -> impl Strategy<Value = CompOp> {
    // The E-SQL surface produces exactly the paper's five θ operators.
    prop_oneof![
        Just(CompOp::Lt),
        Just(CompOp::Le),
        Just(CompOp::Eq),
        Just(CompOp::Ge),
        Just(CompOp::Gt),
    ]
}

/// Literals whose `Display` form the lexer tokenizes back exactly:
/// decimal integers, halves (finite decimal expansion, no exponent
/// notation), `''`-escapable strings and booleans.
fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        // Odd sixteenths: always a finite decimal expansion with a
        // fractional part, so `Display` never collapses to an integer
        // spelling (the lexer would re-tokenize `1` as an Int).
        (-4000i64..4000).prop_map(|n| Value::Float((2 * n + 1) as f64 / 16.0)),
        // No `'` inside: the printer does not escape string quotes.
        "[a-z0-9 ]{0,8}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn column(binding: String) -> impl Strategy<Value = ColumnRef> {
    (Just(binding), ident(), any::<bool>()).prop_map(|(b, name, qualified)| {
        if qualified {
            ColumnRef::qualified(b, name)
        } else {
            ColumnRef::bare(name)
        }
    })
}

/// A full random-but-parseable view definition.
fn arbitrary_view() -> impl Strategy<Value = ViewDef> {
    let from_items =
        prop::collection::vec((ident(), prop::option::of(ident()), rel_evolution()), 1..4)
            .prop_filter("unique binding names", |items| {
                let mut seen = std::collections::BTreeSet::new();
                items.iter().all(|(rel, alias, _)| {
                    seen.insert(alias.clone().unwrap_or_else(|| rel.clone()))
                })
            });
    (ident(), view_extent(), from_items).prop_flat_map(|(name, ve, from_specs)| {
        let bindings: Vec<String> = from_specs
            .iter()
            .map(|(rel, alias, _)| alias.clone().unwrap_or_else(|| rel.clone()))
            .collect();
        let pick_binding = prop::sample::select(bindings);
        let select_item = (
            pick_binding.clone().prop_flat_map(column),
            prop::option::of(ident()),
            attr_evolution(),
        )
            .prop_map(|(attr, alias, evolution)| SelectItem {
                attr,
                alias,
                evolution,
            });
        let condition = (
            pick_binding.clone().prop_flat_map(column),
            comp_op(),
            prop_oneof![
                literal().prop_map(Operand::Literal),
                pick_binding.prop_flat_map(column).prop_map(Operand::Column),
            ],
            cond_evolution(),
        )
            .prop_map(|(left, op, right, evolution)| ConditionItem {
                clause: PrimitiveClause { left, op, right },
                evolution,
            });
        (
            Just(name),
            Just(ve),
            prop::collection::vec(select_item, 1..5),
            Just(from_specs),
            prop::collection::vec(condition, 0..4),
            any::<bool>(),
        )
            .prop_map(
                |(name, ve, select, from_specs, conditions, explicit_cols)| {
                    let column_names = if explicit_cols {
                        Some(
                            select
                                .iter()
                                .enumerate()
                                .map(|(i, _)| format!("Out{i}"))
                                .collect(),
                        )
                    } else {
                        None
                    };
                    ViewDef {
                        name,
                        column_names,
                        ve,
                        select,
                        from: from_specs
                            .into_iter()
                            .map(|(relation, alias, evolution)| FromItem {
                                relation,
                                alias,
                                evolution,
                            })
                            .collect(),
                        conditions,
                    }
                },
            )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(128)
    ))]

    /// Printing an AST and parsing the text reproduces the AST exactly.
    #[test]
    fn display_then_parse_is_identity(view in arbitrary_view()) {
        let printed = view.to_string();
        let reparsed = parse_view(&printed)
            .unwrap_or_else(|e| panic!("printed view failed to parse: {e}\n{printed}"));
        prop_assert_eq!(&reparsed, &view, "printed form:\n{}", printed);
    }

    /// Round-tripping is idempotent: a second print/parse cycle is stable
    /// (no drift between the printer and the parser's normalizations).
    #[test]
    fn reprint_is_stable(view in arbitrary_view()) {
        let once = view.to_string();
        let twice = parse_view(&once)
            .unwrap_or_else(|e| panic!("{e}\n{once}"))
            .to_string();
        prop_assert_eq!(once, twice);
    }

    /// Source text that parses round-trips through print+parse to the same
    /// AST — the "parsed, printed, re-parsed" triangle the store relies on.
    #[test]
    fn parse_print_parse_triangle(view in arbitrary_view()) {
        let source = view.to_string();
        let first = parse_view(&source).unwrap();
        let second = parse_view(&first.to_string()).unwrap();
        prop_assert_eq!(first, second);
    }
}
