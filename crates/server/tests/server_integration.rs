//! Integration suite for the multi-tenant server: sessions, per-tenant
//! isolation, admission control over the wire, and byte-identical
//! convergence of concurrent mutation streams against a serial oracle.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use eve_server::protocol::{RequestBody, ResponseBody};
use eve_server::warehouse::{AdmissionPolicy, TenantBudget, Warehouse};
use eve_server::{ErrorCode, Server, ServerConfig};
use eve_system::Shell;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eve-server-it-{}-{}-{tag}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The statement script a writer applies to its tenant; kept in one place
/// so the serial oracle replays exactly the same lines.
fn writer_script(salt: usize) -> Vec<String> {
    let mut lines = vec![
        "site 1 customers".to_owned(),
        "site 2 flights".to_owned(),
        "relation Customer @1 (Name:text, City:text)".to_owned(),
        "relation FlightRes @2 (PName:text, Dest:text)".to_owned(),
        "insert Customer ('ann', 'Boston')".to_owned(),
        "insert FlightRes ('ann', 'Asia')".to_owned(),
        "view CREATE VIEW V (VE = '~') AS SELECT C.Name FROM Customer C (RR = true), \
         FlightRes F WHERE (C.Name = F.PName) AND (F.Dest = 'Asia')"
            .to_owned(),
    ];
    for i in 0..6 {
        lines.push(format!("update FlightRes insert ('p{salt}-{i}', 'Asia')"));
        lines.push(format!("update Customer insert ('p{salt}-{i}', 'City{i}')"));
    }
    lines
}

#[test]
fn sessions_open_attach_and_close() {
    let root = scratch("sessions");
    let server = Server::start(
        Arc::new(Warehouse::open(&root).unwrap()),
        ServerConfig::default(),
    );

    let mut c = server.connect().unwrap();
    let session = c.open_session("alpha").unwrap();
    assert!(session > 0);
    match c.request(RequestBody::Attach).unwrap() {
        ResponseBody::Attached { tenant } => assert_eq!(tenant, "alpha"),
        other => panic!("{other:?}"),
    }
    // A second client gets a distinct session on the same tenant.
    let mut c2 = server.connect().unwrap();
    let session2 = c2.open_session("alpha").unwrap();
    assert_ne!(session, session2);
    // Close, then every session-scoped request is refused with a typed
    // error code.
    assert!(matches!(
        c.request(RequestBody::CloseSession).unwrap(),
        ResponseBody::Closed
    ));
    match c.request(RequestBody::Stats).unwrap() {
        ResponseBody::Err { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("{other:?}"),
    }
    // Unknown session ids (never opened) are equally refused.
    let mut c3 = server.connect().unwrap();
    match c3
        .call(&eve_server::Request {
            session: 999_999,
            body: RequestBody::Stats,
        })
        .unwrap()
        .body
    {
        ResponseBody::Err { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("{other:?}"),
    }
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn tenants_mutate_in_isolation_and_match_a_serial_oracle() {
    let root = scratch("isolation");
    let oracle_root = scratch("isolation-oracle");
    let server = Server::start(
        Arc::new(Warehouse::open(&root).unwrap()),
        ServerConfig {
            shards: 3,
            readers: 2,
        },
    );

    // Interleave two tenants' writers through the same server.
    let mut a = server.connect().unwrap();
    a.open_session("alpha").unwrap();
    let mut b = server.connect().unwrap();
    b.open_session("beta").unwrap();
    let script_a = writer_script(1);
    let script_b = writer_script(2);
    for i in 0..script_a.len().max(script_b.len()) {
        if let Some(line) = script_a.get(i) {
            match a
                .request(RequestBody::Statement { esql: line.clone() })
                .unwrap()
            {
                ResponseBody::Output { .. } => {}
                other => panic!("alpha `{line}`: {other:?}"),
            }
        }
        if let Some(line) = script_b.get(i) {
            match b
                .request(RequestBody::Statement { esql: line.clone() })
                .unwrap()
            {
                ResponseBody::Output { .. } => {}
                other => panic!("beta `{line}`: {other:?}"),
            }
        }
    }

    // Serial oracles: the same scripts through plain durable shells.
    for (name, script) in [("alpha", &script_a), ("beta", &script_b)] {
        let mut oracle = Shell::new();
        oracle
            .execute(&format!("open {}", oracle_root.join(name).display()))
            .unwrap();
        for line in script {
            oracle.execute(line).unwrap();
        }
        let server_fp = server.warehouse().existing(name).unwrap().fingerprint();
        assert_eq!(
            server_fp,
            oracle.engine().snapshot_state().to_bytes(),
            "tenant {name} diverged from serial application"
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&oracle_root).ok();
}

#[test]
fn admission_control_rejects_and_queues_over_the_wire() {
    let root = scratch("admission");
    let warehouse = Arc::new(Warehouse::open(&root).unwrap());
    // Pre-create tenants with tight budgets and opposite policies; the
    // setup script is 19 statements, so a budget of 19 I/O units is spent
    // exactly when the script finishes.
    let script = writer_script(0);
    let budget = TenantBudget {
        io: script.len() as u64,
        max_queue: 1,
        ..TenantBudget::default()
    };
    warehouse
        .tenant_with("strict", budget, AdmissionPolicy::Reject)
        .unwrap();
    warehouse
        .tenant_with("patient", budget, AdmissionPolicy::Queue)
        .unwrap();
    let server = Server::start(warehouse, ServerConfig::default());

    for tenant in ["strict", "patient"] {
        let mut c = server.connect().unwrap();
        c.open_session(tenant).unwrap();
        for line in &script {
            match c
                .request(RequestBody::Statement { esql: line.clone() })
                .unwrap()
            {
                ResponseBody::Output { .. } => {}
                other => panic!("{tenant} `{line}`: {other:?}"),
            }
        }
        // Budget spent: stats say so.
        match c.request(RequestBody::Stats).unwrap() {
            ResponseBody::Stats {
                io_used, io_budget, ..
            } => assert!(io_used >= io_budget, "{tenant}: {io_used}/{io_budget}"),
            other => panic!("{other:?}"),
        }
        let over = RequestBody::Statement {
            esql: "update FlightRes insert ('late', 'Asia')".into(),
        };
        let over2 = RequestBody::Statement {
            esql: "update FlightRes insert ('later', 'Asia')".into(),
        };
        if tenant == "strict" {
            match c.request(over).unwrap() {
                ResponseBody::Err { code, .. } => assert_eq!(code, ErrorCode::BudgetExceeded),
                other => panic!("{other:?}"),
            }
            // Reads still answer while over budget.
            match c.request(RequestBody::Query { view: "V".into() }).unwrap() {
                ResponseBody::Output { text } => assert!(text.contains("ann"), "{text}"),
                other => panic!("{other:?}"),
            }
        } else {
            match c.request(over).unwrap() {
                ResponseBody::Queued { position } => assert_eq!(position, 0),
                other => panic!("{other:?}"),
            }
            // max_queue = 1: the next one cannot even queue.
            match c.request(over2).unwrap() {
                ResponseBody::Err { code, .. } => assert_eq!(code, ErrorCode::QueueFull),
                other => panic!("{other:?}"),
            }
            // Reset drains the queued mutation into the engine.
            match c.request(RequestBody::ResetBudget).unwrap() {
                ResponseBody::BudgetReset { drained } => assert_eq!(drained, 1),
                other => panic!("{other:?}"),
            }
            // The drained FlightRes row joins into V once the matching
            // Customer rows exist (the fresh budget admits them directly);
            // the overflowed `later` reservation was refused, so no join
            // partner can make it appear.
            for name in ["late", "later"] {
                match c
                    .request(RequestBody::Statement {
                        esql: format!("update Customer insert ('{name}', 'Laterville')"),
                    })
                    .unwrap()
                {
                    ResponseBody::Output { .. } => {}
                    other => panic!("{other:?}"),
                }
            }
            match c.request(RequestBody::Query { view: "V".into() }).unwrap() {
                ResponseBody::Output { text } => {
                    assert!(text.contains("late"), "queued mutation applied: {text}");
                    assert!(!text.contains("later"), "overflowed mutation lost: {text}");
                }
                other => panic!("{other:?}"),
            }
        }
    }
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn apply_batches_and_statements_share_one_durable_history() {
    let root = scratch("apply");
    let server = Server::start(
        Arc::new(Warehouse::open(&root).unwrap()),
        ServerConfig::default(),
    );
    let mut c = server.connect().unwrap();
    c.open_session("mixed").unwrap();
    for line in [
        "site 1 s1",
        "relation R @1 (K:int, V:text)",
        "insert R (1, 'a')",
        "view CREATE VIEW V (VE = '~') AS SELECT R.K FROM R (RR = true)",
    ] {
        c.request(RequestBody::Statement { esql: line.into() })
            .unwrap();
    }
    // An op batch over the wire, like a log record's payload.
    match c
        .request(RequestBody::Apply {
            ops: vec![eve_sync::EvolutionOp::insert(
                "R",
                vec![eve_relational::tup![2, "b"], eve_relational::tup![3, "c"]],
            )],
        })
        .unwrap()
    {
        ResponseBody::Output { text } => assert!(text.contains("applied batch"), "{text}"),
        other => panic!("{other:?}"),
    }
    match c.request(RequestBody::Query { view: "V".into() }).unwrap() {
        ResponseBody::Output { text } => {
            assert!(text.contains('2') && text.contains('3'), "{text}");
        }
        other => panic!("{other:?}"),
    }

    // The whole mixed history is durable: reopen the warehouse and the
    // tenant recovers to the same bytes.
    let fp = server.warehouse().existing("mixed").unwrap().fingerprint();
    server.shutdown();
    let reopened = Warehouse::open(&root).unwrap();
    assert_eq!(reopened.tenant("mixed").unwrap().fingerprint(), fp);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn malformed_statements_come_back_as_typed_errors_not_dead_connections() {
    let root = scratch("badstmt");
    let server = Server::start(
        Arc::new(Warehouse::open(&root).unwrap()),
        ServerConfig::default(),
    );
    let mut c = server.connect().unwrap();
    c.open_session("t").unwrap();
    match c
        .request(RequestBody::Statement {
            esql: "frobnicate the warehouse".into(),
        })
        .unwrap()
    {
        ResponseBody::Err { code, detail } => {
            assert_eq!(code, ErrorCode::Engine);
            assert!(detail.contains("unknown"), "{detail}");
        }
        other => panic!("{other:?}"),
    }
    // The connection (and session) survive the failed statement.
    match c.request(RequestBody::Stats).unwrap() {
        ResponseBody::Stats { .. } => {}
        other => panic!("{other:?}"),
    }
    match c
        .request(RequestBody::Query {
            view: "NoSuchView".into(),
        })
        .unwrap()
    {
        ResponseBody::Err { code, .. } => assert_eq!(code, ErrorCode::Engine),
        other => panic!("{other:?}"),
    }
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn metrics_request_returns_server_and_engine_families() {
    let root = scratch("metrics");
    let server = Server::start(
        Arc::new(Warehouse::open(&root).unwrap()),
        ServerConfig::default(),
    );

    let mut c = server.connect().unwrap();
    c.open_session("obs").unwrap();
    for line in writer_script(0) {
        c.request(RequestBody::Statement { esql: line }).unwrap();
    }
    match c.request(RequestBody::Query { view: "V".into() }).unwrap() {
        ResponseBody::Output { .. } => {}
        other => panic!("{other:?}"),
    }

    let snap = c.metrics().unwrap();
    // Server-side families: the statements and the query were counted and
    // timed, per request type and per tenant.
    assert!(snap.counters["server.requests.statement"] >= 1, "{snap:?}");
    assert!(snap.counters["server.requests.query"] >= 1);
    assert!(snap.histograms["server.latency_us.query"].count() >= 1);
    assert!(snap.histograms["server.tenant.obs.latency_us"].count() >= 1);
    // Engine instance families merged into the same image.
    assert!(snap.counters.contains_key("mkb.index_hits"));
    assert!(snap.counters.contains_key("cache.rewrite_hits"));
    // The server's own registry only holds server.* names — everything
    // else came in through the merge with the global/engine snapshot.
    let local = server.metrics_registry().snapshot();
    assert!(local.counters.keys().all(|k| k.starts_with("server.")));
    assert!(local.histograms.keys().all(|k| k.starts_with("server.")));

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}
