//! Property suite for the serving layer's trust boundary: wire frames
//! and protocol payloads must roundtrip exactly, and every malformed
//! input — truncated frames, oversized declared lengths, CRC flips,
//! arbitrary garbage — must surface as a typed error, never a panic.

use proptest::prelude::*;

use eve_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, Request,
    RequestBody, Response, ResponseBody,
};
use eve_server::wire::{encode_frame, FrameReader, FRAME_HEADER, MAX_FRAME};
use eve_server::Error;
use eve_sync::EvolutionOp;

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// A stream of frames survives any chunking: payloads come back
    /// byte-identical and in order.
    #[test]
    fn frames_roundtrip_under_random_chunking(
        payloads in prop::collection::vec(
            prop::collection::vec(0u8..=255, 0..200), 1..8),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p).unwrap());
        }
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.feed(piece);
            while let Some(frame) = reader.next_frame().unwrap() {
                out.push(frame);
            }
        }
        prop_assert_eq!(out, payloads);
        prop_assert_eq!(reader.buffered(), 0);
    }

    /// Truncating a valid stream at any byte yields the intact prefix of
    /// frames and then "incomplete" — never an error, never a panic, and
    /// never a partial payload.
    #[test]
    fn truncated_streams_are_incomplete_not_corrupt(
        payloads in prop::collection::vec(
            prop::collection::vec(0u8..=255, 0..64), 1..5),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p).unwrap());
            boundaries.push(stream.len());
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((stream.len() as f64) * cut_fraction) as usize;
        let mut reader = FrameReader::new();
        reader.feed(&stream[..cut]);
        let mut out = Vec::new();
        while let Some(frame) = reader.next_frame().unwrap() {
            out.push(frame);
        }
        // Exactly the frames whose encoding fits entirely before the cut.
        let intact = boundaries.iter().filter(|b| **b <= cut).count();
        prop_assert_eq!(out.len(), intact);
        prop_assert_eq!(&out[..], &payloads[..intact]);
    }

    /// Flipping any single bit of a frame's CRC or payload is detected as
    /// a typed frame error (flips in the length prefix may instead leave
    /// the frame incomplete or oversized — also typed, never a panic).
    #[test]
    fn single_bit_flips_never_panic_and_corrupt_payloads_are_caught(
        payload in prop::collection::vec(0u8..=255, 1..128),
        byte_index in 0usize..1000,
        bit in 0u8..8,
    ) {
        let mut frame = encode_frame(&payload).unwrap();
        let idx = byte_index % frame.len();
        frame[idx] ^= 1 << bit;
        let mut reader = FrameReader::new();
        reader.feed(&frame);
        match reader.next_frame() {
            // A flip in the length prefix can make the frame "longer":
            // incomplete is acceptable. A flip that leaves the frame
            // complete must be caught by CRC (or the length cap).
            Ok(None) => prop_assert!(idx < 4, "only length flips may stall the frame"),
            Ok(Some(decoded)) => {
                // The flip must have been in the length prefix, shortening
                // the frame; the CRC then matched a *prefix* — impossible:
                // crc64 of a strict prefix differing payload cannot equal
                // the original unless the payload is unchanged.
                prop_assert_eq!(decoded, payload, "decoded payload must be unflipped");
            }
            Err(Error::Frame { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error type: {other:?}"),
        }
    }

    /// Declared lengths past the cap are rejected immediately, for every
    /// oversized value — the reader never buffers waiting for them.
    #[test]
    fn oversized_declared_lengths_are_rejected(excess in 1u64..u64::from(u32::MAX)) {
        let len = (MAX_FRAME as u64 + excess).min(u64::from(u32::MAX));
        let mut bad = Vec::new();
        #[allow(clippy::cast_possible_truncation)]
        bad.extend_from_slice(&(len as u32).to_le_bytes());
        bad.extend_from_slice(&0u64.to_le_bytes());
        bad.extend_from_slice(&[0xAB; 16]);
        let mut reader = FrameReader::new();
        reader.feed(&bad);
        let err = reader.next_frame().unwrap_err();
        prop_assert!(matches!(err, Error::Frame { .. }), "{err:?}");
    }

    /// Arbitrary garbage fed to the protocol decoders is a typed error,
    /// never a panic.
    #[test]
    fn protocol_decoders_never_panic_on_garbage(
        bytes in prop::collection::vec(0u8..=255, 0..256),
    ) {
        if let Err(e) = decode_request(&bytes) {
            prop_assert!(matches!(e, Error::Protocol { .. }), "{e:?}");
        }
        if let Err(e) = decode_response(&bytes) {
            prop_assert!(matches!(e, Error::Protocol { .. }), "{e:?}");
        }
    }

    /// Truncating a valid request payload at any point is a typed
    /// protocol error (or, for a lucky prefix, a different valid message
    /// — but never a panic).
    #[test]
    fn truncated_request_payloads_error_cleanly(
        session in 0u64..u64::MAX,
        tag in 0usize..5,
        cut_fraction in 0.0f64..1.0,
    ) {
        let body = request_body(tag);
        let bytes = encode_request(&Request { session, body });
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            // Shorter payloads either fail (usual) or decode to something
            // else (rare prefix luck); both are fine, panics are not.
            let _ = decode_request(&bytes[..cut]);
        }
    }
}

fn request_body(tag: usize) -> RequestBody {
    match tag {
        0 => RequestBody::OpenSession {
            tenant: "tenant-x".into(),
        },
        1 => RequestBody::Statement {
            esql: "view CREATE VIEW V (VE = '~') AS SELECT R.K FROM R (RR = true)".into(),
        },
        2 => RequestBody::Apply {
            ops: vec![EvolutionOp::insert(
                "R",
                vec![eve_relational::tup![1, "x"], eve_relational::tup![2, "y"]],
            )],
        },
        3 => RequestBody::Query { view: "V".into() },
        _ => RequestBody::ResetBudget,
    }
}

/// Exhaustive (non-property) roundtrips of every request and response
/// variant through encode → frame → reassemble → decode.
#[test]
fn every_protocol_variant_roundtrips_through_the_wire() {
    let requests = vec![
        Request {
            session: 0,
            body: RequestBody::OpenSession {
                tenant: "alpha".into(),
            },
        },
        Request {
            session: 7,
            body: RequestBody::Attach,
        },
        Request {
            session: 7,
            body: RequestBody::CloseSession,
        },
        Request {
            session: 7,
            body: RequestBody::Statement {
                esql: "site 1 s1".into(),
            },
        },
        Request {
            session: 7,
            body: RequestBody::Apply {
                ops: vec![
                    EvolutionOp::insert("R", vec![eve_relational::tup![1, "x"]]),
                    EvolutionOp::delete("R", vec![eve_relational::tup![2, "y"]]),
                ],
            },
        },
        Request {
            session: 7,
            body: RequestBody::Query { view: "V".into() },
        },
        Request {
            session: 7,
            body: RequestBody::Stats,
        },
        Request {
            session: 7,
            body: RequestBody::ResetBudget,
        },
        Request {
            session: 7,
            body: RequestBody::Metrics,
        },
    ];
    for req in &requests {
        let frame = encode_frame(&encode_request(req)).unwrap();
        let mut reader = FrameReader::new();
        reader.feed(&frame);
        let payload = reader.next_frame().unwrap().unwrap();
        let back = decode_request(&payload).unwrap();
        assert_eq!(back.session, req.session);
        assert_eq!(
            encode_request(&back),
            encode_request(req),
            "canonical re-encoding matches"
        );
    }

    let responses = vec![
        Response {
            session: 1,
            body: ResponseBody::SessionOpened { session: 1 },
        },
        Response {
            session: 1,
            body: ResponseBody::Attached {
                tenant: "alpha".into(),
            },
        },
        Response {
            session: 1,
            body: ResponseBody::Closed,
        },
        Response {
            session: 1,
            body: ResponseBody::Output {
                text: "3 rows".into(),
            },
        },
        Response {
            session: 1,
            body: ResponseBody::Queued { position: 4 },
        },
        Response {
            session: 1,
            body: ResponseBody::Stats {
                candidates_used: 10,
                io_used: 20,
                candidate_budget: 100,
                io_budget: 200,
                queued: 3,
                columnar_extents: 2,
                index_hits: 17,
                interned_symbols: 41,
                exec_parallelism: 4,
                exec_morsels: 97,
            },
        },
        Response {
            session: 1,
            body: ResponseBody::BudgetReset { drained: 5 },
        },
        Response {
            session: 1,
            body: ResponseBody::Err {
                code: ErrorCode::BudgetExceeded,
                detail: "over budget".into(),
            },
        },
        Response {
            session: 1,
            body: ResponseBody::Metrics {
                snapshot: {
                    let registry = eve_trace::Registry::new();
                    registry.counter("server.requests.query").add(12);
                    registry.gauge("server.sessions").set(3);
                    let h = registry.histogram("server.latency_us.query");
                    for v in [0, 1, 7, 130, 4096] {
                        h.record(v);
                    }
                    registry.snapshot()
                },
            },
        },
    ];
    for resp in &responses {
        let frame = encode_frame(&encode_response(resp)).unwrap();
        let mut reader = FrameReader::new();
        reader.feed(&frame);
        let payload = reader.next_frame().unwrap().unwrap();
        let back = decode_response(&payload).unwrap();
        assert_eq!(back.session, resp.session);
        assert_eq!(
            encode_response(&back),
            encode_response(resp),
            "canonical re-encoding matches"
        );
    }
}

/// The header itself truncated (0..FRAME_HEADER bytes) is always
/// "incomplete", mirroring the log's torn-tail semantics.
#[test]
fn sub_header_tails_are_incomplete() {
    let frame = encode_frame(b"payload").unwrap();
    for cut in 0..FRAME_HEADER {
        let mut reader = FrameReader::new();
        reader.feed(&frame[..cut]);
        assert!(reader.next_frame().unwrap().is_none(), "cut {cut}");
    }
}
