//! Session management and the worker topology.
//!
//! One **router** thread owns the session table and assigns session ids —
//! a deterministic counter, so a fixed request arrival order yields a
//! fixed id assignment. Mutations are dispatched by tenant hash onto a
//! fixed **shard**: every mutation for a tenant lands on the same
//! single-threaded worker, which is what makes per-tenant writes
//! serialized (and byte-identical to a serial application of the same
//! stream) while different tenants mutate in parallel. Reads go to a
//! separate **read pool** that takes the tenant shell's read lock, so
//! queries against one tenant run concurrently with each other and with
//! other tenants' writes.
//!
//! Clients talk to the router over the in-process duplex byte streams of
//! [`crate::wire`] — framed, CRC-checked request/response bytes, exactly
//! as a socket transport would carry them.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use eve_trace::{MetricsSnapshot, Registry};

use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, RequestBody,
    Response, ResponseBody,
};
use crate::warehouse::{Admitted, Mutation, Tenant, Warehouse};
use crate::wire::{duplex, WireEnd};
use crate::{Error, Result};

/// Worker topology knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Mutation shards (single-threaded each; a tenant maps to exactly
    /// one, so per-tenant mutations are serialized).
    pub shards: usize,
    /// Read-pool workers (concurrent; they only take read locks).
    pub readers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 4,
            readers: 4,
        }
    }
}

/// A unit of dispatched work: the decoded request plus where to send the
/// response bytes.
struct Job {
    session: u64,
    tenant: Arc<Tenant>,
    body: RequestBody,
    reply: Sender<Vec<u8>>,
    /// When the router decoded the request's frame — so the latency the
    /// server records includes queueing behind the shard/read pool, not
    /// just execution.
    received: Instant,
}

/// What a client connection sends to the router: raw frame bytes plus
/// the channel responses travel back on — or the server's own stop
/// signal. Clients hold sender clones, so the router cannot rely on
/// channel disconnection to learn the server is stopping.
enum Inbound {
    Frame {
        bytes: Vec<u8>,
        reply: Sender<Vec<u8>>,
    },
    Stop,
}

/// The running server. Dropping it (or calling [`Server::shutdown`])
/// stops the router and joins every worker.
#[derive(Debug)]
pub struct Server {
    warehouse: Arc<Warehouse>,
    metrics: Arc<Registry>,
    inbound_tx: Option<Sender<Inbound>>,
    router: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the router, shard workers and read pool over `warehouse`.
    #[must_use]
    pub fn start(warehouse: Arc<Warehouse>, config: ServerConfig) -> Server {
        let shards = config.shards.max(1);
        let readers = config.readers.max(1);
        let metrics = Arc::new(Registry::new());

        let mut shard_txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards + readers);
        for i in 0..shards {
            let (tx, rx) = channel::<Job>();
            shard_txs.push(tx);
            let registry = Arc::clone(&metrics);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("eve-shard-{i}"))
                    .spawn(move || shard_worker(&rx, &registry))
                    .expect("spawn shard worker"),
            );
        }
        let (read_tx, read_rx) = channel::<Job>();
        let read_rx = Arc::new(Mutex::new(read_rx));
        for i in 0..readers {
            let rx = Arc::clone(&read_rx);
            let registry = Arc::clone(&metrics);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("eve-reader-{i}"))
                    .spawn(move || read_worker(&rx, &registry))
                    .expect("spawn read worker"),
            );
        }

        let (inbound_tx, inbound_rx) = channel::<Inbound>();
        let router_warehouse = Arc::clone(&warehouse);
        let router_metrics = Arc::clone(&metrics);
        let router = std::thread::Builder::new()
            .name("eve-router".into())
            .spawn(move || {
                route(
                    &router_warehouse,
                    &router_metrics,
                    &inbound_rx,
                    &shard_txs,
                    &read_tx,
                )
            })
            .expect("spawn router");

        Server {
            warehouse,
            metrics,
            inbound_tx: Some(inbound_tx),
            router: Some(router),
            workers,
        }
    }

    /// The server's own metrics registry: per-request-type and per-tenant
    /// latency histograms (`server.latency_us.*`,
    /// `server.tenant.<name>.latency_us`) plus request/error counters,
    /// recorded from frame-decode to response-ready on the worker that
    /// executed the request.
    #[must_use]
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// The warehouse this server fronts.
    #[must_use]
    pub fn warehouse(&self) -> &Arc<Warehouse> {
        &self.warehouse
    }

    /// Opens a new client connection (in-process duplex transport).
    ///
    /// # Errors
    ///
    /// [`Error::Shutdown`] when the server is stopping.
    pub fn connect(&self) -> Result<Client> {
        let tx = self
            .inbound_tx
            .as_ref()
            .ok_or_else(|| Error::shutdown("server is stopping"))?
            .clone();
        let (client_end, server_end) = duplex();
        Ok(Client {
            wire: client_end,
            server_wire: server_end,
            inbound: tx,
            session: 0,
        })
    }

    /// Stops the router and joins every worker. In-flight requests are
    /// drained; new sends fail with [`Error::Shutdown`].
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // An explicit stop message ends the router loop (clients hold
        // sender clones, so mere disconnection never happens while any
        // client lives); the router then drops the shard/read senders,
        // ending every worker loop.
        if let Some(tx) = self.inbound_tx.take() {
            tx.send(Inbound::Stop).ok();
        }
        if let Some(router) = self.router.take() {
            router.join().ok();
        }
        for w in self.workers.drain(..) {
            w.join().ok();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// FNV-1a — a stable tenant→shard map with no per-process seed, so shard
/// assignment (and therefore mutation interleaving) is reproducible.
fn tenant_shard(name: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    usize::try_from(h % shards.max(1) as u64).expect("shard index fits usize")
}

fn send_response(reply: &Sender<Vec<u8>>, resp: &Response) {
    let payload = encode_response(resp);
    if let Ok(frame) = crate::wire::encode_frame(&payload) {
        // A vanished client is not a server error.
        reply.send(frame).ok();
    }
}

/// The request-type label used in `server.requests.<kind>` and
/// `server.latency_us.<kind>` metric names.
fn request_kind(body: &RequestBody) -> &'static str {
    match body {
        RequestBody::OpenSession { .. } => "open_session",
        RequestBody::Attach => "attach",
        RequestBody::CloseSession => "close_session",
        RequestBody::Statement { .. } => "statement",
        RequestBody::Apply { .. } => "apply",
        RequestBody::Query { .. } => "query",
        RequestBody::Stats => "stats",
        RequestBody::ResetBudget => "reset_budget",
        RequestBody::Metrics => "metrics",
    }
}

/// Records one served request: the request counter for its kind, the
/// kind's latency histogram, the tenant's latency histogram (when the
/// request resolved to a tenant) and the error counter when the response
/// was [`ResponseBody::Err`].
fn record_request(
    registry: &Registry,
    kind: &str,
    tenant: Option<&str>,
    received: Instant,
    is_err: bool,
) {
    let us = u64::try_from(received.elapsed().as_micros()).unwrap_or(u64::MAX);
    registry.counter(&format!("server.requests.{kind}")).inc();
    registry
        .histogram(&format!("server.latency_us.{kind}"))
        .record(us);
    if let Some(tenant) = tenant {
        registry
            .histogram(&format!("server.tenant.{tenant}.latency_us"))
            .record(us);
    }
    if is_err {
        registry.counter("server.errors").inc();
    }
}

#[allow(clippy::too_many_lines)]
fn route(
    warehouse: &Arc<Warehouse>,
    metrics: &Arc<Registry>,
    inbound: &Receiver<Inbound>,
    shard_txs: &[Sender<Job>],
    read_tx: &Sender<Job>,
) {
    let mut sessions: HashMap<u64, String> = HashMap::new();
    let mut next_session: u64 = 1;

    while let Ok(msg) = inbound.recv() {
        let Inbound::Frame { bytes, reply } = msg else {
            break;
        };
        // Each inbound message carries whole frames (the client's duplex
        // chunking was reassembled by its WireEnd peer buffer); still run
        // them through the frame reader so length and CRC are enforced at
        // the trust boundary.
        let frames = match crate::wire::FrameReader::decode_all(&bytes) {
            Ok(frames) => frames,
            Err(e) => {
                send_response(&reply, &Response::error(0, &e));
                continue;
            }
        };
        for frame in frames {
            let received = Instant::now();
            let req = match decode_request(&frame) {
                Ok(req) => req,
                Err(e) => {
                    send_response(&reply, &Response::error(0, &e));
                    metrics.counter("server.errors").inc();
                    continue;
                }
            };
            let kind = request_kind(&req.body);
            match req.body {
                RequestBody::OpenSession { tenant } => {
                    match warehouse.tenant(&tenant) {
                        Ok(_) => {
                            let session = next_session;
                            next_session += 1;
                            record_request(metrics, kind, Some(&tenant), received, false);
                            sessions.insert(session, tenant);
                            send_response(
                                &reply,
                                &Response {
                                    session,
                                    body: ResponseBody::SessionOpened { session },
                                },
                            );
                        }
                        Err(e) => {
                            record_request(metrics, kind, Some(&tenant), received, true);
                            send_response(&reply, &Response::error(0, &e));
                        }
                    }
                    continue;
                }
                RequestBody::Attach => {
                    let resp = match sessions.get(&req.session) {
                        Some(tenant) => Response {
                            session: req.session,
                            body: ResponseBody::Attached {
                                tenant: tenant.clone(),
                            },
                        },
                        None => Response::error(
                            req.session,
                            &Error::UnknownSession {
                                session: req.session,
                            },
                        ),
                    };
                    record_request(
                        metrics,
                        kind,
                        sessions.get(&req.session).map(String::as_str),
                        received,
                        !sessions.contains_key(&req.session),
                    );
                    send_response(&reply, &resp);
                    continue;
                }
                RequestBody::CloseSession => {
                    let closed = sessions.remove(&req.session);
                    let resp = if closed.is_some() {
                        Response {
                            session: req.session,
                            body: ResponseBody::Closed,
                        }
                    } else {
                        Response::error(
                            req.session,
                            &Error::UnknownSession {
                                session: req.session,
                            },
                        )
                    };
                    record_request(metrics, kind, closed.as_deref(), received, closed.is_none());
                    send_response(&reply, &resp);
                    continue;
                }
                body @ (RequestBody::Statement { .. }
                | RequestBody::Apply { .. }
                | RequestBody::Query { .. }
                | RequestBody::Stats
                | RequestBody::ResetBudget
                | RequestBody::Metrics) => {
                    let Some(tenant_name) = sessions.get(&req.session) else {
                        record_request(metrics, kind, None, received, true);
                        send_response(
                            &reply,
                            &Response::error(
                                req.session,
                                &Error::UnknownSession {
                                    session: req.session,
                                },
                            ),
                        );
                        continue;
                    };
                    let tenant = match warehouse.existing(tenant_name) {
                        Ok(t) => t,
                        Err(e) => {
                            record_request(metrics, kind, Some(tenant_name), received, true);
                            send_response(&reply, &Response::error(req.session, &e));
                            continue;
                        }
                    };
                    let is_read = matches!(
                        body,
                        RequestBody::Query { .. } | RequestBody::Stats | RequestBody::Metrics
                    );
                    let target = if is_read {
                        read_tx
                    } else {
                        &shard_txs[tenant_shard(tenant_name, shard_txs.len())]
                    };
                    let job = Job {
                        session: req.session,
                        tenant,
                        body,
                        reply: reply.clone(),
                        received,
                    };
                    if let Err(e) = target.send(job) {
                        send_response(
                            &e.0.reply.clone(),
                            &Response::error(e.0.session, &Error::shutdown("worker pool stopped")),
                        );
                    }
                }
            }
        }
    }
    // Router exit drops shard_txs/read_tx clones it owns; the original
    // senders live in this stack frame and die here, ending the workers.
}

fn execute_job(tenant: &Tenant, body: RequestBody, registry: &Registry) -> Result<ResponseBody> {
    let admitted_to_body = |admitted| match admitted {
        Admitted::Executed(text) => ResponseBody::Output { text },
        Admitted::Queued(position) => ResponseBody::Queued {
            position: position as u64,
        },
    };
    match body {
        RequestBody::Statement { esql } => Ok(admitted_to_body(
            tenant.execute_mutation(Mutation::Statement(esql))?,
        )),
        RequestBody::Apply { ops } => Ok(admitted_to_body(
            tenant.execute_mutation(Mutation::Apply(ops))?,
        )),
        RequestBody::ResetBudget => {
            let drained = tenant.reset_budget()?;
            Ok(ResponseBody::BudgetReset {
                drained: drained as u64,
            })
        }
        RequestBody::Query { view } => {
            let text = tenant.query(&view)?;
            Ok(ResponseBody::Output { text })
        }
        RequestBody::Stats => {
            let s = tenant.stats();
            Ok(ResponseBody::Stats {
                candidates_used: s.candidates_used,
                io_used: s.io_used,
                candidate_budget: s.candidate_budget,
                io_budget: s.io_budget,
                queued: s.queued as u64,
                columnar_extents: s.columnar_extents,
                index_hits: s.index_hits,
                interned_symbols: s.interned_symbols,
                exec_parallelism: s.exec_parallelism,
                exec_morsels: s.exec_morsels,
            })
        }
        RequestBody::Metrics => {
            // Process-global families + this tenant's per-instance engine
            // counters + the server's own request histograms, merged into
            // one image. The read lock pins the engine while its instance
            // registry is snapshotted.
            let engine_snapshot = tenant.read().engine().metrics_snapshot();
            Ok(ResponseBody::Metrics {
                snapshot: engine_snapshot.merge(registry.snapshot()),
            })
        }
        RequestBody::OpenSession { .. } | RequestBody::Attach | RequestBody::CloseSession => {
            Err(Error::protocol("session ops are handled by the router"))
        }
    }
}

fn run_and_reply(job: Job, registry: &Registry) {
    let Job {
        session,
        tenant,
        body,
        reply,
        received,
    } = job;
    let kind = request_kind(&body);
    let resp = match execute_job(&tenant, body, registry) {
        Ok(body) => Response { session, body },
        Err(e) => Response::error(session, &e),
    };
    record_request(
        registry,
        kind,
        Some(tenant.name()),
        received,
        matches!(resp.body, ResponseBody::Err { .. }),
    );
    send_response(&reply, &resp);
}

fn shard_worker(rx: &Receiver<Job>, registry: &Registry) {
    while let Ok(job) = rx.recv() {
        run_and_reply(job, registry);
    }
}

fn read_worker(rx: &Arc<Mutex<Receiver<Job>>>, registry: &Registry) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match job {
            Ok(job) => run_and_reply(job, registry),
            Err(_) => break,
        }
    }
}

/// A client connection: a duplex wire to the router plus the session id
/// state most callers want managed for them.
#[derive(Debug)]
pub struct Client {
    wire: WireEnd,
    /// The server-side end of the duplex pair: the client forwards the
    /// reassembled frame bytes it produces to the router. Holding it here
    /// keeps the pair's lifetime tied to the client.
    server_wire: WireEnd,
    inbound: Sender<Inbound>,
    session: u64,
}

impl Client {
    /// The current session id (0 before [`Client::open_session`]).
    #[must_use]
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Wire errors, [`Error::Shutdown`] when the server stopped.
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        // Client → wire: the request travels as split frame chunks and is
        // reassembled by the server-side wire end, exercising the real
        // framing path in both directions.
        self.wire.send_frame(&encode_request(req))?;
        let frame = self.server_wire.recv_frame()?;
        let rewrapped = crate::wire::encode_frame(&frame)?;
        let (reply_tx, reply_rx) = channel::<Vec<u8>>();
        self.inbound
            .send(Inbound::Frame {
                bytes: rewrapped,
                reply: reply_tx,
            })
            .map_err(|_| Error::shutdown("server is stopping"))?;
        let resp_frame = reply_rx
            .recv()
            .map_err(|_| Error::shutdown("server stopped before responding"))?;
        let payloads = crate::wire::FrameReader::decode_all(&resp_frame)?;
        let payload = payloads
            .into_iter()
            .next()
            .ok_or_else(|| Error::frame("empty response"))?;
        decode_response(&payload)
    }

    /// Opens a session on `tenant` and remembers its id.
    ///
    /// # Errors
    ///
    /// Wire failures or a typed error response.
    pub fn open_session(&mut self, tenant: &str) -> Result<u64> {
        let resp = self.call(&Request {
            session: 0,
            body: RequestBody::OpenSession {
                tenant: tenant.to_owned(),
            },
        })?;
        match resp.body {
            ResponseBody::SessionOpened { session } => {
                self.session = session;
                Ok(session)
            }
            ResponseBody::Err { detail, .. } => Err(Error::Engine { detail }),
            other => Err(Error::protocol(format!(
                "unexpected response to OpenSession: {other:?}"
            ))),
        }
    }

    /// Issues a request body on the current session.
    ///
    /// # Errors
    ///
    /// Wire failures or a typed error response.
    pub fn request(&mut self, body: RequestBody) -> Result<ResponseBody> {
        let resp = self.call(&Request {
            session: self.session,
            body,
        })?;
        Ok(resp.body)
    }

    /// Fetches the merged metrics snapshot for the session's tenant:
    /// process-global families, the tenant engine's instance counters and
    /// the server's request latency histograms.
    ///
    /// # Errors
    ///
    /// Wire failures or a typed error response.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot> {
        match self.request(RequestBody::Metrics)? {
            ResponseBody::Metrics { snapshot } => Ok(snapshot),
            ResponseBody::Err { detail, .. } => Err(Error::Engine { detail }),
            other => Err(Error::protocol(format!(
                "unexpected response to Metrics: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_shard_is_stable_and_in_range() {
        for shards in [1usize, 2, 7, 16] {
            for name in ["alpha", "beta", "tenant-00", "tenant-63"] {
                let s = tenant_shard(name, shards);
                assert!(s < shards);
                assert_eq!(s, tenant_shard(name, shards), "stable");
            }
        }
    }
}
