//! The wire layer: length-prefixed, CRC-framed messages plus the
//! in-process duplex "sockets" the load generator drives clients over.
//!
//! A wire frame is byte-for-byte the evolution log's record framing:
//!
//! ```text
//! frame := len u32 LE ++ crc64 u64 LE ++ payload   (len = payload bytes)
//! ```
//!
//! Reusing the log's framing means the server inherits its corruption
//! story: a truncated header or payload is indistinguishable from a torn
//! log tail and is reported — never panicked on — and a flipped payload
//! bit fails the CRC before the payload reaches the protocol decoder.
//! Unlike the log (whose segments are bounded by rotation), the wire cap
//! is explicit: a frame declaring more than [`MAX_FRAME`] bytes is
//! rejected immediately, so a corrupt length prefix cannot make the
//! reader buffer gigabytes waiting for a payload that never comes.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

use eve_store::checksum::crc64;

use crate::{Error, Result};

/// Frame header size: `len u32 ++ crc64 u64`.
pub const FRAME_HEADER: usize = 12;

/// Hard cap on a single frame's payload. Requests carry statements and
/// evolution-op batches; responses carry view extents — 64 MiB is far
/// above any legitimate message and small enough that a corrupted length
/// prefix fails fast instead of stalling the stream.
pub const MAX_FRAME: usize = 64 << 20;

/// Encodes one payload as a wire frame.
///
/// # Errors
///
/// [`Error::Frame`] when the payload exceeds [`MAX_FRAME`].
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>> {
    if payload.len() > MAX_FRAME {
        return Err(Error::frame(format!(
            "payload of {} bytes exceeds the {MAX_FRAME}-byte frame cap",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("< MAX_FRAME")
            .to_le_bytes(),
    );
    out.extend_from_slice(&crc64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental frame reassembler: feed it stream chunks in any split —
/// byte by byte, frame by frame, or many frames at once — and pull
/// complete, CRC-verified payloads out.
///
/// The reader mirrors the log's torn-tail scan: an incomplete frame is
/// simply "not yet" (`Ok(None)`), while a frame that can never complete —
/// oversized declared length, CRC mismatch — is a typed [`Error::Frame`],
/// after which the stream is unusable (framing has lost synchronization).
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    #[must_use]
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends raw stream bytes to the reassembly buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet returned as frames.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete frame's payload, if one is buffered.
    ///
    /// # Errors
    ///
    /// [`Error::Frame`] when the buffered header declares a payload past
    /// [`MAX_FRAME`] or the payload fails its CRC — both mean the stream
    /// is corrupt, not merely incomplete.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let Some(len_bytes) = self.buf.get(..4) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(Error::frame(format!(
                "declared payload of {len} bytes exceeds the {MAX_FRAME}-byte frame cap"
            )));
        }
        let Some(crc_bytes) = self.buf.get(4..FRAME_HEADER) else {
            return Ok(None);
        };
        let crc = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
        let end = FRAME_HEADER + len;
        let Some(payload) = self.buf.get(FRAME_HEADER..end) else {
            return Ok(None);
        };
        if crc64(payload) != crc {
            return Err(Error::frame(format!(
                "payload of {len} bytes failed its CRC (expected {crc:#018x})"
            )));
        }
        let payload = payload.to_vec();
        self.buf.drain(..end);
        Ok(Some(payload))
    }

    /// Decodes every complete frame in `bytes` (which must contain only
    /// whole frames — leftover bytes are a framing error, distinguishing
    /// a datagram-style message from a stream still in flight).
    ///
    /// # Errors
    ///
    /// [`Error::Frame`] on any malformed frame or trailing garbage.
    pub fn decode_all(bytes: &[u8]) -> Result<Vec<Vec<u8>>> {
        let mut reader = FrameReader::new();
        reader.feed(bytes);
        let mut frames = Vec::new();
        while let Some(frame) = reader.next_frame()? {
            frames.push(frame);
        }
        if reader.buffered() > 0 {
            return Err(Error::frame(format!(
                "{} trailing bytes after the last complete frame",
                reader.buffered()
            )));
        }
        Ok(frames)
    }
}

/// One end of an in-process duplex byte stream — the stand-in for a TCP
/// connection that lets the load generator open thousands of client
/// connections without sockets. Bytes written on one end arrive on the
/// other in order, in whatever chunks the writer chose, so the receiving
/// side genuinely exercises [`FrameReader`] reassembly.
#[derive(Debug)]
pub struct WireEnd {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    reader: FrameReader,
}

/// Creates a connected pair of stream ends.
#[must_use]
pub fn duplex() -> (WireEnd, WireEnd) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        WireEnd {
            tx: a_tx,
            rx: a_rx,
            reader: FrameReader::new(),
        },
        WireEnd {
            tx: b_tx,
            rx: b_rx,
            reader: FrameReader::new(),
        },
    )
}

impl WireEnd {
    /// Frames `payload` and writes it to the peer — deliberately split
    /// across two chunks when possible, so the peer's [`FrameReader`]
    /// always reassembles rather than getting lucky with whole frames.
    ///
    /// # Errors
    ///
    /// [`Error::Frame`] on oversized payloads, [`Error::Shutdown`] when
    /// the peer end is gone.
    pub fn send_frame(&self, payload: &[u8]) -> Result<()> {
        let frame = encode_frame(payload)?;
        let gone = |_| Error::shutdown("peer connection closed");
        if frame.len() > FRAME_HEADER {
            self.tx.send(frame[..FRAME_HEADER].to_vec()).map_err(gone)?;
            self.tx.send(frame[FRAME_HEADER..].to_vec()).map_err(gone)
        } else {
            self.tx.send(frame).map_err(gone)
        }
    }

    /// Blocks until one complete frame arrives and returns its payload.
    ///
    /// # Errors
    ///
    /// [`Error::Frame`] on stream corruption, [`Error::Shutdown`] when
    /// the peer hangs up mid-frame.
    pub fn recv_frame(&mut self) -> Result<Vec<u8>> {
        loop {
            if let Some(frame) = self.reader.next_frame()? {
                return Ok(frame);
            }
            let chunk = self
                .rx
                .recv()
                .map_err(|_| Error::shutdown("peer connection closed"))?;
            self.reader.feed(&chunk);
        }
    }

    /// Like [`WireEnd::recv_frame`] with a deadline; `Ok(None)` on
    /// timeout.
    ///
    /// # Errors
    ///
    /// [`Error::Frame`] on stream corruption, [`Error::Shutdown`] when
    /// the peer hangs up mid-frame.
    pub fn recv_frame_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(frame) = self.reader.next_frame()? {
                return Ok(Some(frame));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(chunk) => self.reader.feed(&chunk),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => return Ok(None),
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(Error::shutdown("peer connection closed"))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_arbitrary_chunking() {
        let payloads: Vec<Vec<u8>> =
            vec![vec![], vec![0x42], (0..=255u8).collect(), vec![0xAB; 4096]];
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p).unwrap());
        }
        // Feed one byte at a time: worst-case reassembly.
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for b in &stream {
            reader.feed(std::slice::from_ref(b));
            while let Some(frame) = reader.next_frame().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out, payloads);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn oversized_declared_length_is_a_typed_error_not_a_buffer_bomb() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.extend_from_slice(&0u64.to_le_bytes());
        let mut reader = FrameReader::new();
        reader.feed(&bad);
        let err = reader.next_frame().unwrap_err();
        assert!(matches!(err, Error::Frame { .. }), "{err:?}");
        assert!(err.to_string().contains("frame cap"), "{err}");
    }

    #[test]
    fn crc_flip_is_detected() {
        let mut frame = encode_frame(b"hello warehouse").unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        let mut reader = FrameReader::new();
        reader.feed(&frame);
        let err = reader.next_frame().unwrap_err();
        assert!(matches!(err, Error::Frame { .. }), "{err:?}");
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn duplex_delivers_frames_both_ways() {
        let (a, mut b) = duplex();
        a.send_frame(b"ping").unwrap();
        assert_eq!(b.recv_frame().unwrap(), b"ping");
        b.send_frame(b"pong").unwrap();
        let mut a = a;
        assert_eq!(a.recv_frame().unwrap(), b"pong");
        drop(b);
        let err = a.send_frame(b"into the void").unwrap_err();
        assert!(matches!(err, Error::Shutdown { .. }), "{err:?}");
    }
}
