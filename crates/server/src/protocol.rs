//! The request/response protocol carried inside wire frames, encoded with
//! the store's canonical codec — the same [`eve_store::Codec`] machinery
//! that serializes log records and snapshots, so a statement travelling
//! to the server and an evolution op landing in a `seg-*.evl` segment
//! share one encoding discipline (and one corruption story: every decode
//! failure is a typed error, never a panic).

use eve_store::{from_bytes, to_bytes, vec_decode, vec_encode, Codec, Dec, Enc};
use eve_sync::EvolutionOp;

use crate::{Error, Result};

/// One client request: the session it belongs to plus the operation.
/// Session 0 is the "no session yet" id used by
/// [`RequestBody::OpenSession`].
#[derive(Debug)]
pub struct Request {
    /// Session id (0 until a session is opened).
    pub session: u64,
    /// The operation.
    pub body: RequestBody,
}

/// The operations a client can request.
#[derive(Debug)]
pub enum RequestBody {
    /// Open a session bound to `tenant`, creating the tenant's warehouse
    /// on first use. Answered with [`ResponseBody::SessionOpened`].
    OpenSession {
        /// Tenant name (one durable store directory per tenant).
        tenant: String,
    },
    /// Re-attach to an existing session (e.g. after a client reconnect):
    /// answers with the tenant the session is bound to.
    Attach,
    /// Close the request's session.
    CloseSession,
    /// Execute one shell statement (E-SQL view definitions, updates,
    /// schema changes, …) against the session's tenant. Mutating
    /// statements are serialized per tenant and subject to admission
    /// control.
    Statement {
        /// The statement line, in shell syntax.
        esql: String,
    },
    /// Apply a batch of evolution ops — the same payload a log record
    /// carries — against the session's tenant.
    Apply {
        /// The batch.
        ops: Vec<EvolutionOp>,
    },
    /// Evaluate a view and return its extent.
    Query {
        /// View name.
        view: String,
    },
    /// The tenant's admission/budget counters.
    Stats,
    /// Zero the tenant's budget usage and drain its deferred-mutation
    /// queue (applying the queued work, in arrival order).
    ResetBudget,
    /// A full metrics image: the process-global registry merged with the
    /// session tenant's engine telemetry and the server's own request
    /// latency histograms. Answered with [`ResponseBody::Metrics`].
    Metrics,
}

/// One server response, echoing the session it answers.
#[derive(Debug)]
pub struct Response {
    /// The session the response belongs to.
    pub session: u64,
    /// The payload.
    pub body: ResponseBody,
}

/// Response payloads.
#[derive(Debug)]
pub enum ResponseBody {
    /// A session was opened.
    SessionOpened {
        /// The new session id (never 0).
        session: u64,
    },
    /// [`RequestBody::Attach`] answer: the session's tenant.
    Attached {
        /// Tenant name.
        tenant: String,
    },
    /// The session was closed.
    Closed,
    /// A statement, query or apply completed; the display text.
    Output {
        /// Human-readable result (shell output or view extent).
        text: String,
    },
    /// The mutation was admitted into the tenant's deferred queue
    /// (admission policy [`crate::AdmissionPolicy::Queue`], budget
    /// spent); it will apply on the next budget reset.
    Queued {
        /// Position in the deferred queue (0 = next to drain).
        position: u64,
    },
    /// [`RequestBody::Stats`] answer.
    Stats {
        /// QC candidates spent since the last reset.
        candidates_used: u64,
        /// I/O blocks spent since the last reset.
        io_used: u64,
        /// Configured candidate budget.
        candidate_budget: u64,
        /// Configured I/O budget.
        io_budget: u64,
        /// Mutations waiting in the deferred queue.
        queued: u64,
        /// Relation extents with a materialized columnar image.
        columnar_extents: u64,
        /// Secondary-index lookups answered from an index.
        index_hits: u64,
        /// Distinct strings in the interning pool.
        interned_symbols: u64,
        /// Intra-query worker threads the tenant's reader pool may use.
        exec_parallelism: u64,
        /// Morsels dispatched by the parallel executor.
        exec_morsels: u64,
    },
    /// [`RequestBody::ResetBudget`] answer.
    BudgetReset {
        /// Deferred mutations drained and applied by the reset.
        drained: u64,
    },
    /// [`RequestBody::Metrics`] answer: the merged metrics image.
    Metrics {
        /// Counters, gauges and histograms at the time of the request.
        snapshot: eve_trace::MetricsSnapshot,
    },
    /// The request failed; `code` is machine-matchable, `detail` human-
    /// readable.
    Err {
        /// The error class.
        code: ErrorCode,
        /// Explanation.
        detail: String,
    },
}

/// Machine-readable error classes carried in [`ResponseBody::Err`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control rejected the mutation: budget spent.
    BudgetExceeded,
    /// The deferred queue is at capacity.
    QueueFull,
    /// The tenant's store is locked by another handle.
    Busy,
    /// The tenant's durable host is poisoned; checkpoint to heal.
    Poisoned,
    /// The server is shutting down.
    Shutdown,
    /// Unknown tenant.
    UnknownTenant,
    /// Unknown or closed session.
    UnknownSession,
    /// The request frame or payload was malformed.
    Malformed,
    /// Any other engine/store failure.
    Engine,
}

impl ErrorCode {
    /// Maps a server error to its wire code.
    #[must_use]
    pub fn of(err: &Error) -> ErrorCode {
        match err {
            Error::BudgetExceeded { .. } => ErrorCode::BudgetExceeded,
            Error::QueueFull { .. } => ErrorCode::QueueFull,
            Error::Busy { .. } => ErrorCode::Busy,
            Error::Poisoned { .. } => ErrorCode::Poisoned,
            Error::Shutdown { .. } => ErrorCode::Shutdown,
            Error::UnknownTenant { .. } => ErrorCode::UnknownTenant,
            Error::UnknownSession { .. } => ErrorCode::UnknownSession,
            Error::Frame { .. } | Error::Protocol { .. } => ErrorCode::Malformed,
            Error::Engine { .. } => ErrorCode::Engine,
        }
    }
}

impl Response {
    /// The error response for `err`, echoing `session`.
    #[must_use]
    pub fn error(session: u64, err: &Error) -> Response {
        Response {
            session,
            body: ResponseBody::Err {
                code: ErrorCode::of(err),
                detail: err.to_string(),
            },
        }
    }
}

impl Codec for ErrorCode {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            ErrorCode::BudgetExceeded => 0,
            ErrorCode::QueueFull => 1,
            ErrorCode::Busy => 2,
            ErrorCode::Poisoned => 3,
            ErrorCode::Shutdown => 4,
            ErrorCode::UnknownTenant => 5,
            ErrorCode::UnknownSession => 6,
            ErrorCode::Malformed => 7,
            ErrorCode::Engine => 8,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> eve_store::Result<ErrorCode> {
        Ok(match dec.u8()? {
            0 => ErrorCode::BudgetExceeded,
            1 => ErrorCode::QueueFull,
            2 => ErrorCode::Busy,
            3 => ErrorCode::Poisoned,
            4 => ErrorCode::Shutdown,
            5 => ErrorCode::UnknownTenant,
            6 => ErrorCode::UnknownSession,
            7 => ErrorCode::Malformed,
            8 => ErrorCode::Engine,
            other => {
                return Err(eve_store::Error::corrupt(format!(
                    "invalid ErrorCode tag {other}"
                )))
            }
        })
    }
}

impl Codec for RequestBody {
    fn encode(&self, enc: &mut Enc) {
        match self {
            RequestBody::OpenSession { tenant } => {
                enc.u8(0);
                enc.str(tenant);
            }
            RequestBody::Attach => enc.u8(1),
            RequestBody::CloseSession => enc.u8(2),
            RequestBody::Statement { esql } => {
                enc.u8(3);
                enc.str(esql);
            }
            RequestBody::Apply { ops } => {
                enc.u8(4);
                vec_encode(ops, enc);
            }
            RequestBody::Query { view } => {
                enc.u8(5);
                enc.str(view);
            }
            RequestBody::Stats => enc.u8(6),
            RequestBody::ResetBudget => enc.u8(7),
            RequestBody::Metrics => enc.u8(8),
        }
    }

    fn decode(dec: &mut Dec<'_>) -> eve_store::Result<RequestBody> {
        Ok(match dec.u8()? {
            0 => RequestBody::OpenSession { tenant: dec.str()? },
            1 => RequestBody::Attach,
            2 => RequestBody::CloseSession,
            3 => RequestBody::Statement { esql: dec.str()? },
            4 => RequestBody::Apply {
                ops: vec_decode(dec)?,
            },
            5 => RequestBody::Query { view: dec.str()? },
            6 => RequestBody::Stats,
            7 => RequestBody::ResetBudget,
            8 => RequestBody::Metrics,
            other => {
                return Err(eve_store::Error::corrupt(format!(
                    "invalid RequestBody tag {other}"
                )))
            }
        })
    }
}

impl Codec for Request {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.session);
        self.body.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> eve_store::Result<Request> {
        Ok(Request {
            session: dec.u64()?,
            body: RequestBody::decode(dec)?,
        })
    }
}

impl Codec for ResponseBody {
    fn encode(&self, enc: &mut Enc) {
        match self {
            ResponseBody::SessionOpened { session } => {
                enc.u8(0);
                enc.u64(*session);
            }
            ResponseBody::Attached { tenant } => {
                enc.u8(1);
                enc.str(tenant);
            }
            ResponseBody::Closed => enc.u8(2),
            ResponseBody::Output { text } => {
                enc.u8(3);
                enc.str(text);
            }
            ResponseBody::Queued { position } => {
                enc.u8(4);
                enc.u64(*position);
            }
            ResponseBody::Stats {
                candidates_used,
                io_used,
                candidate_budget,
                io_budget,
                queued,
                columnar_extents,
                index_hits,
                interned_symbols,
                exec_parallelism,
                exec_morsels,
            } => {
                enc.u8(5);
                enc.u64(*candidates_used);
                enc.u64(*io_used);
                enc.u64(*candidate_budget);
                enc.u64(*io_budget);
                enc.u64(*queued);
                enc.u64(*columnar_extents);
                enc.u64(*index_hits);
                enc.u64(*interned_symbols);
                enc.u64(*exec_parallelism);
                enc.u64(*exec_morsels);
            }
            ResponseBody::BudgetReset { drained } => {
                enc.u8(6);
                enc.u64(*drained);
            }
            ResponseBody::Err { code, detail } => {
                enc.u8(7);
                code.encode(enc);
                enc.str(detail);
            }
            ResponseBody::Metrics { snapshot } => {
                enc.u8(8);
                encode_snapshot(snapshot, enc);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> eve_store::Result<ResponseBody> {
        Ok(match dec.u8()? {
            0 => ResponseBody::SessionOpened {
                session: dec.u64()?,
            },
            1 => ResponseBody::Attached { tenant: dec.str()? },
            2 => ResponseBody::Closed,
            3 => ResponseBody::Output { text: dec.str()? },
            4 => ResponseBody::Queued {
                position: dec.u64()?,
            },
            5 => ResponseBody::Stats {
                candidates_used: dec.u64()?,
                io_used: dec.u64()?,
                candidate_budget: dec.u64()?,
                io_budget: dec.u64()?,
                queued: dec.u64()?,
                columnar_extents: dec.u64()?,
                index_hits: dec.u64()?,
                interned_symbols: dec.u64()?,
                exec_parallelism: dec.u64()?,
                exec_morsels: dec.u64()?,
            },
            6 => ResponseBody::BudgetReset {
                drained: dec.u64()?,
            },
            7 => ResponseBody::Err {
                code: ErrorCode::decode(dec)?,
                detail: dec.str()?,
            },
            8 => ResponseBody::Metrics {
                snapshot: decode_snapshot(dec)?,
            },
            other => {
                return Err(eve_store::Error::corrupt(format!(
                    "invalid ResponseBody tag {other}"
                )))
            }
        })
    }
}

/// Wire layout for a [`eve_trace::MetricsSnapshot`]: three length-
/// prefixed name→value tables (counters, gauges, histograms), the
/// histogram buckets written in full so merged quantiles survive the
/// round-trip exactly. `MetricsSnapshot` lives in `eve-trace`, which
/// stays codec-free by design, so the encoding lives here with the rest
/// of the protocol.
fn encode_snapshot(snapshot: &eve_trace::MetricsSnapshot, enc: &mut Enc) {
    enc.usize(snapshot.counters.len());
    for (name, v) in &snapshot.counters {
        enc.str(name);
        enc.u64(*v);
    }
    enc.usize(snapshot.gauges.len());
    for (name, v) in &snapshot.gauges {
        enc.str(name);
        enc.i64(*v);
    }
    enc.usize(snapshot.histograms.len());
    for (name, h) in &snapshot.histograms {
        enc.str(name);
        enc.u64(h.sum);
        for b in &h.buckets {
            enc.u64(*b);
        }
    }
}

fn decode_snapshot(dec: &mut Dec<'_>) -> eve_store::Result<eve_trace::MetricsSnapshot> {
    let mut snapshot = eve_trace::MetricsSnapshot::default();
    for _ in 0..dec.len()? {
        let name = dec.str()?;
        snapshot.counters.insert(name, dec.u64()?);
    }
    for _ in 0..dec.len()? {
        let name = dec.str()?;
        snapshot.gauges.insert(name, dec.i64()?);
    }
    for _ in 0..dec.len()? {
        let name = dec.str()?;
        let mut h = eve_trace::HistogramSnapshot {
            sum: dec.u64()?,
            ..eve_trace::HistogramSnapshot::default()
        };
        for b in &mut h.buckets {
            *b = dec.u64()?;
        }
        snapshot.histograms.insert(name, h);
    }
    Ok(snapshot)
}

impl Codec for Response {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.session);
        self.body.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> eve_store::Result<Response> {
        Ok(Response {
            session: dec.u64()?,
            body: ResponseBody::decode(dec)?,
        })
    }
}

/// Encodes a request as a frame payload.
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    to_bytes(req)
}

/// Decodes a request frame payload.
///
/// # Errors
///
/// [`Error::Protocol`] on any malformed payload.
pub fn decode_request(bytes: &[u8]) -> Result<Request> {
    from_bytes(bytes).map_err(|e| Error::protocol(e.to_string()))
}

/// Encodes a response as a frame payload.
#[must_use]
pub fn encode_response(resp: &Response) -> Vec<u8> {
    to_bytes(resp)
}

/// Decodes a response frame payload.
///
/// # Errors
///
/// [`Error::Protocol`] on any malformed payload.
pub fn decode_response(bytes: &[u8]) -> Result<Response> {
    from_bytes(bytes).map_err(|e| Error::protocol(e.to_string()))
}
