//! The multi-tenant warehouse server: many independent EVE warehouses —
//! one durable engine per tenant directory — multiplexed behind a
//! length-prefixed binary wire protocol, a sharded worker pool, and
//! per-tenant admission control.
//!
//! The layers, bottom up:
//!
//! - [`wire`] — the frame codec shared with the evolution log: every
//!   request and response travels as `len u32 LE ++ crc64 u64 LE ++
//!   payload`, the exact framing of `seg-*.evl` records, so a corrupted
//!   or truncated frame is detected the same way a torn log tail is.
//!   In-process duplex channels stand in for sockets: the load generator
//!   drives thousands of simulated clients without leaving the process.
//! - [`protocol`] — [`protocol::Request`] / [`protocol::Response`] frame
//!   payloads, encoded with the store's canonical [`eve_store::Codec`]
//!   (the same machinery that encodes log records and snapshots).
//! - [`warehouse`] — the tenant registry: each tenant is an
//!   [`eve_system::Shell`] over its own [`eve_system::DurableEngine`],
//!   plus a QC budget ([`warehouse::TenantBudget`]) and an admission
//!   policy that rejects or queues mutations once the budget is spent.
//! - [`server`] — session management and the worker topology: one router
//!   thread assigns sessions and dispatches deterministically, mutations
//!   for a tenant always land on the same shard worker (per-tenant
//!   serialized writes), and reads fan out to a concurrent read pool.

pub mod protocol;
pub mod server;
pub mod warehouse;
pub mod wire;

pub use protocol::{ErrorCode, Request, RequestBody, Response, ResponseBody};
pub use server::{Client, Server, ServerConfig};
pub use warehouse::{AdmissionPolicy, TenantBudget, TenantStats, Warehouse};
pub use wire::{FrameReader, MAX_FRAME};

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A malformed wire frame: truncated header, declared length past the
    /// frame cap, or a CRC mismatch. The connection's stream can no
    /// longer be trusted.
    Frame {
        /// Explanation.
        detail: String,
    },
    /// A frame decoded, but its payload is not a valid protocol message.
    Protocol {
        /// Explanation.
        detail: String,
    },
    /// The named tenant does not exist (and the request does not create
    /// tenants).
    UnknownTenant {
        /// Tenant name as received.
        tenant: String,
    },
    /// The request referenced a session id that was never opened or was
    /// already closed.
    UnknownSession {
        /// Session id as received.
        session: u64,
    },
    /// Admission control refused the mutation: the tenant spent its
    /// candidate/IO budget and its policy is to reject.
    BudgetExceeded {
        /// Tenant name.
        tenant: String,
        /// What was exceeded, with the numbers.
        detail: String,
    },
    /// Admission control could not even queue the mutation: the tenant's
    /// deferred queue is at capacity.
    QueueFull {
        /// Tenant name.
        tenant: String,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The tenant's store directory is locked by another handle.
    Busy {
        /// Explanation, including the lock path.
        detail: String,
    },
    /// The tenant's durable host is poisoned (store behind the live
    /// engine); mutations fail closed until a checkpoint heals it.
    Poisoned {
        /// Explanation.
        detail: String,
    },
    /// The server is shutting down (or already gone).
    Shutdown {
        /// Explanation.
        detail: String,
    },
    /// An engine/store failure surfaced while executing the request.
    Engine {
        /// Explanation.
        detail: String,
    },
}

impl Error {
    pub(crate) fn frame(detail: impl Into<String>) -> Error {
        Error::Frame {
            detail: detail.into(),
        }
    }

    pub(crate) fn protocol(detail: impl Into<String>) -> Error {
        Error::Protocol {
            detail: detail.into(),
        }
    }

    pub(crate) fn shutdown(detail: impl Into<String>) -> Error {
        Error::Shutdown {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Frame { detail } => write!(f, "wire frame error: {detail}"),
            Error::Protocol { detail } => write!(f, "protocol error: {detail}"),
            Error::UnknownTenant { tenant } => write!(f, "unknown tenant `{tenant}`"),
            Error::UnknownSession { session } => write!(f, "unknown session {session}"),
            Error::BudgetExceeded { tenant, detail } => {
                write!(f, "tenant `{tenant}` over budget: {detail}")
            }
            Error::QueueFull { tenant, capacity } => write!(
                f,
                "tenant `{tenant}` deferred queue full ({capacity} entries) — \
                 reset the budget or drain the queue"
            ),
            Error::Busy { detail } => write!(f, "{detail}"),
            Error::Poisoned { detail } => write!(f, "{detail}"),
            Error::Shutdown { detail } => write!(f, "server shut down: {detail}"),
            Error::Engine { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<eve_system::Error> for Error {
    fn from(e: eve_system::Error) -> Error {
        match e {
            eve_system::Error::Busy { detail } => Error::Busy { detail },
            eve_system::Error::Poisoned { detail } => Error::Poisoned { detail },
            other => Error::Engine {
                detail: other.to_string(),
            },
        }
    }
}

impl From<eve_store::Error> for Error {
    fn from(e: eve_store::Error) -> Error {
        match e {
            eve_store::Error::Busy { .. } => Error::Busy {
                detail: e.to_string(),
            },
            eve_store::Error::Shutdown { .. } => Error::Shutdown {
                detail: e.to_string(),
            },
            other => Error::Protocol {
                detail: other.to_string(),
            },
        }
    }
}
