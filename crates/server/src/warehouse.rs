//! The tenant registry: many independent warehouses behind one server.
//!
//! Each tenant owns a directory under the warehouse root holding its
//! durable evolution store, wrapped in an [`eve_system::Shell`] so the
//! wire protocol's statements execute exactly like interactive shell
//! lines. Admission control sits in front of every mutation: a tenant
//! has a QC budget — rewrite-search candidates and I/O blocks — and once
//! the budget is spent its policy decides whether further mutations are
//! rejected outright or parked in a bounded deferred queue that drains
//! (in arrival order) on the next budget reset. Reads are never gated:
//! budget exhaustion degrades a tenant to read-only, it does not black-
//! hole it.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

use eve_relational::ExecOptions;
use eve_sync::EvolutionOp;
use eve_system::{DurableEngine, Shell};

use crate::{Error, Result};

/// A tenant's admission budget. Defaults are effectively unlimited —
/// budgets are opt-in per tenant.
#[derive(Debug, Clone, Copy)]
pub struct TenantBudget {
    /// QC rewrite-search candidates the tenant may spend between resets.
    pub candidates: u64,
    /// I/O blocks the tenant may spend between resets.
    pub io: u64,
    /// Capacity of the deferred-mutation queue under
    /// [`AdmissionPolicy::Queue`].
    pub max_queue: usize,
}

impl Default for TenantBudget {
    fn default() -> TenantBudget {
        TenantBudget {
            candidates: u64::MAX,
            io: u64::MAX,
            max_queue: 64,
        }
    }
}

/// What happens to a mutation that arrives after the budget is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse with [`Error::BudgetExceeded`].
    Reject,
    /// Park it in the deferred queue (up to `max_queue`), to be applied
    /// by the next [`Tenant::reset_budget`].
    Queue,
}

/// A tenant's admission counters, as reported over the wire, plus the
/// columnar-layer counters of its engine (aggregated under the same read
/// lock the reader pool queries through).
#[derive(Debug, Clone, Copy)]
pub struct TenantStats {
    /// Candidates spent since the last reset.
    pub candidates_used: u64,
    /// I/O blocks spent since the last reset.
    pub io_used: u64,
    /// Configured candidate budget.
    pub candidate_budget: u64,
    /// Configured I/O budget.
    pub io_budget: u64,
    /// Mutations waiting in the deferred queue.
    pub queued: usize,
    /// Relation extents with a materialized columnar image.
    pub columnar_extents: u64,
    /// Secondary-index lookups answered from an index.
    pub index_hits: u64,
    /// Distinct strings in the global interning pool.
    pub interned_symbols: u64,
    /// Intra-query worker threads this tenant's reader pool may use.
    pub exec_parallelism: u64,
    /// Morsels dispatched by the parallel executor (process-wide).
    pub exec_morsels: u64,
}

/// A mutation as admission control sees it.
#[derive(Debug)]
pub enum Mutation {
    /// One shell statement line.
    Statement(String),
    /// A batch of evolution ops.
    Apply(Vec<EvolutionOp>),
}

/// The outcome of an admitted mutation.
#[derive(Debug)]
pub enum Admitted {
    /// Executed now; the display output.
    Executed(String),
    /// Parked in the deferred queue at this position.
    Queued(usize),
}

#[derive(Debug, Default)]
struct AdmissionState {
    candidates_used: u64,
    io_used: u64,
    deferred: VecDeque<Mutation>,
}

/// One tenant: a shell over a durable engine, plus admission state.
///
/// The shell lives under an `RwLock` — mutations take the write lock (and
/// are additionally serialized by the server's shard routing), queries
/// take read locks and run concurrently.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    shell: RwLock<Shell>,
    budget: TenantBudget,
    policy: AdmissionPolicy,
    state: Mutex<AdmissionState>,
}

impl Tenant {
    /// The tenant's name (its directory under the warehouse root).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Read access to the tenant's shell (concurrent with other readers).
    ///
    /// # Panics
    ///
    /// When a writer panicked while holding the lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, Shell> {
        self.shell.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The canonical byte fingerprint of the tenant's engine state —
    /// what "byte-identical to a serial application" is checked against.
    #[must_use]
    pub fn fingerprint(&self) -> Vec<u8> {
        self.read().engine().snapshot_state().to_bytes()
    }

    /// Current admission counters.
    #[must_use]
    pub fn stats(&self) -> TenantStats {
        let shell = self.read();
        let cl = shell.engine().column_layer_stats();
        let parallelism = shell.engine().exec_options.parallelism;
        drop(shell);
        let st = lock(&self.state);
        TenantStats {
            candidates_used: st.candidates_used,
            io_used: st.io_used,
            candidate_budget: self.budget.candidates,
            io_budget: self.budget.io,
            queued: st.deferred.len(),
            columnar_extents: cl.columnar_built as u64,
            index_hits: cl.index.hits,
            interned_symbols: cl.intern.symbols,
            exec_parallelism: parallelism as u64,
            exec_morsels: cl.exec.morsels,
        }
    }

    /// Evaluates a view under a read lock.
    ///
    /// # Errors
    ///
    /// Unknown view.
    pub fn query(&self, view: &str) -> Result<String> {
        let shell = self.read();
        let mv = shell.engine().view(view)?;
        Ok(mv.extent.distinct().to_string())
    }

    fn over_budget(&self, st: &AdmissionState) -> Option<String> {
        if st.candidates_used >= self.budget.candidates {
            return Some(format!(
                "{} of {} QC candidates spent",
                st.candidates_used, self.budget.candidates
            ));
        }
        if st.io_used >= self.budget.io {
            return Some(format!(
                "{} of {} I/O blocks spent",
                st.io_used, self.budget.io
            ));
        }
        None
    }

    /// Runs one mutation through admission control: execute it when the
    /// budget allows, otherwise reject or queue per the tenant's policy.
    ///
    /// # Errors
    ///
    /// [`Error::BudgetExceeded`] / [`Error::QueueFull`] from admission,
    /// or any engine/store failure from execution.
    pub fn execute_mutation(&self, mutation: Mutation) -> Result<Admitted> {
        {
            let mut st = lock(&self.state);
            if let Some(detail) = self.over_budget(&st) {
                match self.policy {
                    AdmissionPolicy::Reject => {
                        return Err(Error::BudgetExceeded {
                            tenant: self.name.clone(),
                            detail,
                        })
                    }
                    AdmissionPolicy::Queue => {
                        if st.deferred.len() >= self.budget.max_queue {
                            return Err(Error::QueueFull {
                                tenant: self.name.clone(),
                                capacity: self.budget.max_queue,
                            });
                        }
                        let position = st.deferred.len();
                        st.deferred.push_back(mutation);
                        return Ok(Admitted::Queued(position));
                    }
                }
            }
        }
        let output = self.run_now(mutation)?;
        Ok(Admitted::Executed(output))
    }

    /// Executes a mutation immediately (admission already decided),
    /// charging its candidate and I/O cost to the budget.
    fn run_now(&self, mutation: Mutation) -> Result<String> {
        let mut shell = self.shell.write().unwrap_or_else(|e| e.into_inner());
        let io_before = shell.engine().total_io();
        let (output, candidates) = match mutation {
            Mutation::Statement(line) => (shell.execute(&line)?, 0),
            Mutation::Apply(ops) => {
                let outcome = shell.durable_mut()?.apply_batch(ops)?;
                let candidates: u64 = outcome
                    .reports
                    .iter()
                    .map(|r| u64::try_from(r.candidates).unwrap_or(u64::MAX))
                    .sum();
                let text = format!(
                    "applied batch: {} traces, {} reports, {} candidates",
                    outcome.traces.len(),
                    outcome.reports.len(),
                    candidates
                );
                (text, candidates)
            }
        };
        let io_after = shell.engine().total_io();
        drop(shell);
        let mut st = lock(&self.state);
        st.candidates_used = st.candidates_used.saturating_add(candidates);
        // Every executed mutation costs at least one I/O unit — its log
        // append — on top of the engine's measured block I/O, so a stream
        // of tiny mutations cannot run forever on a finite budget.
        st.io_used = st
            .io_used
            .saturating_add(io_after.saturating_sub(io_before).max(1));
        Ok(output)
    }

    /// Zeroes the budget counters and drains the deferred queue, applying
    /// each parked mutation in arrival order (their cost accrues against
    /// the fresh budget). Returns how many were drained.
    ///
    /// # Errors
    ///
    /// The first engine/store failure while draining (the failing
    /// mutation and everything behind it stay queued).
    pub fn reset_budget(&self) -> Result<usize> {
        let pending = {
            let mut st = lock(&self.state);
            st.candidates_used = 0;
            st.io_used = 0;
            std::mem::take(&mut st.deferred)
        };
        let total = pending.len();
        let mut drained = 0usize;
        let mut pending = pending;
        while let Some(mutation) = pending.pop_front() {
            match self.run_now(mutation) {
                Ok(_) => drained += 1,
                Err(e) => {
                    // Put the unprocessed tail back (the failed mutation
                    // is consumed — retrying it would fail identically).
                    let mut st = lock(&self.state);
                    while let Some(m) = pending.pop_back() {
                        st.deferred.push_front(m);
                    }
                    drop(st);
                    debug_assert!(drained <= total);
                    return Err(e);
                }
            }
        }
        Ok(drained)
    }
}

fn lock(state: &Mutex<AdmissionState>) -> std::sync::MutexGuard<'_, AdmissionState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

/// The registry: tenants by name, each backed by `root/<name>`.
#[derive(Debug)]
pub struct Warehouse {
    root: PathBuf,
    default_budget: TenantBudget,
    default_policy: AdmissionPolicy,
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
}

impl Warehouse {
    /// Opens (creating if needed) a warehouse root directory. Tenants are
    /// attached lazily on first use.
    ///
    /// # Errors
    ///
    /// I/O failures creating the root.
    pub fn open(root: impl Into<PathBuf>) -> Result<Warehouse> {
        Warehouse::with_defaults(root, TenantBudget::default(), AdmissionPolicy::Reject)
    }

    /// Like [`Warehouse::open`] with explicit defaults for tenants
    /// created afterwards.
    ///
    /// # Errors
    ///
    /// I/O failures creating the root.
    pub fn with_defaults(
        root: impl Into<PathBuf>,
        budget: TenantBudget,
        policy: AdmissionPolicy,
    ) -> Result<Warehouse> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| Error::Engine {
            detail: format!("cannot create warehouse root {}: {e}", root.display()),
        })?;
        Ok(Warehouse {
            root,
            default_budget: budget,
            default_policy: policy,
            tenants: RwLock::new(BTreeMap::new()),
        })
    }

    /// The warehouse root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn tenants_read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<Tenant>>> {
        self.tenants.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Names of every attached tenant.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants_read().keys().cloned().collect()
    }

    /// An already-attached tenant.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTenant`] when `name` was never attached.
    pub fn existing(&self, name: &str) -> Result<Arc<Tenant>> {
        self.tenants_read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownTenant {
                tenant: name.to_owned(),
            })
    }

    /// Gets or creates the tenant `name` with the warehouse defaults:
    /// recovers `root/<name>` when a store exists there, bootstraps a
    /// fresh one otherwise.
    ///
    /// # Errors
    ///
    /// Invalid names (anything that is not `[A-Za-z0-9_-]+` — tenant
    /// names are directory names, so separators are refused), store
    /// lock contention ([`Error::Busy`]) and I/O failures.
    pub fn tenant(&self, name: &str) -> Result<Arc<Tenant>> {
        self.tenant_with(name, self.default_budget, self.default_policy)
    }

    /// Gets or creates the tenant `name` with an explicit budget and
    /// policy (existing tenants keep their configuration).
    ///
    /// # Errors
    ///
    /// As for [`Warehouse::tenant`].
    pub fn tenant_with(
        &self,
        name: &str,
        budget: TenantBudget,
        policy: AdmissionPolicy,
    ) -> Result<Arc<Tenant>> {
        self.tenant_with_exec(name, budget, policy, ExecOptions::default())
    }

    /// Gets or creates the tenant `name` with an explicit budget, policy
    /// and intra-query execution options (existing tenants keep their
    /// configuration). Parallelism is a reader-pool tuning knob only:
    /// admission control still charges the same QC candidates and I/O
    /// blocks whether a query runs serial or morsel-parallel, and the
    /// engine fingerprint is byte-identical either way.
    ///
    /// # Errors
    ///
    /// As for [`Warehouse::tenant`].
    pub fn tenant_with_exec(
        &self,
        name: &str,
        budget: TenantBudget,
        policy: AdmissionPolicy,
        exec: ExecOptions,
    ) -> Result<Arc<Tenant>> {
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(Error::protocol(format!(
                "invalid tenant name `{name}`: tenant names are directory names \
                 ([A-Za-z0-9_-]+)"
            )));
        }
        if let Some(t) = self.tenants_read().get(name) {
            return Ok(Arc::clone(t));
        }
        let mut tenants = self.tenants.write().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = tenants.get(name) {
            return Ok(Arc::clone(t));
        }
        let dir = self.root.join(name);
        let durable = if eve_store::EvolutionStore::exists(&dir)? {
            DurableEngine::open(&dir)?.0
        } else {
            DurableEngine::create(&dir)?
        };
        let mut shell = Shell::with_durable(durable);
        shell.engine_mut().exec_options = exec;
        let tenant = Arc::new(Tenant {
            name: name.to_owned(),
            shell: RwLock::new(shell),
            budget,
            policy,
            state: Mutex::new(AdmissionState::default()),
        });
        tenants.insert(name.to_owned(), Arc::clone(&tenant));
        Ok(tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "eve-warehouse-tests-{}-{}-{tag}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn tenants_are_isolated_directories() {
        let root = scratch("isolated");
        let wh = Warehouse::open(&root).unwrap();
        let a = wh.tenant("alpha").unwrap();
        let b = wh.tenant("beta").unwrap();
        a.execute_mutation(Mutation::Statement("site 1 s1".into()))
            .unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(root.join("alpha").join("store.lock").exists());
        assert!(root.join("beta").is_dir());
        assert_eq!(wh.tenant_names(), vec!["alpha", "beta"]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn parallelism_leaves_io_accounting_and_fingerprint_unchanged() {
        let root = scratch("parallel");
        let wh = Warehouse::open(&root).unwrap();
        let run = |name: &str, exec: ExecOptions| {
            let t = wh
                .tenant_with_exec(name, TenantBudget::default(), AdmissionPolicy::Reject, exec)
                .unwrap();
            for line in [
                "site 1 s1",
                "relation R @1 (K:int, V:text)",
                "insert R (1, 'a')",
                "insert R (2, 'b')",
                "view CREATE VIEW V (VE = '~') AS SELECT R.K FROM R (RR = true)",
                "update R insert (3, 'c')",
            ] {
                t.execute_mutation(Mutation::Statement(line.into()))
                    .unwrap();
            }
            (t.stats(), t.query("V").unwrap(), t.fingerprint())
        };
        let (serial, serial_out, serial_fp) = run("serial", ExecOptions::serial());
        let (par, par_out, par_fp) = run("parallel", ExecOptions::with_parallelism(4));
        // Parallelism is a reader-pool knob: admission charges the same
        // I/O and candidates, and the engine state is byte-identical.
        assert_eq!(serial.io_used, par.io_used);
        assert_eq!(serial.candidates_used, par.candidates_used);
        assert_eq!(serial_out, par_out);
        assert_eq!(serial_fp, par_fp);
        assert_eq!(serial.exec_parallelism, 1);
        assert_eq!(par.exec_parallelism, 4);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn invalid_tenant_names_are_refused() {
        let root = scratch("names");
        let wh = Warehouse::open(&root).unwrap();
        for bad in ["", "../escape", "a/b", "a b", "dot.dot"] {
            let err = wh.tenant(bad).unwrap_err();
            assert!(matches!(err, Error::Protocol { .. }), "{bad}: {err:?}");
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reject_policy_refuses_mutations_once_budget_is_spent() {
        let root = scratch("reject");
        let wh = Warehouse::open(&root).unwrap();
        // Five statements of setup spend the whole budget (each executed
        // mutation charges at least one I/O unit).
        let budget = TenantBudget {
            io: 5,
            ..TenantBudget::default()
        };
        let t = wh
            .tenant_with("miser", budget, AdmissionPolicy::Reject)
            .unwrap();
        // Burn the I/O budget with real work.
        for line in [
            "site 1 s1",
            "relation R @1 (K:int, V:text)",
            "insert R (1, 'a')",
            "view CREATE VIEW V (VE = '~') AS SELECT R.K FROM R (RR = true)",
            "update R insert (2, 'b')",
        ] {
            t.execute_mutation(Mutation::Statement(line.into()))
                .unwrap();
        }
        assert!(t.stats().io_used >= 5);
        let err = t
            .execute_mutation(Mutation::Statement("update R insert (3, 'c')".into()))
            .unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { .. }), "{err:?}");
        // Reads keep working while the tenant is over budget.
        assert!(t.query("V").unwrap().contains('1'));
        // Reset restores write admission.
        assert_eq!(t.reset_budget().unwrap(), 0);
        t.execute_mutation(Mutation::Statement("update R insert (3, 'c')".into()))
            .unwrap();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn queue_policy_defers_until_reset_and_bounds_the_queue() {
        let root = scratch("queue");
        let wh = Warehouse::open(&root).unwrap();
        let budget = TenantBudget {
            io: 5,
            max_queue: 2,
            ..TenantBudget::default()
        };
        let t = wh
            .tenant_with("patient", budget, AdmissionPolicy::Queue)
            .unwrap();
        for line in [
            "site 1 s1",
            "relation R @1 (K:int)",
            "insert R (1)",
            "view CREATE VIEW V (VE = '~') AS SELECT R.K FROM R (RR = true)",
            "update R insert (2)",
        ] {
            t.execute_mutation(Mutation::Statement(line.into()))
                .unwrap();
        }
        assert!(t.stats().io_used >= 5, "budget spent: {:?}", t.stats());
        // Over budget: mutations queue in order, up to max_queue.
        let a = t
            .execute_mutation(Mutation::Statement("update R insert (3)".into()))
            .unwrap();
        assert!(matches!(a, Admitted::Queued(0)), "{a:?}");
        let b = t
            .execute_mutation(Mutation::Statement("update R insert (4)".into()))
            .unwrap();
        assert!(matches!(b, Admitted::Queued(1)), "{b:?}");
        let err = t
            .execute_mutation(Mutation::Statement("update R insert (5)".into()))
            .unwrap_err();
        assert!(
            matches!(err, Error::QueueFull { capacity: 2, .. }),
            "{err:?}"
        );
        assert_eq!(t.stats().queued, 2);
        // The queued mutations did NOT touch the engine yet.
        assert!(!t.query("V").unwrap().contains('3'));
        // Reset drains the queue in arrival order.
        assert_eq!(t.reset_budget().unwrap(), 2);
        assert_eq!(t.stats().queued, 0);
        let v = t.query("V").unwrap();
        assert!(v.contains('3') && v.contains('4'), "{v}");
        assert!(!v.contains('5'), "rejected mutation must not re-appear");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopening_a_warehouse_recovers_tenant_state() {
        let root = scratch("recover");
        let fp = {
            let wh = Warehouse::open(&root).unwrap();
            let t = wh.tenant("durable").unwrap();
            for line in ["site 1 s1", "relation R @1 (K:int)", "insert R (7)"] {
                t.execute_mutation(Mutation::Statement(line.into()))
                    .unwrap();
            }
            t.fingerprint()
        };
        let wh = Warehouse::open(&root).unwrap();
        let t = wh.tenant("durable").unwrap();
        assert_eq!(t.fingerprint(), fp, "recovered tenant is byte-identical");
        std::fs::remove_dir_all(&root).ok();
    }
}
