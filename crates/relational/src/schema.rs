//! Schemas and column references.
//!
//! The paper works with relations `IS.R(A_1, …, A_n)` (Eq. 3) and view queries
//! referencing attributes as `R.A`. A [`ColumnRef`] is an optionally-qualified
//! attribute name; a [`Schema`] is an ordered list of typed, sized columns with
//! unambiguous lookup.

use std::fmt;

use crate::error::{Error, Result};
use crate::types::DataType;

/// An optionally qualified column reference, e.g. `R.A` or just `A`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Relation qualifier (alias or relation name), if any.
    pub qualifier: Option<String>,
    /// Attribute name.
    pub name: String,
}

impl ColumnRef {
    /// Builds an unqualified reference.
    #[must_use]
    pub fn bare(name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Builds a qualified reference `qualifier.name`.
    #[must_use]
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Parses `"R.A"` into a qualified and `"A"` into a bare reference.
    #[must_use]
    pub fn parse(s: &str) -> ColumnRef {
        match s.split_once('.') {
            Some((q, n)) => ColumnRef::qualified(q, n),
            None => ColumnRef::bare(s),
        }
    }

    /// Whether this reference matches a column declared as
    /// `declared_qualifier.declared_name`.
    ///
    /// A bare reference matches on name alone; a qualified reference requires
    /// the qualifier to match as well.
    #[must_use]
    pub fn matches(&self, declared_qualifier: Option<&str>, declared_name: &str) -> bool {
        if self.name != declared_name {
            return false;
        }
        match (&self.qualifier, declared_qualifier) {
            (None, _) => true,
            (Some(q), Some(dq)) => q == dq,
            (Some(_), None) => false,
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// A column declaration: reference, type and byte size.
///
/// The byte size corresponds to the paper's `s_{R.A}` statistic (§6.1),
/// registered in the MKB and used by the transfer cost factor `CF_T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column identity within the schema.
    pub column: ColumnRef,
    /// Data type.
    pub ty: DataType,
    /// Storage / transfer size in bytes.
    pub byte_size: u32,
}

impl ColumnDef {
    /// Builds a column with the type's default byte size.
    #[must_use]
    pub fn new(column: ColumnRef, ty: DataType) -> ColumnDef {
        ColumnDef {
            column,
            ty,
            byte_size: ty.default_byte_size(),
        }
    }

    /// Builds a column with an explicit byte size.
    #[must_use]
    pub fn sized(column: ColumnRef, ty: DataType, byte_size: u32) -> ColumnDef {
        ColumnDef {
            column,
            ty,
            byte_size,
        }
    }
}

/// An ordered relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema from column definitions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateColumn`] if two columns share the same
    /// qualified identity.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            for other in &columns[..i] {
                if other.column == c.column {
                    return Err(Error::DuplicateColumn {
                        column: c.column.to_string(),
                    });
                }
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor: `(name, type)` pairs, all bare, default sizes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateColumn`] on repeated names.
    pub fn of(pairs: &[(&str, DataType)]) -> Result<Schema> {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| ColumnDef::new(ColumnRef::bare(*n), *t))
                .collect(),
        )
    }

    /// Number of columns.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The column definitions, in order.
    #[must_use]
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Total tuple width in bytes (the paper's `s_R`, §6.3: "sum of the length
    /// of attributes in bytes").
    #[must_use]
    pub fn tuple_byte_size(&self) -> u64 {
        self.columns.iter().map(|c| u64::from(c.byte_size)).sum()
    }

    /// Resolves a reference to a column index.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownColumn`] if nothing matches, [`Error::AmbiguousColumn`]
    /// if a bare name matches several columns. The `relation` argument is used
    /// only for error messages.
    pub fn resolve(&self, column: &ColumnRef, relation: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, c) in self.columns.iter().enumerate() {
            if column.matches(c.column.qualifier.as_deref(), &c.column.name) {
                if found.is_some() {
                    return Err(Error::AmbiguousColumn {
                        column: column.to_string(),
                        relation: relation.to_owned(),
                    });
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| Error::UnknownColumn {
            column: column.to_string(),
            relation: relation.to_owned(),
        })
    }

    /// Definition of the column at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds (internal indices only).
    #[must_use]
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Returns a new schema where every column is re-qualified with
    /// `qualifier` (used when a base relation enters a query under an alias).
    #[must_use]
    pub fn qualify(&self, qualifier: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| ColumnDef {
                    column: ColumnRef::qualified(qualifier, c.column.name.clone()),
                    ty: c.ty,
                    byte_size: c.byte_size,
                })
                .collect(),
        }
    }

    /// Returns a new schema with all qualifiers removed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateColumn`] if stripping qualifiers makes two
    /// columns collide.
    pub fn unqualify(&self) -> Result<Schema> {
        Schema::new(
            self.columns
                .iter()
                .map(|c| ColumnDef {
                    column: ColumnRef::bare(c.column.name.clone()),
                    ty: c.ty,
                    byte_size: c.byte_size,
                })
                .collect(),
        )
    }

    /// Concatenates two schemas (for joins / cartesian products).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateColumn`] on identity collisions.
    pub fn concat(&self, other: &Schema) -> Result<Schema> {
        let mut cols = self.columns.clone();
        cols.extend(other.columns.iter().cloned());
        Schema::new(cols)
    }

    /// Whether two schemas are union-compatible (same arity, same types, in
    /// order). Names may differ, mirroring positional set semantics.
    #[must_use]
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .columns
                .iter()
                .zip(other.columns.iter())
                .all(|(a, b)| a.ty == b.ty)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.column, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::of(&[("A", DataType::Int), ("B", DataType::Text)]).unwrap()
    }

    #[test]
    fn parse_column_ref() {
        assert_eq!(ColumnRef::parse("R.A"), ColumnRef::qualified("R", "A"));
        assert_eq!(ColumnRef::parse("A"), ColumnRef::bare("A"));
    }

    #[test]
    fn display_column_ref() {
        assert_eq!(ColumnRef::qualified("R", "A").to_string(), "R.A");
        assert_eq!(ColumnRef::bare("A").to_string(), "A");
    }

    #[test]
    fn resolve_bare() {
        let s = sample();
        assert_eq!(s.resolve(&ColumnRef::bare("B"), "R").unwrap(), 1);
    }

    #[test]
    fn resolve_qualified_against_qualified_schema() {
        let s = sample().qualify("R");
        assert_eq!(s.resolve(&ColumnRef::parse("R.A"), "R").unwrap(), 0);
        // Bare name still resolves when unique.
        assert_eq!(s.resolve(&ColumnRef::bare("A"), "R").unwrap(), 0);
    }

    #[test]
    fn resolve_wrong_qualifier_fails() {
        let s = sample().qualify("R");
        let e = s.resolve(&ColumnRef::parse("S.A"), "R").unwrap_err();
        assert!(matches!(e, Error::UnknownColumn { .. }));
    }

    #[test]
    fn ambiguous_bare_name() {
        let r = sample().qualify("R");
        let s = sample().qualify("S");
        let joined = r.concat(&s).unwrap();
        let e = joined.resolve(&ColumnRef::bare("A"), "RxS").unwrap_err();
        assert!(matches!(e, Error::AmbiguousColumn { .. }));
        // Qualified still works.
        assert_eq!(joined.resolve(&ColumnRef::parse("S.A"), "RxS").unwrap(), 2);
    }

    #[test]
    fn duplicate_column_rejected() {
        let e = Schema::of(&[("A", DataType::Int), ("A", DataType::Int)]).unwrap_err();
        assert!(matches!(e, Error::DuplicateColumn { .. }));
    }

    #[test]
    fn tuple_byte_size_sums_columns() {
        let s = Schema::new(vec![
            ColumnDef::sized(ColumnRef::bare("A"), DataType::Int, 8),
            ColumnDef::sized(ColumnRef::bare("B"), DataType::Text, 92),
        ])
        .unwrap();
        assert_eq!(s.tuple_byte_size(), 100);
    }

    #[test]
    fn union_compatibility_checks_types_positionally() {
        let a = Schema::of(&[("A", DataType::Int), ("B", DataType::Text)]).unwrap();
        let b = Schema::of(&[("X", DataType::Int), ("Y", DataType::Text)]).unwrap();
        let c = Schema::of(&[("X", DataType::Text), ("Y", DataType::Int)]).unwrap();
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn unqualify_collision_detected() {
        let r = sample().qualify("R");
        let s = sample().qualify("S");
        let joined = r.concat(&s).unwrap();
        assert!(joined.unqualify().is_err());
    }

    #[test]
    fn schema_display() {
        assert_eq!(sample().to_string(), "(A INT, B TEXT)");
    }
}
