//! Column-major tuple storage.
//!
//! A [`ColumnarBatch`] is the physical, column-oriented image of a
//! relation's tuple vector: one typed vector per column, with text columns
//! holding interned [`Symbol`] ids instead of `String`s. Batches are built
//! lazily per relation (cached in the shared storage, see
//! [`crate::relation::Relation`]) and maintained incrementally across
//! `insert`/`delete` instead of being rebuilt.
//!
//! The executor uses batches for two things:
//!
//! * **vectorized filters** — a pushed-down conjunction is compiled once
//!   into column indices ([`compile_clauses`]) and evaluated per column
//!   over the typed vectors, producing an ascending selection vector, and
//! * **interned join keys** — [`scalar_key`] maps every value to a `u64`
//!   that is equal exactly when the values are equal (ints/bools by value,
//!   floats by bit pattern — valid because [`crate::types::Value::float`]
//!   normalizes `-0.0` and rejects NaN — and text by symbol id), so hash
//!   joins hash machine words instead of cloning key tuples.

use crate::intern::{self, Symbol};
use crate::predicate::{CompOp, Operand, Predicate};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::types::{DataType, Value};

/// One typed column vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats (never NaN; see [`Value::float`]).
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Interned text.
    Text(Vec<Symbol>),
}

impl Column {
    fn with_capacity(ty: DataType, cap: usize) -> Column {
        match ty {
            DataType::Int => Column::Int(Vec::with_capacity(cap)),
            DataType::Float => Column::Float(Vec::with_capacity(cap)),
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
            DataType::Text => Column::Text(Vec::with_capacity(cap)),
        }
    }

    fn push(&mut self, v: &Value) {
        match (self, v) {
            (Column::Int(c), Value::Int(x)) => c.push(*x),
            (Column::Float(c), Value::Float(x)) => c.push(*x),
            (Column::Bool(c), Value::Bool(x)) => c.push(*x),
            (Column::Text(c), Value::Text(x)) => c.push(intern::intern(x)),
            _ => unreachable!("relation storage validated value types against the schema"),
        }
    }

    fn remove_rows(&mut self, removed: &[u32]) {
        fn retain<T>(v: &mut Vec<T>, removed: &[u32]) {
            let mut iter = removed.iter().copied().peekable();
            let mut idx = 0u32;
            v.retain(|_| {
                let drop = iter.peek() == Some(&idx);
                if drop {
                    iter.next();
                }
                idx += 1;
                !drop
            });
        }
        match self {
            Column::Int(c) => retain(c, removed),
            Column::Float(c) => retain(c, removed),
            Column::Bool(c) => retain(c, removed),
            Column::Text(c) => retain(c, removed),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Column::Int(c) => c.len(),
            Column::Float(c) => c.len(),
            Column::Bool(c) => c.len(),
            Column::Text(c) => c.len(),
        }
    }

    /// Whether the column holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scalar `u64` key of row `r` (see module docs for the encoding).
    #[must_use]
    #[allow(clippy::cast_sign_loss)]
    pub fn key_at(&self, r: usize) -> u64 {
        match self {
            Column::Int(c) => c[r] as u64,
            Column::Float(c) => c[r].to_bits(),
            Column::Bool(c) => u64::from(c[r]),
            Column::Text(c) => u64::from(c[r].id()),
        }
    }
}

/// Column-major image of a relation's tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBatch {
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnarBatch {
    /// Builds the batch from row storage. Text values are interned here —
    /// the one-time cost the cached batch amortizes across queries.
    #[must_use]
    pub fn from_tuples(schema: &Schema, tuples: &[Tuple]) -> ColumnarBatch {
        let mut columns: Vec<Column> = schema
            .columns()
            .iter()
            .map(|c| Column::with_capacity(c.ty, tuples.len()))
            .collect();
        for t in tuples {
            for (col, v) in columns.iter_mut().zip(t.values()) {
                col.push(v);
            }
        }
        ColumnarBatch {
            columns,
            rows: tuples.len(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The column at index `i`.
    #[must_use]
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Appends one row (incremental maintenance under `insert`).
    pub(crate) fn push_row(&mut self, t: &Tuple) {
        for (col, v) in self.columns.iter_mut().zip(t.values()) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Drops the rows at the given ascending positions (incremental
    /// maintenance under `delete`); remaining rows keep their order.
    pub(crate) fn remove_rows(&mut self, removed: &[u32]) {
        for col in &mut self.columns {
            col.remove_rows(removed);
        }
        self.rows -= removed.len();
    }
}

/// Scalar `u64` key for a value: equal keys ⇔ equal values, within a typed
/// column. Text is interned (inserting), so build and probe sides agree.
#[must_use]
#[allow(clippy::cast_sign_loss)]
pub(crate) fn scalar_key(v: &Value) -> u64 {
    match v {
        Value::Int(x) => *x as u64,
        Value::Float(x) => x.to_bits(),
        Value::Bool(x) => u64::from(*x),
        Value::Text(x) => u64::from(intern::intern(x).id()),
    }
}

/// A pushdown clause compiled to column indices for vectorized evaluation.
pub(crate) enum VecClause {
    /// `col θ literal`.
    Lit {
        col: usize,
        op: CompOp,
        value: Value,
    },
    /// `col θ col` within the same relation.
    Cols {
        left: usize,
        op: CompOp,
        right: usize,
    },
}

/// Compiles a pushed-down conjunction against a relation schema. Returns
/// `None` when any clause fails to resolve or compares mismatched types —
/// the executor then falls back to the row-at-a-time path (which surfaces
/// the proper error).
pub(crate) fn compile_clauses(
    pred: &Predicate,
    schema: &Schema,
    relation: &str,
) -> Option<Vec<VecClause>> {
    let mut out = Vec::with_capacity(pred.clauses().len());
    for c in pred.clauses() {
        let li = schema.resolve(&c.left, relation).ok()?;
        match &c.right {
            Operand::Literal(v) => {
                if schema.column(li).ty != v.data_type() {
                    return None;
                }
                out.push(VecClause::Lit {
                    col: li,
                    op: c.op,
                    value: v.clone(),
                });
            }
            Operand::Column(rc) => {
                let ri = schema.resolve(rc, relation).ok()?;
                if schema.column(li).ty != schema.column(ri).ty {
                    return None;
                }
                out.push(VecClause::Cols {
                    left: li,
                    op: c.op,
                    right: ri,
                });
            }
        }
    }
    Some(out)
}

/// Evaluates compiled clauses over the batch, returning the ascending
/// selection vector of surviving row ids. `tuples` backs the (rare) text
/// range comparisons, which compare strings rather than symbol ids.
pub(crate) fn filter_batch(
    batch: &ColumnarBatch,
    tuples: &[Tuple],
    clauses: &[VecClause],
) -> Vec<u32> {
    let mut sel = Vec::new();
    let rows = u32::try_from(batch.rows()).expect("row count fits u32");
    filter_batch_range(batch, tuples, clauses, 0, rows, &mut sel);
    sel
}

/// Range-restricted [`filter_batch`]: evaluates the clauses over rows
/// `[start, end)` only, leaving the surviving ascending row ids in `sel`.
/// `sel` is a caller-owned scratch buffer — morsel workers reuse one
/// buffer across every morsel they run instead of allocating per morsel.
pub(crate) fn filter_batch_range(
    batch: &ColumnarBatch,
    tuples: &[Tuple],
    clauses: &[VecClause],
    start: u32,
    end: u32,
    sel: &mut Vec<u32>,
) {
    sel.clear();
    sel.extend(start..end);
    for clause in clauses {
        if sel.is_empty() {
            break;
        }
        match clause {
            VecClause::Lit { col, op, value } => {
                refine_lit(batch.column(*col), *col, *op, value, tuples, sel);
            }
            VecClause::Cols { left, op, right } => {
                refine_cols(batch, *left, *op, *right, tuples, sel);
            }
        }
    }
}

fn refine_lit(
    column: &Column,
    col: usize,
    op: CompOp,
    value: &Value,
    tuples: &[Tuple],
    sel: &mut Vec<u32>,
) {
    match (column, value) {
        (Column::Int(c), Value::Int(x)) => sel.retain(|&r| op.eval(c[r as usize].cmp(x))),
        (Column::Float(c), Value::Float(x)) => {
            sel.retain(|&r| op.eval(c[r as usize].total_cmp(x)));
        }
        (Column::Bool(c), Value::Bool(x)) => sel.retain(|&r| op.eval(c[r as usize].cmp(x))),
        (Column::Text(c), Value::Text(x)) => match op {
            // Equality over symbols: an un-interned literal matches nothing.
            CompOp::Eq => match intern::lookup(x) {
                Some(sym) => sel.retain(|&r| c[r as usize] == sym),
                None => sel.clear(),
            },
            // An un-interned literal equals no stored value: Ne keeps all.
            CompOp::Ne => {
                if let Some(sym) = intern::lookup(x) {
                    sel.retain(|&r| c[r as usize] != sym);
                }
            }
            // Range comparisons are lexicographic over the source strings.
            _ => sel.retain(|&r| text_cmp(tuples, r, col, op, x)),
        },
        _ => unreachable!("compile_clauses type-checked the literal"),
    }
}

fn refine_cols(
    batch: &ColumnarBatch,
    left: usize,
    op: CompOp,
    right: usize,
    tuples: &[Tuple],
    sel: &mut Vec<u32>,
) {
    match (batch.column(left), batch.column(right)) {
        (Column::Int(a), Column::Int(b)) => {
            sel.retain(|&r| op.eval(a[r as usize].cmp(&b[r as usize])));
        }
        (Column::Float(a), Column::Float(b)) => {
            sel.retain(|&r| op.eval(a[r as usize].total_cmp(&b[r as usize])));
        }
        (Column::Bool(a), Column::Bool(b)) => {
            sel.retain(|&r| op.eval(a[r as usize].cmp(&b[r as usize])));
        }
        (Column::Text(a), Column::Text(b)) => match op {
            CompOp::Eq => sel.retain(|&r| a[r as usize] == b[r as usize]),
            CompOp::Ne => sel.retain(|&r| a[r as usize] != b[r as usize]),
            _ => sel.retain(|&r| {
                let (lv, rv) = (tuples[r as usize].get(left), tuples[r as usize].get(right));
                match (lv, rv) {
                    (Value::Text(l), Value::Text(rt)) => op.eval(l.as_str().cmp(rt.as_str())),
                    _ => unreachable!("schema typed both columns TEXT"),
                }
            }),
        },
        _ => unreachable!("compile_clauses type-checked the column pair"),
    }
}

fn text_cmp(tuples: &[Tuple], r: u32, col: usize, op: CompOp, lit: &str) -> bool {
    match tuples[r as usize].get(col) {
        Value::Text(s) => op.eval(s.as_str().cmp(lit)),
        _ => unreachable!("schema typed the column TEXT"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PrimitiveClause;
    use crate::schema::ColumnRef;

    fn schema() -> Schema {
        Schema::of(&[
            ("A", DataType::Int),
            ("B", DataType::Text),
            ("C", DataType::Float),
        ])
        .unwrap()
    }

    fn row(a: i64, b: &str, c: f64) -> Tuple {
        Tuple::new(vec![
            Value::Int(a),
            Value::from(b),
            Value::float(c).unwrap(),
        ])
    }

    fn tuples() -> Vec<Tuple> {
        vec![
            row(1, "x", 1.5),
            row(2, "y", 2.5),
            row(3, "x", 0.5),
            row(4, "z", 4.5),
        ]
    }

    #[test]
    fn batch_mirrors_tuples() {
        let b = ColumnarBatch::from_tuples(&schema(), &tuples());
        assert_eq!(b.rows(), 4);
        assert_eq!(b.column(0), &Column::Int(vec![1, 2, 3, 4]));
        match b.column(1) {
            Column::Text(syms) => {
                assert_eq!(syms[0], syms[2], "equal strings share a symbol");
                assert_ne!(syms[0], syms[1]);
            }
            other => panic!("expected text column, got {other:?}"),
        }
    }

    #[test]
    fn push_and_remove_maintain_rows() {
        let mut b = ColumnarBatch::from_tuples(&schema(), &tuples());
        b.push_row(&row(5, "w", 5.5));
        assert_eq!(b.rows(), 5);
        assert_eq!(b.column(0), &Column::Int(vec![1, 2, 3, 4, 5]));
        b.remove_rows(&[1, 3]);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.column(0), &Column::Int(vec![1, 3, 5]));
    }

    #[test]
    fn vectorized_filter_matches_row_eval() {
        let s = schema();
        let rows = tuples();
        let b = ColumnarBatch::from_tuples(&s, &rows);
        let pred = Predicate::new(vec![
            PrimitiveClause::lit(ColumnRef::bare("A"), CompOp::Ge, Value::Int(2)),
            PrimitiveClause::lit(ColumnRef::bare("B"), CompOp::Eq, Value::from("x")),
        ]);
        let compiled = compile_clauses(&pred, &s, "R").unwrap();
        let sel = filter_batch(&b, &rows, &compiled);
        let reference: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, t)| pred.eval(&s, t, "R").unwrap())
            .map(|(i, _)| u32::try_from(i).unwrap())
            .collect();
        assert_eq!(sel, reference);
        assert_eq!(sel, vec![2]);
    }

    #[test]
    fn uninterned_literal_matches_nothing() {
        let s = schema();
        let rows = tuples();
        let b = ColumnarBatch::from_tuples(&s, &rows);
        let pred = Predicate::single(PrimitiveClause::lit(
            ColumnRef::bare("B"),
            CompOp::Eq,
            Value::from("eve-column-test-never-interned"),
        ));
        let compiled = compile_clauses(&pred, &s, "R").unwrap();
        assert!(filter_batch(&b, &rows, &compiled).is_empty());
    }

    #[test]
    fn mismatched_literal_type_refuses_to_compile() {
        let s = schema();
        let pred = Predicate::single(PrimitiveClause::lit(
            ColumnRef::bare("B"),
            CompOp::Eq,
            Value::Int(1),
        ));
        assert!(compile_clauses(&pred, &s, "R").is_none());
    }

    #[test]
    fn scalar_keys_agree_with_value_equality() {
        assert_eq!(scalar_key(&Value::Int(-1)), scalar_key(&Value::Int(-1)));
        assert_ne!(scalar_key(&Value::Int(-1)), scalar_key(&Value::Int(1)));
        let z = Value::float(0.0).unwrap();
        let nz = Value::float(-0.0).unwrap();
        assert_eq!(scalar_key(&z), scalar_key(&nz), "normalized -0.0");
        assert_eq!(
            scalar_key(&Value::from("same")),
            scalar_key(&Value::from("same"))
        );
        assert_ne!(
            scalar_key(&Value::from("same")),
            scalar_key(&Value::from("diff"))
        );
    }
}
