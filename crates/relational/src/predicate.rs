//! Primitive clauses and conjunctive predicates.
//!
//! The paper's WHERE clauses are conjunctions of *primitive clauses* of the
//! form `(attr θ attr)` or `(attr θ value)` with `θ ∈ {<, ≤, =, ≥, >}`
//! (§3.1). We additionally support `≠`, which some MKB consistency checks
//! need, but the E-SQL surface syntax only produces the paper's five.

use std::cmp::Ordering;
use std::fmt;

use crate::error::Result;
use crate::relation::Relation;
use crate::schema::{ColumnRef, Schema};
use crate::tuple::Tuple;
use crate::types::Value;

/// Comparison operator `θ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CompOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `<>` (not part of the paper's θ set; used internally)
    Ne,
}

impl CompOp {
    /// Evaluates the operator on an [`Ordering`].
    #[must_use]
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CompOp::Lt => ord == Ordering::Less,
            CompOp::Le => ord != Ordering::Greater,
            CompOp::Eq => ord == Ordering::Equal,
            CompOp::Ge => ord != Ordering::Less,
            CompOp::Gt => ord == Ordering::Greater,
            CompOp::Ne => ord != Ordering::Equal,
        }
    }

    /// The operator with its operands swapped (`a θ b` ⇔ `b θ' a`).
    #[must_use]
    pub fn flipped(self) -> CompOp {
        match self {
            CompOp::Lt => CompOp::Gt,
            CompOp::Le => CompOp::Ge,
            CompOp::Eq => CompOp::Eq,
            CompOp::Ge => CompOp::Le,
            CompOp::Gt => CompOp::Lt,
            CompOp::Ne => CompOp::Ne,
        }
    }

    /// All operators in the paper's θ set.
    pub const PAPER_SET: [CompOp; 5] = [CompOp::Lt, CompOp::Le, CompOp::Eq, CompOp::Ge, CompOp::Gt];
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Eq => "=",
            CompOp::Ge => ">=",
            CompOp::Gt => ">",
            CompOp::Ne => "<>",
        };
        f.write_str(s)
    }
}

/// Right-hand side of a primitive clause: another column or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operand {
    /// A column reference.
    Column(ColumnRef),
    /// A literal value.
    Literal(Value),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Column(c) => write!(f, "{c}"),
            Operand::Literal(v) => write!(f, "{v}"),
        }
    }
}

/// A primitive clause `left θ right`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrimitiveClause {
    /// Left column.
    pub left: ColumnRef,
    /// Comparison operator.
    pub op: CompOp,
    /// Right column or literal.
    pub right: Operand,
}

impl PrimitiveClause {
    /// `left θ right-column` clause.
    #[must_use]
    pub fn cols(left: ColumnRef, op: CompOp, right: ColumnRef) -> PrimitiveClause {
        PrimitiveClause {
            left,
            op,
            right: Operand::Column(right),
        }
    }

    /// `left θ literal` clause.
    #[must_use]
    pub fn lit(left: ColumnRef, op: CompOp, value: Value) -> PrimitiveClause {
        PrimitiveClause {
            left,
            op,
            right: Operand::Literal(value),
        }
    }

    /// Equality join clause `a = b` (the paper assumes equijoins, §6.1).
    #[must_use]
    pub fn eq(left: ColumnRef, right: ColumnRef) -> PrimitiveClause {
        PrimitiveClause::cols(left, CompOp::Eq, right)
    }

    /// Evaluates the clause on `tuple` with respect to `schema`.
    ///
    /// # Errors
    ///
    /// Column resolution or type comparison failures.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple, relation: &str) -> Result<bool> {
        let li = schema.resolve(&self.left, relation)?;
        let lv = tuple.get(li);
        let rv = match &self.right {
            Operand::Column(c) => tuple.get(schema.resolve(c, relation)?),
            Operand::Literal(v) => v,
        };
        Ok(self.op.eval(lv.try_cmp(rv)?))
    }

    /// All column references in the clause.
    #[must_use]
    pub fn columns(&self) -> Vec<&ColumnRef> {
        match &self.right {
            Operand::Column(c) => vec![&self.left, c],
            Operand::Literal(_) => vec![&self.left],
        }
    }

    /// Whether the clause mentions a column of relation/alias `qualifier`
    /// (matches bare references too, via the provided resolver set).
    #[must_use]
    pub fn references_qualifier(&self, qualifier: &str) -> bool {
        self.columns()
            .iter()
            .any(|c| c.qualifier.as_deref() == Some(qualifier))
    }

    /// Returns the clause with every column rewritten through `f`.
    #[must_use]
    pub fn map_columns(&self, f: &mut impl FnMut(&ColumnRef) -> ColumnRef) -> PrimitiveClause {
        PrimitiveClause {
            left: f(&self.left),
            op: self.op,
            right: match &self.right {
                Operand::Column(c) => Operand::Column(f(c)),
                Operand::Literal(v) => Operand::Literal(v.clone()),
            },
        }
    }
}

impl fmt::Display for PrimitiveClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A conjunction of primitive clauses (the paper's WHERE shape, and the body
/// of join and PC constraints).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Predicate {
    clauses: Vec<PrimitiveClause>,
}

impl Predicate {
    /// The always-true predicate (empty conjunction).
    #[must_use]
    pub fn always_true() -> Predicate {
        Predicate::default()
    }

    /// Builds a conjunction.
    #[must_use]
    pub fn new(clauses: Vec<PrimitiveClause>) -> Predicate {
        Predicate { clauses }
    }

    /// A single-clause predicate.
    #[must_use]
    pub fn single(clause: PrimitiveClause) -> Predicate {
        Predicate {
            clauses: vec![clause],
        }
    }

    /// The clauses of the conjunction.
    #[must_use]
    pub fn clauses(&self) -> &[PrimitiveClause] {
        &self.clauses
    }

    /// Whether this is the tautologically true condition. The paper's PC
    /// constraints distinguish "no/yes" selection conditions this way (§5.4.3).
    #[must_use]
    pub fn is_true(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Conjunction of this predicate with another.
    #[must_use]
    pub fn and(&self, other: &Predicate) -> Predicate {
        let mut clauses = self.clauses.clone();
        clauses.extend(other.clauses.iter().cloned());
        Predicate { clauses }
    }

    /// Evaluates the conjunction on a tuple.
    ///
    /// # Errors
    ///
    /// Propagates clause evaluation failures.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple, relation: &str) -> Result<bool> {
        for c in &self.clauses {
            if !c.eval(schema, tuple, relation)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Checks the predicate is well-formed against a schema (all columns
    /// resolve, compared types match) without evaluating it.
    ///
    /// # Errors
    ///
    /// Resolution or type errors.
    pub fn type_check(&self, schema: &Schema, relation: &str) -> Result<()> {
        for c in &self.clauses {
            let li = schema.resolve(&c.left, relation)?;
            let lt = schema.column(li).ty;
            let rt = match &c.right {
                Operand::Column(rc) => schema.column(schema.resolve(rc, relation)?).ty,
                Operand::Literal(v) => v.data_type(),
            };
            if !lt.comparable_with(rt) {
                return Err(crate::error::Error::TypeMismatch {
                    left: lt,
                    right: rt,
                    context: "predicate type check",
                });
            }
        }
        Ok(())
    }

    /// Measured selectivity of the predicate on a relation: fraction of
    /// tuples satisfying it. Empty relations report selectivity 1.0.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn selectivity(&self, rel: &Relation) -> Result<f64> {
        if rel.is_empty() {
            return Ok(1.0);
        }
        let mut hits = 0usize;
        for t in rel.tuples() {
            if self.eval(rel.schema(), t, rel.name())? {
                hits += 1;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        Ok(hits as f64 / rel.cardinality() as f64)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return f.write_str("TRUE");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

impl From<PrimitiveClause> for Predicate {
    fn from(c: PrimitiveClause) -> Self {
        Predicate::single(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::of(&[
            ("A", DataType::Int),
            ("B", DataType::Int),
            ("C", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn op_eval_table() {
        use Ordering::*;
        assert!(CompOp::Lt.eval(Less));
        assert!(!CompOp::Lt.eval(Equal));
        assert!(CompOp::Le.eval(Equal));
        assert!(CompOp::Eq.eval(Equal));
        assert!(!CompOp::Eq.eval(Greater));
        assert!(CompOp::Ge.eval(Greater));
        assert!(CompOp::Gt.eval(Greater));
        assert!(CompOp::Ne.eval(Less));
        assert!(!CompOp::Ne.eval(Equal));
    }

    #[test]
    fn flipped_is_involutive_on_symmetric_ops() {
        for op in CompOp::PAPER_SET {
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn clause_eval_column_vs_literal() {
        let s = schema();
        let c = PrimitiveClause::lit(ColumnRef::bare("A"), CompOp::Gt, Value::Int(10));
        assert!(c.eval(&s, &tup![11, 0, "x"], "R").unwrap());
        assert!(!c.eval(&s, &tup![10, 0, "x"], "R").unwrap());
    }

    #[test]
    fn clause_eval_column_vs_column() {
        let s = schema();
        let c = PrimitiveClause::eq(ColumnRef::bare("A"), ColumnRef::bare("B"));
        assert!(c.eval(&s, &tup![3, 3, "x"], "R").unwrap());
        assert!(!c.eval(&s, &tup![3, 4, "x"], "R").unwrap());
    }

    #[test]
    fn predicate_conjunction() {
        let s = schema();
        let p = Predicate::new(vec![
            PrimitiveClause::lit(ColumnRef::bare("A"), CompOp::Ge, Value::Int(1)),
            PrimitiveClause::lit(ColumnRef::bare("B"), CompOp::Lt, Value::Int(5)),
        ]);
        assert!(p.eval(&s, &tup![1, 4, "x"], "R").unwrap());
        assert!(!p.eval(&s, &tup![1, 5, "x"], "R").unwrap());
    }

    #[test]
    fn always_true_is_true() {
        let p = Predicate::always_true();
        assert!(p.is_true());
        assert!(p.eval(&schema(), &tup![0, 0, "x"], "R").unwrap());
        assert_eq!(p.to_string(), "TRUE");
    }

    #[test]
    fn type_check_catches_mismatch() {
        let s = schema();
        let p = Predicate::single(PrimitiveClause::lit(
            ColumnRef::bare("C"),
            CompOp::Eq,
            Value::Int(1),
        ));
        assert!(p.type_check(&s, "R").is_err());
        let ok = Predicate::single(PrimitiveClause::lit(
            ColumnRef::bare("C"),
            CompOp::Eq,
            Value::from("Asia"),
        ));
        assert!(ok.type_check(&s, "R").is_ok());
    }

    #[test]
    fn measured_selectivity() {
        let rel = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            (0..10).map(|i| tup![i]).collect(),
        )
        .unwrap();
        let p = Predicate::single(PrimitiveClause::lit(
            ColumnRef::bare("A"),
            CompOp::Lt,
            Value::Int(5),
        ));
        let sel = p.selectivity(&rel).unwrap();
        assert!((sel - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_forms() {
        let c = PrimitiveClause::lit(ColumnRef::parse("F.Dest"), CompOp::Eq, Value::from("Asia"));
        assert_eq!(c.to_string(), "F.Dest = 'Asia'");
        let p = Predicate::new(vec![
            PrimitiveClause::eq(ColumnRef::parse("C.Name"), ColumnRef::parse("F.PName")),
            c,
        ]);
        assert_eq!(p.to_string(), "(C.Name = F.PName) AND (F.Dest = 'Asia')");
    }

    #[test]
    fn map_columns_rewrites_both_sides() {
        let c = PrimitiveClause::eq(ColumnRef::parse("R.A"), ColumnRef::parse("R.B"));
        let mapped = c.map_columns(&mut |cr| ColumnRef::qualified("T", cr.name.clone()));
        assert_eq!(mapped.to_string(), "T.A = T.B");
    }

    #[test]
    fn references_qualifier_checks_both_sides() {
        let c = PrimitiveClause::eq(ColumnRef::parse("R.A"), ColumnRef::parse("S.B"));
        assert!(c.references_qualifier("R"));
        assert!(c.references_qualifier("S"));
        assert!(!c.references_qualifier("T"));
    }
}
