//! Data types and values.
//!
//! The paper's MISD records a *type integrity constraint* `A_i(Type_i)` for
//! every attribute (Fig. 4). We support the small scalar type system needed by
//! the paper's examples: integers, floats, booleans and fixed-size text.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};

/// Scalar data type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (NaN is rejected on construction).
    Float,
    /// Boolean.
    Bool,
    /// Variable-length text.
    Text,
}

impl DataType {
    /// Default storage size in bytes, used for the paper's `s_{R.A}` attribute
    /// sizes when no explicit size is registered (§6.1 statistic 2).
    #[must_use]
    pub fn default_byte_size(self) -> u32 {
        match self {
            DataType::Int | DataType::Float => 8,
            DataType::Bool => 1,
            DataType::Text => 20,
        }
    }

    /// Whether two types may be compared with the paper's `θ` operators.
    #[must_use]
    pub fn comparable_with(self, other: DataType) -> bool {
        self == other
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Bool => "BOOL",
            DataType::Text => "TEXT",
        };
        f.write_str(s)
    }
}

/// A scalar value.
///
/// `Float` values are totally ordered via [`f64::total_cmp`]; NaN is rejected
/// by [`Value::float`], which is the sanctioned constructor, so equality and
/// hashing are well behaved for any value built through the public API.
#[derive(Debug, Clone)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Floating point value (never NaN when built via [`Value::float`]).
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// Text value.
    Text(String),
}

impl Value {
    /// Builds a float value, rejecting NaN so ordering stays total.
    pub fn float(v: f64) -> Result<Value> {
        if v.is_nan() {
            return Err(Error::NotComparable);
        }
        // Normalize -0.0 so that equal values hash equally.
        Ok(Value::Float(if v == 0.0 { 0.0 } else { v }))
    }

    /// The value's data type.
    #[must_use]
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Bool(_) => DataType::Bool,
            Value::Text(_) => DataType::Text,
        }
    }

    /// Compares two values of the same type.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TypeMismatch`] when the types differ.
    pub fn try_cmp(&self, other: &Value) -> Result<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Ok(a.total_cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Ok(a.cmp(b)),
            _ => Err(Error::TypeMismatch {
                left: self.data_type(),
                right: other.data_type(),
                context: "value comparison",
            }),
        }
    }

    /// Size of the value in bytes, for data-transfer accounting.
    #[must_use]
    pub fn byte_size(&self) -> u32 {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(t) => u32::try_from(t.len()).unwrap_or(u32::MAX),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        matches!(self.try_cmp(other), Ok(Ordering::Equal))
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Bool(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Value::Text(v) => {
                3u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: same-type values compare naturally; values of different
    /// types order by a fixed type rank (Int < Float < Bool < Text). This
    /// exists so tuples can live in ordered sets; *predicates* always use the
    /// type-checked [`Value::try_cmp`] instead.
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Int(_) => 0,
                Value::Float(_) => 1,
                Value::Bool(_) => 2,
                Value::Text(_) => 3,
            }
        }
        self.try_cmp(other)
            .unwrap_or_else(|_| rank(self).cmp(&rank(other)))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "'{v}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_ordering() {
        assert_eq!(
            Value::Int(1).try_cmp(&Value::Int(2)).unwrap(),
            Ordering::Less
        );
        assert_eq!(
            Value::Int(5).try_cmp(&Value::Int(5)).unwrap(),
            Ordering::Equal
        );
    }

    #[test]
    fn float_nan_rejected() {
        assert_eq!(Value::float(f64::NAN).unwrap_err(), Error::NotComparable);
    }

    #[test]
    fn float_negative_zero_normalized() {
        let a = Value::float(0.0).unwrap();
        let b = Value::float(-0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn cross_type_comparison_errors() {
        let e = Value::Int(1).try_cmp(&Value::Text("x".into())).unwrap_err();
        assert!(matches!(e, Error::TypeMismatch { .. }));
    }

    #[test]
    fn cross_type_values_not_equal() {
        assert_ne!(Value::Int(1), Value::Text("1".into()));
    }

    #[test]
    fn text_ordering_is_lexicographic() {
        assert_eq!(
            Value::from("Asia").try_cmp(&Value::from("Europe")).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::from("Asia").to_string(), "'Asia'");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn data_type_display() {
        assert_eq!(DataType::Int.to_string(), "INT");
        assert_eq!(DataType::Text.to_string(), "TEXT");
    }

    #[test]
    fn default_byte_sizes() {
        assert_eq!(DataType::Int.default_byte_size(), 8);
        assert_eq!(DataType::Bool.default_byte_size(), 1);
        assert_eq!(DataType::Text.default_byte_size(), 20);
    }

    #[test]
    fn value_byte_size_text_is_len() {
        assert_eq!(Value::from("Asia").byte_size(), 4);
        assert_eq!(Value::Int(7).byte_size(), 8);
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Int(3)));
        assert_eq!(hash_of(&Value::from("abc")), hash_of(&Value::from("abc")));
    }
}
