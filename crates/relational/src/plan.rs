//! Cost-ordered physical query planning.
//!
//! The paper's trade-off analysis (§6) *estimates* maintenance costs from
//! declared statistics; this module brings the same statistics into the
//! measured execution path. A [`QuerySpec`] — the neutral, lowered form of a
//! select-project-join view over bound input extents — is compiled into a
//! [`PhysicalPlan`]:
//!
//! * single-input conditions are **pushed down** into the scans,
//! * hash-join **key columns are resolved at plan time** (no per-tuple
//!   schema lookups during execution),
//! * join order is chosen by a **selectivity-driven greedy search**: start
//!   from the smallest estimated input, repeatedly join the connected input
//!   that minimizes the estimated intermediate cardinality, and build each
//!   hash table on the smaller estimated side,
//! * cardinalities come from declared [`RelationStats`] when the caller
//!   registered them (the MKB's §6.1 statistics), falling back to
//!   **measured** statistics — extent cardinality, sampled selection
//!   selectivity and distinct-key counts — when no declaration exists.
//!
//! Every plan carries a [`PlanEstimate`] (abstract I/O blocks + tuple
//! touches), the measured-side counterpart of the analytic `CF_IO`/`CF_T`
//! factors, so estimated and executed costs can be reported side by side.
//! Execution lives in [`crate::exec`]; the naive left-to-right evaluator the
//! planner is differentially tested against stays in the callers.

use std::collections::HashSet;

use crate::error::{Error, Result};
use crate::predicate::{CompOp, Operand, Predicate, PrimitiveClause};
use crate::relation::Relation;
use crate::schema::{ColumnDef, ColumnRef, Schema};
use crate::stats::RelationStats;
use crate::types::Value;

/// Plan-time selectivity sampling depth for the measured-stat fallback.
const SELECTIVITY_SAMPLE: usize = 256;

/// Default blocking factor when no [`RelationStats`] declare one (the
/// paper's Table 1 value).
const DEFAULT_BLOCKING_FACTOR: u64 = 10;

/// Selectivity assumed for a non-equality join clause during ordering.
const THETA_SELECTIVITY: f64 = 0.5;

/// One bound input of a query: a binding name, the (already
/// binding-qualified) extent, and optionally the declared statistics the
/// planner should trust over measurement.
#[derive(Debug, Clone)]
pub struct QueryInput {
    /// Binding name (FROM alias); informational, the schema already
    /// qualifies columns with it.
    pub binding: String,
    /// The bound extent. `Arc`-shared, so cloning into the plan is free.
    pub relation: Relation,
    /// Declared statistics (cardinality, selectivity, blocking factor).
    /// `None` selects the measured fallback.
    pub stats: Option<RelationStats>,
}

/// The lowered, engine-neutral form of a select-project-join query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Name of the output relation.
    pub name: String,
    /// Bound inputs in declaration (FROM) order.
    pub inputs: Vec<QueryInput>,
    /// Conjunctive conditions over the inputs' qualified columns.
    pub clauses: Vec<PrimitiveClause>,
    /// Projection columns (resolved against the joined schema).
    pub projection: Vec<ColumnRef>,
    /// Output column names, positionally matching `projection`.
    pub output: Vec<ColumnRef>,
}

/// A physical operator tree. Schemas and key indices are resolved at plan
/// time; execution never consults column names.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// Scan of `inputs[input]`, with an optional pushed-down selection.
    Scan {
        /// Index into [`PhysicalPlan::inputs`].
        input: usize,
        /// Selection applied during the scan (single-input clauses).
        pushdown: Option<Predicate>,
    },
    /// Index-backed scan of `inputs[input]`: the most selective
    /// `column θ literal` clause is answered by a secondary index (hash
    /// for `=`, sorted for ranges; built lazily in the relation's shared
    /// storage), the remaining pushed-down clauses filter the matches.
    /// Chosen over [`PlanNode::Scan`] only when the cost model says the
    /// index I/O undercuts the full scan.
    IndexScan {
        /// Index into [`PhysicalPlan::inputs`].
        input: usize,
        /// Column position of the indexed clause in the input schema.
        col: usize,
        /// The indexed clause's operator.
        op: CompOp,
        /// The indexed clause's literal.
        key: Value,
        /// Pushed-down clauses minus the indexed one.
        residual: Option<Predicate>,
        /// The full pushed-down conjunction (indexed clause included);
        /// the row-oriented execution mode evaluates this as a filter.
        pushdown: Predicate,
    },
    /// Hash equi-join: `build` is materialized into a hash table on
    /// `build_keys`, `probe` streams against it. Output tuples are
    /// `probe ++ build`.
    HashJoin {
        /// Probe (outer) side.
        probe: Box<PlanNode>,
        /// Build (inner) side — the smaller estimated input.
        build: Box<PlanNode>,
        /// Key column indices in the probe schema.
        probe_keys: Vec<usize>,
        /// Key column indices in the build schema.
        build_keys: Vec<usize>,
        /// Non-key clauses evaluated on the concatenated tuple.
        residual: Predicate,
        /// Output schema (`probe ++ build`), resolved at plan time.
        schema: Schema,
    },
    /// Fallback θ-join (no usable equality key): filtered nested loop.
    NestedLoop {
        /// Outer side.
        outer: Box<PlanNode>,
        /// Inner side.
        inner: Box<PlanNode>,
        /// Join condition on the concatenated tuple (possibly empty —
        /// cartesian product).
        condition: Predicate,
        /// Output schema (`outer ++ inner`).
        schema: Schema,
    },
}

/// Estimated resource usage of a plan, in the units the paper's cost model
/// uses: block I/Os for reading base extents and tuple touches for CPU work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Estimated cardinality of the query result.
    pub output_rows: f64,
    /// Block reads to scan every input once (`Σ ⌈|R|/bfr⌉`, Eq. 32's
    /// full-scan term per relation).
    pub io_blocks: f64,
    /// Tuples touched by selections, hash builds/probes and emitted
    /// intermediates.
    pub cpu_tuples: f64,
    /// Total abstract cost: `io_blocks + cpu_tuples`.
    pub total: f64,
    /// How many leaves the cost model routed through a secondary index
    /// instead of a full scan.
    pub index_scans: u32,
}

impl PlanEstimate {
    /// Abstract cost charged per extra worker: thread wake-up plus morsel
    /// dispatch, in the same tuple-touch units as `cpu_tuples`. A worker
    /// only pays off once it saves more than this.
    pub const MORSEL_DISPATCH_COST: f64 = 256.0;

    /// Modeled cost of executing this plan with `workers` morsel workers:
    /// I/O stays serial (extents are memory-resident Arc-shared storage,
    /// charged identically either way), CPU tuple touches divide across
    /// workers, and each extra worker charges a flat dispatch overhead.
    /// `parallel_total(1) == total`.
    #[must_use]
    pub fn parallel_total(&self, workers: usize) -> f64 {
        let w = workers.max(1) as f64;
        self.io_blocks + self.cpu_tuples / w + Self::MORSEL_DISPATCH_COST * (w - 1.0)
    }

    /// The worker count the planner actually runs with when `requested`
    /// workers are offered: the count in `1..=requested` minimizing
    /// [`Self::parallel_total`]. Tiny inputs come back as `1` — the
    /// dispatch overhead would outweigh the per-worker CPU savings — which
    /// is how the planner declines parallelism without a separate flag.
    #[must_use]
    pub fn effective_parallelism(&self, requested: usize) -> usize {
        let mut best = 1;
        let mut best_cost = self.parallel_total(1);
        for w in 2..=requested {
            let cost = self.parallel_total(w);
            if cost < best_cost {
                best = w;
                best_cost = cost;
            }
        }
        best
    }
}

/// Summary of one join step, for diagnostics and plan-shape assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSummary {
    /// Bindings on the probe (outer) side.
    pub probe: Vec<String>,
    /// Bindings on the build (inner) side.
    pub build: Vec<String>,
    /// Whether the step is a hash join (vs. nested loop).
    pub hash: bool,
    /// Estimated cardinality of the step's output.
    pub estimated_rows: f64,
}

/// A compiled, executable query plan over shared-storage inputs.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub(crate) name: String,
    pub(crate) inputs: Vec<QueryInput>,
    pub(crate) root: PlanNode,
    pub(crate) projection: Vec<usize>,
    pub(crate) output_schema: Schema,
    estimate: PlanEstimate,
    order: Vec<usize>,
    joins: Vec<JoinSummary>,
}

impl PhysicalPlan {
    /// The plan's cost estimate.
    #[must_use]
    pub fn estimate(&self) -> PlanEstimate {
        self.estimate
    }

    /// Input indices in the order the plan joins them (first = start of the
    /// greedy chain).
    #[must_use]
    pub fn join_order(&self) -> &[usize] {
        &self.order
    }

    /// Binding names in join order.
    #[must_use]
    pub fn join_order_bindings(&self) -> Vec<&str> {
        self.order
            .iter()
            .map(|&i| self.inputs[i].binding.as_str())
            .collect()
    }

    /// Per-join summaries in execution order.
    #[must_use]
    pub fn joins(&self) -> &[JoinSummary] {
        &self.joins
    }

    /// The schema of the query result.
    #[must_use]
    pub fn output_schema(&self) -> &Schema {
        &self.output_schema
    }

    /// Executes the plan (see [`crate::exec::execute`]).
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation failures.
    pub fn execute(&self) -> Result<Relation> {
        crate::exec::execute(self)
    }

    /// One-line-per-operator rendering for logs and benchmarks.
    #[must_use]
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan {} — est rows {:.1}, io {:.0}, cpu {:.0}\n",
            self.name, self.estimate.output_rows, self.estimate.io_blocks, self.estimate.cpu_tuples
        ));
        explain_node(self, &self.root, 1, &mut out);
        out
    }
}

fn explain_node(plan: &PhysicalPlan, node: &PlanNode, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match node {
        PlanNode::Scan { input, pushdown } => {
            let i = &plan.inputs[*input];
            match pushdown {
                Some(p) => out.push_str(&format!("{pad}scan {} σ[{p}]\n", i.binding)),
                None => out.push_str(&format!("{pad}scan {}\n", i.binding)),
            }
        }
        PlanNode::IndexScan {
            input,
            op,
            key,
            residual,
            ..
        } => {
            let i = &plan.inputs[*input];
            let kind = if *op == CompOp::Eq { "hash" } else { "sorted" };
            out.push_str(&format!(
                "{pad}index-scan {} ({kind} {op} {key}){}\n",
                i.binding,
                match residual {
                    Some(r) => format!(" σ[{r}]"),
                    None => String::new(),
                }
            ));
        }
        PlanNode::HashJoin {
            probe,
            build,
            probe_keys,
            residual,
            ..
        } => {
            out.push_str(&format!(
                "{pad}hash-join on {} key(s){}\n",
                probe_keys.len(),
                if residual.is_true() {
                    String::new()
                } else {
                    format!(" residual[{residual}]")
                }
            ));
            explain_node(plan, probe, depth + 1, out);
            explain_node(plan, build, depth + 1, out);
        }
        PlanNode::NestedLoop {
            outer,
            inner,
            condition,
            ..
        } => {
            out.push_str(&format!("{pad}nested-loop [{condition}]\n"));
            explain_node(plan, outer, depth + 1, out);
            explain_node(plan, inner, depth + 1, out);
        }
    }
}

/// Splits join clauses between two schemas into hash-key column pairs and
/// residual clauses — exactly the key extraction [`crate::algebra::join`]
/// performs, shared so planner, executor and the delta-join path agree.
pub(crate) fn split_equi_keys(
    left: &Schema,
    left_name: &str,
    right: &Schema,
    right_name: &str,
    clauses: &[PrimitiveClause],
) -> (Vec<(usize, usize)>, Vec<PrimitiveClause>) {
    let mut keys = Vec::new();
    let mut residual = Vec::new();
    for clause in clauses {
        if clause.op == CompOp::Eq {
            if let Operand::Column(rc) = &clause.right {
                if let (Ok(li), Ok(ri)) = (
                    left.resolve(&clause.left, left_name),
                    right.resolve(rc, right_name),
                ) {
                    keys.push((li, ri));
                    continue;
                }
                if let (Ok(ri), Ok(li)) = (
                    right.resolve(&clause.left, right_name),
                    left.resolve(rc, left_name),
                ) {
                    keys.push((li, ri));
                    continue;
                }
            }
        }
        residual.push(clause.clone());
    }
    (keys, residual)
}

/// Whether every column of `clause` resolves in `schema`.
fn resolvable(clause: &PrimitiveClause, schema: &Schema, name: &str) -> bool {
    clause
        .columns()
        .iter()
        .all(|c| schema.resolve(c, name).is_ok())
}

/// Plan-time sampling depth for distinct-key counting.
const DISTINCT_SAMPLE: usize = 1024;

/// Estimated number of distinct values in column `idx` of `rel` (measured
/// join-key statistic), from a bounded prefix sample: a sample that is
/// (almost) all-distinct extrapolates to a unique key, anything else is
/// taken as the full distinct count of a low-cardinality column.
fn distinct_count(rel: &Relation, idx: usize) -> usize {
    let n = rel.cardinality();
    let m = n.min(DISTINCT_SAMPLE);
    let s = rel.tuples()[..m]
        .iter()
        .map(|t| t.get(idx))
        .collect::<HashSet<_>>()
        .len();
    if m > 0 && s * 20 >= m * 19 {
        n // ≥95% of the sample distinct: treat as a key column
    } else {
        s
    }
}

/// Fraction of (up to [`SELECTIVITY_SAMPLE`]) sampled tuples satisfying
/// `pred` — the measured selectivity fallback.
#[allow(clippy::cast_precision_loss)]
fn sampled_selectivity(rel: &Relation, pred: &Predicate) -> Result<f64> {
    let n = rel.cardinality().min(SELECTIVITY_SAMPLE);
    if n == 0 {
        return Ok(1.0);
    }
    let mut hits = 0usize;
    for t in &rel.tuples()[..n] {
        if pred.eval(rel.schema(), t, rel.name())? {
            hits += 1;
        }
    }
    Ok(hits as f64 / n as f64)
}

/// A cost-justified index access path for one leaf.
struct IndexChoice {
    /// Position of the chosen clause in the pushed-down conjunction.
    clause: usize,
    /// Column position of the clause's left side in the input schema.
    col: usize,
    /// Estimated index I/O: one probe + blocks holding the matches.
    est_io: f64,
    /// Estimated matching rows of the indexed clause alone.
    est_matches: f64,
}

/// Weighs every indexable pushed-down clause (`column θ literal` with
/// `θ ∈ {=, <, ≤, ≥, >}`) against the full scan: estimated index I/O is
/// one probe plus `⌈matches/bfr⌉` blocks, with matches from the declared
/// selectivity or a sampled per-clause measurement. Returns the cheapest
/// clause that undercuts `full_io`, or `None` when scanning wins.
fn choose_index_clause(
    rel: &Relation,
    input: &QueryInput,
    pred: &Predicate,
    base_rows: f64,
    bfr: f64,
    full_io: f64,
) -> Result<Option<IndexChoice>> {
    let mut best: Option<IndexChoice> = None;
    for (ci, clause) in pred.clauses().iter().enumerate() {
        if !matches!(
            clause.op,
            CompOp::Eq | CompOp::Lt | CompOp::Le | CompOp::Ge | CompOp::Gt
        ) {
            continue;
        }
        let Operand::Literal(_) = &clause.right else {
            continue;
        };
        let Ok(col) = rel.schema().resolve(&clause.left, &input.binding) else {
            continue;
        };
        let clause_sel = match &input.stats {
            Some(s) => s.selectivity,
            None => sampled_selectivity(rel, &Predicate::single(clause.clone()))?,
        };
        let est_matches = base_rows * clause_sel;
        let est_io = 1.0 + (est_matches / bfr).ceil();
        if est_io < full_io && best.as_ref().is_none_or(|b| est_io < b.est_io) {
            best = Some(IndexChoice {
                clause: ci,
                col,
                est_io,
                est_matches,
            });
        }
    }
    Ok(best)
}

/// One subtree under construction during the greedy search.
struct Sub {
    node: PlanNode,
    schema: Schema,
    est_rows: f64,
    inputs: Vec<usize>,
    name: String,
}

/// Compiles a [`QuerySpec`] into a [`PhysicalPlan`].
///
/// # Errors
///
/// * [`Error::SchemaMismatch`] for an empty input list, conditions that
///   reference no input, or a projection/output length mismatch,
/// * column resolution and predicate type-check failures, exactly where the
///   naive evaluator would raise them.
#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
pub fn plan(spec: QuerySpec) -> Result<PhysicalPlan> {
    if spec.inputs.is_empty() {
        return Err(Error::SchemaMismatch {
            detail: "query needs at least one input".into(),
        });
    }
    if spec.projection.len() != spec.output.len() {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "projection has {} columns, output names {}",
                spec.projection.len(),
                spec.output.len()
            ),
        });
    }

    // Assign each clause to the first single input that resolves all its
    // columns (pushdown), or keep it for the join phase.
    let mut local: Vec<Vec<PrimitiveClause>> = vec![Vec::new(); spec.inputs.len()];
    let mut pool: Vec<PrimitiveClause> = Vec::new();
    'clauses: for clause in &spec.clauses {
        for (i, input) in spec.inputs.iter().enumerate() {
            if resolvable(clause, input.relation.schema(), &input.binding) {
                local[i].push(clause.clone());
                continue 'clauses;
            }
        }
        pool.push(clause.clone());
    }

    // Leaf subtrees: scans with pushed-down selections and base estimates.
    // When a pushed-down clause compares a column against a literal, the
    // cost model weighs an index-backed scan (one probe plus the blocks
    // holding the estimated matches) against the full scan and takes the
    // cheaper access path.
    let mut cpu_tuples = 0.0f64;
    let mut io_blocks = 0.0f64;
    let mut index_scans = 0u32;
    let mut leaves: Vec<Sub> = Vec::with_capacity(spec.inputs.len());
    for (i, (input, local_clauses)) in spec.inputs.iter().zip(local).enumerate() {
        let rel = &input.relation;
        let base_rows = match &input.stats {
            Some(s) => s.cardinality as f64,
            None => rel.cardinality() as f64,
        };
        let full_io = match &input.stats {
            Some(s) => s.full_scan_ios() as f64,
            None => (rel.cardinality() as u64).div_ceil(DEFAULT_BLOCKING_FACTOR) as f64,
        };
        let bfr = match &input.stats {
            Some(s) => s.blocking_factor as f64,
            None => DEFAULT_BLOCKING_FACTOR as f64,
        };
        if local_clauses.is_empty() {
            io_blocks += full_io;
            leaves.push(Sub {
                node: PlanNode::Scan {
                    input: i,
                    pushdown: None,
                },
                schema: rel.schema().clone(),
                est_rows: base_rows,
                inputs: vec![i],
                name: input.binding.clone(),
            });
            continue;
        }
        let pred = Predicate::new(local_clauses);
        pred.type_check(rel.schema(), &input.binding)?;
        let sel = match &input.stats {
            Some(s) => s.selectivity,
            None => sampled_selectivity(rel, &pred)?,
        };
        let est_rows = base_rows * sel;
        let choice = choose_index_clause(rel, input, &pred, base_rows, bfr, full_io)?;
        let node = match choice {
            Some(c) => {
                io_blocks += c.est_io;
                // Only the matched tuples are touched (plus the probe).
                cpu_tuples += c.est_matches + 1.0;
                index_scans += 1;
                let clause = &pred.clauses()[c.clause];
                let rest: Vec<PrimitiveClause> = pred
                    .clauses()
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != c.clause)
                    .map(|(_, cl)| cl.clone())
                    .collect();
                let Operand::Literal(key) = &clause.right else {
                    unreachable!("index candidates compare against literals");
                };
                PlanNode::IndexScan {
                    input: i,
                    col: c.col,
                    op: clause.op,
                    key: key.clone(),
                    residual: if rest.is_empty() {
                        None
                    } else {
                        Some(Predicate::new(rest))
                    },
                    pushdown: pred,
                }
            }
            None => {
                io_blocks += full_io;
                // The filter pass touches every (estimated) base tuple —
                // priced from the same statistic as the cardinality itself.
                cpu_tuples += base_rows;
                PlanNode::Scan {
                    input: i,
                    pushdown: Some(pred),
                }
            }
        };
        leaves.push(Sub {
            node,
            schema: rel.schema().clone(),
            est_rows,
            inputs: vec![i],
            name: input.binding.clone(),
        });
    }

    // Greedy chain: start from the smallest estimated leaf; repeatedly fold
    // in the connected leaf minimizing the estimated intermediate size.
    let start = leaves
        .iter()
        .enumerate()
        .min_by(|(ai, a), (bi, b)| {
            a.est_rows
                .partial_cmp(&b.est_rows)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ai.cmp(bi))
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut cur = leaves.remove(start);
    let mut order: Vec<usize> = cur.inputs.clone();
    let mut joins: Vec<JoinSummary> = Vec::new();

    while !leaves.is_empty() {
        // Score every remaining leaf; prefer connected candidates.
        let mut best: Option<(usize, bool, f64)> = None; // (leaf idx, connected, est)
        let mut first_err: Option<Error> = None;
        for (k, cand) in leaves.iter().enumerate() {
            let combined = match cur.schema.concat(&cand.schema) {
                Ok(s) => s,
                Err(e) => {
                    first_err.get_or_insert(e);
                    continue;
                }
            };
            let applicable: Vec<&PrimitiveClause> = pool
                .iter()
                .filter(|c| resolvable(c, &combined, &cand.name))
                .collect();
            let connected = !applicable.is_empty();
            let mut est = cur.est_rows * cand.est_rows;
            let (keys, residual) = split_equi_keys(
                &cur.schema,
                &cur.name,
                &cand.schema,
                &cand.name,
                &applicable.iter().map(|c| (*c).clone()).collect::<Vec<_>>(),
            );
            for &(_, build_idx) in &keys {
                let base = &spec.inputs[cand.inputs[0]].relation;
                let distinct = distinct_count(base, build_idx).max(1);
                est /= distinct as f64;
            }
            est *= THETA_SELECTIVITY.powi(i32::try_from(residual.len()).unwrap_or(i32::MAX));
            let better = match &best {
                None => true,
                Some((_, best_conn, best_est)) => {
                    (connected && !best_conn) || (connected == *best_conn && est < *best_est)
                }
            };
            if better {
                best = Some((k, connected, est));
            }
        }
        let Some((k, _, est_out)) = best else {
            // Every candidate failed schema concatenation (duplicate
            // qualified columns) — surface the first failure.
            return Err(first_err.unwrap_or(Error::SchemaMismatch {
                detail: "no joinable input".into(),
            }));
        };
        let cand = leaves.remove(k);
        order.extend(&cand.inputs);

        // Consume the clauses that become resolvable at this join.
        let combined = cur.schema.concat(&cand.schema)?;
        let (applicable, rest): (Vec<_>, Vec<_>) = pool
            .into_iter()
            .partition(|c| resolvable(c, &combined, &cand.name));
        pool = rest;

        // Build on the smaller estimated side, probe with the larger.
        let (probe, build) = if cand.est_rows <= cur.est_rows {
            (cur, cand)
        } else {
            (cand, cur)
        };
        let schema = probe.schema.concat(&build.schema)?;
        let name = format!("{}⋈{}", probe.name, build.name);
        let (keys, residual_clauses) = split_equi_keys(
            &probe.schema,
            &probe.name,
            &build.schema,
            &build.name,
            &applicable,
        );
        let residual = Predicate::new(residual_clauses);
        residual.type_check(&schema, &name)?;
        cpu_tuples += probe.est_rows + build.est_rows + est_out;
        joins.push(JoinSummary {
            probe: probe
                .inputs
                .iter()
                .map(|&i| spec.inputs[i].binding.clone())
                .collect(),
            build: build
                .inputs
                .iter()
                .map(|&i| spec.inputs[i].binding.clone())
                .collect(),
            hash: !keys.is_empty(),
            estimated_rows: est_out,
        });
        let mut inputs = probe.inputs.clone();
        inputs.extend(&build.inputs);
        cur = if keys.is_empty() {
            Sub {
                node: PlanNode::NestedLoop {
                    outer: Box::new(probe.node),
                    inner: Box::new(build.node),
                    condition: residual,
                    schema: schema.clone(),
                },
                schema,
                est_rows: est_out,
                inputs,
                name,
            }
        } else {
            let (probe_keys, build_keys): (Vec<usize>, Vec<usize>) = keys.into_iter().unzip();
            Sub {
                node: PlanNode::HashJoin {
                    probe: Box::new(probe.node),
                    build: Box::new(build.node),
                    probe_keys,
                    build_keys,
                    residual,
                    schema: schema.clone(),
                },
                schema,
                est_rows: est_out,
                inputs,
                name,
            }
        };
    }

    if !pool.is_empty() {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "conditions reference no FROM relation: {}",
                Predicate::new(pool)
            ),
        });
    }

    // Projection + rename, resolved at plan time.
    let projection: Vec<usize> = spec
        .projection
        .iter()
        .map(|c| cur.schema.resolve(c, &spec.name))
        .collect::<Result<_>>()?;
    let output_schema = Schema::new(
        projection
            .iter()
            .zip(&spec.output)
            .map(|(&idx, name)| {
                let col = cur.schema.column(idx);
                ColumnDef::sized(name.clone(), col.ty, col.byte_size)
            })
            .collect(),
    )?;
    cpu_tuples += cur.est_rows;

    let estimate = PlanEstimate {
        output_rows: cur.est_rows,
        io_blocks,
        cpu_tuples,
        total: io_blocks + cpu_tuples,
        index_scans,
    };
    Ok(PhysicalPlan {
        name: spec.name,
        inputs: spec.inputs,
        root: cur.node,
        projection,
        output_schema,
        estimate,
        order,
        joins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::types::{DataType, Value};

    fn rel(name: &str, cols: &[(&str, DataType)], rows: Vec<crate::tuple::Tuple>) -> Relation {
        Relation::with_tuples(name, Schema::of(cols).unwrap().qualify(name), rows).unwrap()
    }

    fn input(binding: &str, relation: Relation) -> QueryInput {
        QueryInput {
            binding: binding.into(),
            relation,
            stats: None,
        }
    }

    fn two_way_spec(big_rows: i64, small_rows: i64) -> QuerySpec {
        let big = rel(
            "B",
            &[("K", DataType::Int), ("P", DataType::Int)],
            (0..big_rows).map(|k| tup![k, k % 7]).collect(),
        );
        let small = rel(
            "S",
            &[("K", DataType::Int), ("Q", DataType::Int)],
            (0..small_rows).map(|k| tup![k, k]).collect(),
        );
        QuerySpec {
            name: "V".into(),
            inputs: vec![input("B", big), input("S", small)],
            clauses: vec![PrimitiveClause::eq(
                ColumnRef::parse("B.K"),
                ColumnRef::parse("S.K"),
            )],
            projection: vec![ColumnRef::parse("B.K"), ColumnRef::parse("S.Q")],
            output: vec![ColumnRef::bare("K"), ColumnRef::bare("Q")],
        }
    }

    #[test]
    fn hash_table_builds_on_smaller_side() {
        // FROM order lists the big relation first; the planner must still
        // build the hash table on the small side.
        let p = plan(two_way_spec(200, 5)).unwrap();
        assert_eq!(p.joins().len(), 1);
        let j = &p.joins()[0];
        assert!(j.hash);
        assert_eq!(j.build, vec!["S".to_owned()], "{j:?}");
        assert_eq!(j.probe, vec!["B".to_owned()]);

        // And symmetrically when the small relation comes first.
        let mut spec = two_way_spec(200, 5);
        spec.inputs.reverse();
        let p = plan(spec).unwrap();
        let j = &p.joins()[0];
        assert_eq!(j.build, vec!["S".to_owned()], "{j:?}");
    }

    #[test]
    fn declared_stats_override_measured_cardinality() {
        // Declared statistics say B is tiny and S is huge, contradicting the
        // extents — the planner must trust the declaration (§6.1: the MKB's
        // registered statistics drive the cost model).
        let mut spec = two_way_spec(200, 5);
        spec.inputs[0].stats = Some(RelationStats::new(2, 16));
        spec.inputs[1].stats = Some(RelationStats::new(100_000, 16));
        let p = plan(spec).unwrap();
        let j = &p.joins()[0];
        assert_eq!(j.build, vec!["B".to_owned()], "{j:?}");
    }

    #[test]
    fn join_order_starts_at_most_selective_input() {
        // Three-way chain; C carries a highly selective local filter, so the
        // greedy chain starts there even though it is declared last.
        let a = rel(
            "A",
            &[("K", DataType::Int)],
            (0..50).map(|k| tup![k]).collect(),
        );
        let b = rel(
            "B",
            &[("K", DataType::Int), ("P", DataType::Int)],
            (0..50).map(|k| tup![k, k % 3]).collect(),
        );
        let c = rel(
            "C",
            &[("K", DataType::Int), ("Q", DataType::Int)],
            (0..50).map(|k| tup![k, k]).collect(),
        );
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![input("A", a), input("B", b), input("C", c)],
            clauses: vec![
                PrimitiveClause::eq(ColumnRef::parse("A.K"), ColumnRef::parse("B.K")),
                PrimitiveClause::eq(ColumnRef::parse("B.K"), ColumnRef::parse("C.K")),
                PrimitiveClause::lit(ColumnRef::parse("C.Q"), CompOp::Lt, Value::Int(2)),
            ],
            projection: vec![ColumnRef::parse("A.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let p = plan(spec).unwrap();
        assert_eq!(p.join_order_bindings()[0], "C", "{}", p.explain());
        // The pushed-down selection sits in C's scan.
        let est = p.estimate();
        assert!(est.output_rows < 10.0, "{est:?}");
        assert!(est.io_blocks > 0.0 && est.total > est.io_blocks);
    }

    #[test]
    fn unresolvable_condition_is_rejected() {
        let mut spec = two_way_spec(5, 5);
        spec.clauses.push(PrimitiveClause::lit(
            ColumnRef::parse("Z.X"),
            CompOp::Eq,
            Value::Int(1),
        ));
        let e = plan(spec).unwrap_err();
        assert!(e.to_string().contains("reference no FROM relation"), "{e}");
    }

    #[test]
    fn empty_inputs_rejected() {
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![],
            clauses: vec![],
            projection: vec![],
            output: vec![],
        };
        assert!(plan(spec).is_err());
    }

    #[test]
    fn index_scan_chosen_when_cost_model_wins() {
        // 500 rows, bfr 10 → full scan 50 blocks. The equality clause
        // matches ~5 rows (sampled), so the index path costs 1 probe +
        // ⌈matches/bfr⌉ blocks ≪ 50: the planner must take it.
        let big = rel(
            "R",
            &[("K", DataType::Int), ("P", DataType::Int)],
            (0..500).map(|k| tup![k % 100, k]).collect(),
        );
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![input("R", big)],
            clauses: vec![PrimitiveClause::lit(
                ColumnRef::parse("R.K"),
                CompOp::Eq,
                Value::Int(7),
            )],
            projection: vec![ColumnRef::parse("R.P")],
            output: vec![ColumnRef::bare("P")],
        };
        let p = plan(spec).unwrap();
        match &p.root {
            PlanNode::IndexScan {
                op, key, residual, ..
            } => {
                assert_eq!(*op, CompOp::Eq);
                assert_eq!(key, &Value::Int(7));
                assert!(residual.is_none());
            }
            other => panic!("expected an index scan, got {other:?}"),
        }
        let est = p.estimate();
        assert_eq!(est.index_scans, 1);
        assert!(
            est.io_blocks < 50.0,
            "index access must undercut the 50-block full scan: {est:?}"
        );
        // Execution through the index stays correct.
        let out = p.execute().unwrap();
        assert_eq!(out.cardinality(), 5);
        assert_eq!(p.explain().lines().count(), 2, "{}", p.explain());
        assert!(p.explain().contains("index-scan R"), "{}", p.explain());
    }

    #[test]
    fn full_scan_kept_when_index_does_not_pay() {
        // 10 rows fit in one block: a probe + data block can never beat
        // the 1-block full scan, whatever the selectivity.
        let tiny = rel(
            "R",
            &[("K", DataType::Int)],
            (0..10).map(|k| tup![k]).collect(),
        );
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![input("R", tiny)],
            clauses: vec![PrimitiveClause::lit(
                ColumnRef::parse("R.K"),
                CompOp::Eq,
                Value::Int(3),
            )],
            projection: vec![ColumnRef::parse("R.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let p = plan(spec).unwrap();
        assert!(
            matches!(
                &p.root,
                PlanNode::Scan {
                    pushdown: Some(_),
                    ..
                }
            ),
            "{:?}",
            p.root
        );
        assert_eq!(p.estimate().index_scans, 0);
    }

    #[test]
    fn range_clause_uses_sorted_index_with_residual() {
        let big = rel(
            "R",
            &[("K", DataType::Int), ("P", DataType::Int)],
            (0..500).map(|k| tup![k, k % 2]).collect(),
        );
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![input("R", big)],
            clauses: vec![
                PrimitiveClause::lit(ColumnRef::parse("R.K"), CompOp::Lt, Value::Int(20)),
                PrimitiveClause::lit(ColumnRef::parse("R.P"), CompOp::Eq, Value::Int(1)),
            ],
            projection: vec![ColumnRef::parse("R.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let p = plan(spec).unwrap();
        match &p.root {
            PlanNode::IndexScan { op, residual, .. } => {
                // `K < 20` matches ~20 rows, `P = 1` ~250: the cheaper
                // range clause is indexed, the equality filters residually.
                assert_eq!(*op, CompOp::Lt);
                assert!(residual.is_some());
            }
            other => panic!("expected an index scan, got {other:?}"),
        }
        let out = p.execute().unwrap();
        let expect: Vec<_> = (0..20i64).filter(|k| k % 2 == 1).map(|k| tup![k]).collect();
        assert_eq!(out.tuples(), &expect[..]);
    }

    #[test]
    fn theta_join_degrades_to_nested_loop() {
        let mut spec = two_way_spec(10, 5);
        spec.clauses = vec![PrimitiveClause::cols(
            ColumnRef::parse("B.K"),
            CompOp::Lt,
            ColumnRef::parse("S.K"),
        )];
        let p = plan(spec).unwrap();
        assert!(!p.joins()[0].hash);
        assert!(matches!(p.root, PlanNode::NestedLoop { .. }));
    }
}
