//! Common-subset-of-attributes operators (paper Fig. 7, Definitions 1–2).
//!
//! When a legal rewriting `V_i` preserves a different interface than the
//! original view `V`, extents are compared **after projecting both sides onto
//! the common attribute names** and removing duplicates:
//!
//! * `V^(V_i) = π_{Attr(V) ∩ Attr(V_i)} V` (Definition 1),
//! * `V =~ V_i`, `V_i ⊆~ V`, `V ∩~ V_i`, `V \~ V_i` (Figure 7).
//!
//! Matching is by *output column name* — in the paper's Example 2, `V_1(A,B)`
//! and `V_2(B,C,D)` share the column `B` regardless of which base relation
//! supplied it.

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::schema::ColumnRef;

/// The common attribute names of two relations, in `a`'s column order.
#[must_use]
pub fn common_attributes(a: &Relation, b: &Relation) -> Vec<String> {
    a.schema()
        .columns()
        .iter()
        .filter(|ca| {
            b.schema()
                .columns()
                .iter()
                .any(|cb| cb.column.name == ca.column.name)
        })
        .map(|c| c.column.name.clone())
        .collect()
}

/// `V^(other)` — projection of `rel` onto the attributes it shares with
/// `other`, duplicates removed (Definition 1).
///
/// # Errors
///
/// [`Error::SchemaMismatch`] when the relations share no attributes
/// (`Attr(V) ∩ Attr(V_i) ≠ ∅` is a precondition in the paper).
pub fn project_common(rel: &Relation, other: &Relation) -> Result<Relation> {
    let common = common_attributes(rel, other);
    if common.is_empty() {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "relations `{}` and `{}` share no attributes",
                rel.name(),
                other.name()
            ),
        });
    }
    let cols: Vec<ColumnRef> = common.into_iter().map(ColumnRef::bare).collect();
    crate::algebra::project(rel, &cols, true)
}

fn common_pair(a: &Relation, b: &Relation) -> Result<(Relation, Relation)> {
    let pa = project_common(a, b)?;
    let pb = project_common(b, a)?;
    // Align b's projection to a's column order (common_attributes preserves
    // the order of the *first* argument, which may differ between the calls).
    let order: Vec<ColumnRef> = pa
        .schema()
        .columns()
        .iter()
        .map(|c| ColumnRef::bare(c.column.name.clone()))
        .collect();
    let pb = crate::algebra::project(&pb, &order, true)?;
    if !pa.schema().union_compatible(pb.schema()) {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "common attributes of `{}` and `{}` have mismatched types",
                a.name(),
                b.name()
            ),
        });
    }
    Ok((pa, pb))
}

/// `a =~ b` — common-subset-of-attributes equivalence (Definition 2):
/// projections on the common attributes are equal as sets.
///
/// # Errors
///
/// Propagates projection/compatibility failures.
pub fn cs_equal(a: &Relation, b: &Relation) -> Result<bool> {
    let (pa, pb) = common_pair(a, b)?;
    Ok(pa.distinct().tuples() == pb.distinct().tuples())
}

/// `a ⊆~ b` — every tuple of `a` appears in `b` on the common attributes
/// (Fig. 7, second row).
///
/// # Errors
///
/// Propagates projection/compatibility failures.
pub fn cs_subset(a: &Relation, b: &Relation) -> Result<bool> {
    let (pa, pb) = common_pair(a, b)?;
    Ok(crate::algebra::difference(&pa, &pb)?.is_empty())
}

/// `a ∩~ b` — tuples common to both on the common attributes (Fig. 7).
///
/// # Errors
///
/// Propagates projection/compatibility failures.
pub fn cs_intersect(a: &Relation, b: &Relation) -> Result<Relation> {
    let (pa, pb) = common_pair(a, b)?;
    crate::algebra::intersect(&pa, &pb)
}

/// `a \~ b` — tuples of `a` (projected) not present in `b` (projected)
/// (Fig. 7, last row).
///
/// # Errors
///
/// Propagates projection/compatibility failures.
pub fn cs_minus(a: &Relation, b: &Relation) -> Result<Relation> {
    let (pa, pb) = common_pair(a, b)?;
    crate::algebra::difference(&pa, &pb)
}

/// Sizes needed by the extent-divergence formulas (Eq. 13–15), computed
/// exactly from materialized extents:
/// `|V^(Vi)|`, `|Vi^(V)|` and `|V ∩~ Vi|`, all with duplicates removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonExtentSizes {
    /// `|V^(V_i)|` — original view projected on common attributes.
    pub original: usize,
    /// `|V_i^(V)|` — rewriting projected on common attributes.
    pub rewriting: usize,
    /// `|V ∩~ V_i|` — overlap on common attributes.
    pub overlap: usize,
}

/// Measures [`CommonExtentSizes`] for an original view extent and a rewriting
/// extent.
///
/// # Errors
///
/// Propagates projection/compatibility failures.
pub fn measure_common_sizes(
    original: &Relation,
    rewriting: &Relation,
) -> Result<CommonExtentSizes> {
    let (po, pr) = common_pair(original, rewriting)?;
    let overlap = crate::algebra::intersect(&po, &pr)?.cardinality();
    Ok(CommonExtentSizes {
        original: po.cardinality(),
        rewriting: pr.cardinality(),
        overlap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tup;
    use crate::types::DataType;

    /// Data in the spirit of the paper's Example 2 (Fig. 5): original view
    /// V(A,B,C,D) plus rewritings V1(A,B) and V2(B,C,D), constructed so that
    /// the paper's stated counts hold exactly — V1 and V2 each preserve
    /// *three* tuples of V on the common attributes, V1 generates *one*
    /// surplus tuple and V2 generates *four* (§5.1).
    fn example2() -> (Relation, Relation, Relation) {
        let v = Relation::with_tuples(
            "V",
            Schema::of(&[
                ("A", DataType::Int),
                ("B", DataType::Int),
                ("C", DataType::Int),
                ("D", DataType::Int),
            ])
            .unwrap(),
            vec![
                tup![1, 1, 1, 2],
                tup![1, 6, 3, 5],
                tup![2, 2, 4, 6],
                tup![2, 3, 1, 3],
                tup![3, 9, 7, 9],
                tup![3, 6, 5, 0],
            ],
        )
        .unwrap();
        // V1 = SELECT A, B FROM S — preserves (1,1), (1,6), (2,2); surplus (6,4).
        let v1 = Relation::with_tuples(
            "V1",
            Schema::of(&[("A", DataType::Int), ("B", DataType::Int)]).unwrap(),
            vec![tup![1, 1], tup![1, 6], tup![2, 2], tup![6, 4]],
        )
        .unwrap();
        // V2 = SELECT B, C, D FROM T — preserves (1,1,2), (6,3,5), (2,4,6);
        // surplus (7,6,7), (8,1,7), (8,7,2), (6,4,6).
        let v2 = Relation::with_tuples(
            "V2",
            Schema::of(&[
                ("B", DataType::Int),
                ("C", DataType::Int),
                ("D", DataType::Int),
            ])
            .unwrap(),
            vec![
                tup![1, 1, 2],
                tup![6, 3, 5],
                tup![2, 4, 6],
                tup![7, 6, 7],
                tup![8, 1, 7],
                tup![8, 7, 2],
                tup![6, 4, 6],
            ],
        )
        .unwrap();
        (v, v1, v2)
    }

    #[test]
    fn common_attribute_discovery() {
        let (v, v1, v2) = example2();
        assert_eq!(common_attributes(&v, &v1), vec!["A", "B"]);
        assert_eq!(common_attributes(&v, &v2), vec!["B", "C", "D"]);
        assert_eq!(common_attributes(&v1, &v2), vec!["B"]);
    }

    #[test]
    fn example2_v1_preserves_three_tuples_one_surplus() {
        // §5.1: "V1 generates one surplus tuple that was not in the original
        // view V" and preserves three tuples on the common attributes {A,B}.
        let (v, v1, _) = example2();
        let sizes = measure_common_sizes(&v, &v1).unwrap();
        assert_eq!(sizes.overlap, 3);
        let inter = cs_intersect(&v, &v1).unwrap();
        assert_eq!(inter.tuples(), &[tup![1, 1], tup![1, 6], tup![2, 2]]);
        let surplus = cs_minus(&v1, &v).unwrap();
        assert_eq!(surplus.tuples(), &[tup![6, 4]]);
    }

    #[test]
    fn example2_v2_preserves_three_tuples_four_surplus() {
        // §5.1: "V2 returns four surplus tuples that were not in V" and
        // preserves three tuples on the common attributes {B,C,D}.
        let (v, _, v2) = example2();
        let inter = cs_intersect(&v, &v2).unwrap();
        assert_eq!(inter.cardinality(), 3);
        assert_eq!(
            inter.tuples(),
            &[tup![1, 1, 2], tup![2, 4, 6], tup![6, 3, 5]]
        );
        let surplus = cs_minus(&v2, &v).unwrap();
        assert_eq!(surplus.cardinality(), 4);
    }

    #[test]
    fn cs_equal_and_subset() {
        let (v, v1, _) = example2();
        assert!(!cs_equal(&v, &v1).unwrap());
        assert!(cs_equal(&v, &v).unwrap());
        assert!(cs_subset(&v, &v).unwrap());
        assert!(!cs_subset(&v1, &v).unwrap());
        // Intersection is a cs-subset of both sides.
        let inter = cs_intersect(&v, &v1).unwrap();
        assert!(cs_subset(&inter, &v).unwrap());
        assert!(cs_subset(&inter, &v1).unwrap());
    }

    #[test]
    fn disjoint_schemas_error() {
        let a = Relation::empty("A", Schema::of(&[("X", DataType::Int)]).unwrap());
        let b = Relation::empty("B", Schema::of(&[("Y", DataType::Int)]).unwrap());
        assert!(project_common(&a, &b).is_err());
    }

    #[test]
    fn common_pair_alignment_handles_different_column_order() {
        let a = Relation::with_tuples(
            "A",
            Schema::of(&[("X", DataType::Int), ("Y", DataType::Int)]).unwrap(),
            vec![tup![1, 2]],
        )
        .unwrap();
        let b = Relation::with_tuples(
            "B",
            Schema::of(&[("Y", DataType::Int), ("X", DataType::Int)]).unwrap(),
            vec![tup![2, 1]],
        )
        .unwrap();
        assert!(cs_equal(&a, &b).unwrap());
    }

    #[test]
    fn mismatched_common_types_error() {
        let a = Relation::empty("A", Schema::of(&[("X", DataType::Int)]).unwrap());
        let b = Relation::empty("B", Schema::of(&[("X", DataType::Text)]).unwrap());
        assert!(cs_equal(&a, &b).is_err());
    }

    #[test]
    fn measure_sizes_dedups() {
        let a = Relation::with_tuples(
            "A",
            Schema::of(&[("X", DataType::Int)]).unwrap(),
            vec![tup![1], tup![1], tup![2]],
        )
        .unwrap();
        let b = Relation::with_tuples(
            "B",
            Schema::of(&[("X", DataType::Int)]).unwrap(),
            vec![tup![2], tup![2], tup![3]],
        )
        .unwrap();
        let s = measure_common_sizes(&a, &b).unwrap();
        assert_eq!(
            s,
            CommonExtentSizes {
                original: 2,
                rewriting: 2,
                overlap: 1
            }
        );
    }
}
