//! Tuples: fixed-arity sequences of values.

use std::fmt;

use crate::types::Value;

/// A tuple of values. Ordering and hashing are derived from the values, so
/// tuples can be deduplicated and used as map keys (the paper compares
/// extents "with duplicates removed", §5.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Builds a tuple from values.
    #[must_use]
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple {
            values: values.into_boxed_slice(),
        }
    }

    /// Number of values.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values, in schema order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `idx`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (indices come from schema resolution).
    #[must_use]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Projects the tuple onto the given column indices — the paper's
    /// `t[Attr(V) ∩ Attr(V_i)]` notation (Def. 2).
    #[must_use]
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenates two tuples (join results).
    #[must_use]
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Actual byte size of this tuple's values.
    #[must_use]
    pub fn byte_size(&self) -> u64 {
        self.values.iter().map(|v| u64::from(v.byte_size())).sum()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(values: [Value; N]) -> Self {
        Tuple::new(values.into_iter().collect())
    }
}

/// Builds a tuple from anything convertible to values.
///
/// ```
/// use eve_relational::tup;
/// let t = tup![1, "Asia", true];
/// assert_eq!(t.arity(), 3);
/// ```
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn project_reorders_and_selects() {
        let t = tup![1, "x", 3];
        assert_eq!(t.project(&[2, 0]), tup![3, 1]);
    }

    #[test]
    fn concat_appends() {
        assert_eq!(tup![1].concat(&tup![2, 3]), tup![1, 2, 3]);
    }

    #[test]
    fn equality_and_hash_by_value() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(tup![1, "a"]);
        assert!(s.contains(&tup![1, "a"]));
        assert!(!s.contains(&tup![1, "b"]));
    }

    #[test]
    fn display() {
        assert_eq!(tup![1, "Asia"].to_string(), "(1, 'Asia')");
    }

    #[test]
    fn byte_size_sums_values() {
        assert_eq!(tup![1, "abcd"].byte_size(), 12);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(tup![1, 2] < tup![1, 3]);
        assert!(tup![1, 2] < tup![2, 0]);
    }
}
