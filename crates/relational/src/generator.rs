//! Deterministic synthetic data generation.
//!
//! The paper's experiments assume relations with controlled cardinalities,
//! selection selectivities, join selectivities, and containment (PC)
//! relationships between relations (e.g. Experiment 4's chain
//! `S1 ⊆ S2 ⊆ S3 = R2 ⊆ S4 ⊆ S5`). This module generates extents realizing
//! those assumptions so the analytic QC-Model can be validated against
//! measured data.
//!
//! All generation is seeded ([`rand::rngs::StdRng`]); the same spec and seed
//! always produce the same extent.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::{Error, Result};
use crate::relation::Relation;
use crate::schema::{ColumnDef, ColumnRef, Schema};
use crate::tuple::Tuple;
use crate::types::{DataType, Value};

/// Specification of one generated attribute.
#[derive(Debug, Clone)]
pub struct AttrSpec {
    /// Attribute name.
    pub name: String,
    /// Values are drawn uniformly from `0..domain`. For an equijoin of two
    /// relations generated over the same domain, the expected join
    /// selectivity is `1 / domain`.
    pub domain: u64,
}

impl AttrSpec {
    /// Builds an attribute spec.
    #[must_use]
    pub fn new(name: impl Into<String>, domain: u64) -> AttrSpec {
        AttrSpec {
            name: name.into(),
            domain,
        }
    }
}

/// Specification of a generated relation.
#[derive(Debug, Clone)]
pub struct RelationSpec {
    /// Relation name (columns are qualified with it).
    pub name: String,
    /// Attribute specifications.
    pub attrs: Vec<AttrSpec>,
    /// Number of tuples to generate.
    pub cardinality: usize,
    /// When `true`, generated tuples are pairwise distinct.
    pub distinct: bool,
}

impl RelationSpec {
    /// Builds a relation spec producing distinct tuples.
    #[must_use]
    pub fn new(name: impl Into<String>, attrs: Vec<AttrSpec>, cardinality: usize) -> RelationSpec {
        RelationSpec {
            name: name.into(),
            attrs,
            cardinality,
            distinct: true,
        }
    }

    fn schema(&self) -> Result<Schema> {
        Schema::new(
            self.attrs
                .iter()
                .map(|a| {
                    ColumnDef::new(
                        ColumnRef::qualified(self.name.clone(), a.name.clone()),
                        DataType::Int,
                    )
                })
                .collect(),
        )
    }

    /// Total number of distinct tuples the attribute domains allow.
    fn domain_size(&self) -> u128 {
        self.attrs
            .iter()
            .map(|a| u128::from(a.domain.max(1)))
            .product()
    }
}

/// Generates a relation according to `spec`, deterministically from `seed`.
///
/// # Errors
///
/// [`Error::Generator`] when `spec.distinct` is set but the attribute domains
/// cannot hold `cardinality` distinct tuples.
pub fn generate(spec: &RelationSpec, seed: u64) -> Result<Relation> {
    if spec.distinct && (spec.cardinality as u128) > spec.domain_size() {
        return Err(Error::Generator {
            detail: format!(
                "cannot generate {} distinct tuples from a domain of {}",
                spec.cardinality,
                spec.domain_size()
            ),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = spec.schema()?;
    let mut rel = Relation::empty(spec.name.clone(), schema);
    let mut seen = std::collections::BTreeSet::new();
    while rel.cardinality() < spec.cardinality {
        let tuple = Tuple::new(
            spec.attrs
                .iter()
                .map(|a| {
                    #[allow(clippy::cast_possible_wrap)]
                    Value::Int(rng.gen_range(0..a.domain.max(1)) as i64)
                })
                .collect(),
        );
        if spec.distinct && !seen.insert(tuple.clone()) {
            continue;
        }
        rel.insert(tuple)?;
    }
    Ok(rel)
}

/// Generates a relation `sub ⊆ base` by sampling `cardinality` distinct
/// tuples from `base` (realizing a *complete* PC constraint `sub ⊆ base`).
/// Columns are re-qualified with `name`.
///
/// # Errors
///
/// [`Error::Generator`] if `base` holds fewer distinct tuples than requested.
pub fn generate_subset(
    base: &Relation,
    name: &str,
    cardinality: usize,
    seed: u64,
) -> Result<Relation> {
    let distinct = base.distinct();
    if cardinality > distinct.cardinality() {
        return Err(Error::Generator {
            detail: format!(
                "subset of {cardinality} tuples requested from base with {} distinct tuples",
                distinct.cardinality()
            ),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<Tuple> = distinct.tuples().to_vec();
    rows.shuffle(&mut rng);
    rows.truncate(cardinality);
    rows.sort();
    let schema = base.schema().unqualify()?.qualify(name);
    Relation::with_tuples(name, schema, rows)
}

/// Generates a relation `sup ⊇ base`: all of `base` plus `extra` fresh
/// distinct tuples drawn from the given per-attribute domains, disjoint from
/// `base` (realizing a PC constraint `base ⊆ sup`).
///
/// # Errors
///
/// [`Error::Generator`] when the domain cannot supply enough fresh tuples.
pub fn generate_superset(
    base: &Relation,
    name: &str,
    extra: usize,
    domains: &[u64],
    seed: u64,
) -> Result<Relation> {
    if domains.len() != base.schema().arity() {
        return Err(Error::Generator {
            detail: format!(
                "superset generation needs {} domains, got {}",
                base.schema().arity(),
                domains.len()
            ),
        });
    }
    let capacity: u128 = domains.iter().map(|&d| u128::from(d.max(1))).product();
    let base_distinct = base.distinct();
    if (base_distinct.cardinality() + extra) as u128 > capacity {
        return Err(Error::Generator {
            detail: format!(
                "cannot add {extra} fresh tuples: domain capacity {capacity} too small"
            ),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: std::collections::BTreeSet<Tuple> =
        base_distinct.tuples().iter().cloned().collect();
    let mut rows: Vec<Tuple> = base_distinct.tuples().to_vec();
    let mut added = 0usize;
    while added < extra {
        let tuple = Tuple::new(
            domains
                .iter()
                .map(|&d| {
                    #[allow(clippy::cast_possible_wrap)]
                    Value::Int(rng.gen_range(0..d.max(1)) as i64)
                })
                .collect(),
        );
        if seen.insert(tuple.clone()) {
            rows.push(tuple);
            added += 1;
        }
    }
    rows.sort();
    let schema = base.schema().unqualify()?.qualify(name);
    Relation::with_tuples(name, schema, rows)
}

/// Generates a chain of relations realizing Experiment 4's containment
/// pattern: given ascending cardinalities `c_1 ≤ … ≤ c_k`, produces
/// relations `S_1 ⊆ S_2 ⊆ … ⊆ S_k` named `name_1 … name_k`, where `S_k` is
/// drawn from `spec` (with `spec.cardinality = c_k`).
///
/// # Errors
///
/// Propagates generation failures; [`Error::Generator`] if the cardinalities
/// are not ascending.
pub fn generate_containment_chain(
    spec: &RelationSpec,
    base_name: &str,
    cards: &[usize],
    seed: u64,
) -> Result<Vec<Relation>> {
    if cards.windows(2).any(|w| w[0] > w[1]) {
        return Err(Error::Generator {
            detail: "containment chain cardinalities must be ascending".to_owned(),
        });
    }
    let Some(&max_card) = cards.last() else {
        return Ok(Vec::new());
    };
    let mut top_spec = spec.clone();
    top_spec.cardinality = max_card;
    top_spec.name = format!("{base_name}{}", cards.len());
    let top = generate(&top_spec, seed)?;
    let mut out: Vec<Relation> = Vec::with_capacity(cards.len());
    let mut current = top;
    for (i, &c) in cards.iter().enumerate().rev() {
        let name = format!("{base_name}{}", i + 1);
        let r = if c == current.cardinality() {
            let schema = current.schema().unqualify()?.qualify(&name);
            Relation::with_tuples(&name, schema, current.tuples().to_vec())?
        } else {
            generate_subset(&current, &name, c, seed.wrapping_add(i as u64 + 1))?
        };
        current = r.clone();
        out.push(r);
    }
    out.reverse();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::cs_subset;

    fn spec(card: usize) -> RelationSpec {
        RelationSpec::new(
            "R",
            vec![AttrSpec::new("A", 10_000), AttrSpec::new("B", 10_000)],
            card,
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&spec(50), 42).unwrap();
        let b = generate(&spec(50), 42).unwrap();
        assert_eq!(a, b);
        let c = generate(&spec(50), 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn distinct_generation_has_no_duplicates() {
        let r = generate(&spec(200), 7).unwrap();
        assert_eq!(r.distinct_cardinality(), 200);
    }

    #[test]
    fn impossible_distinct_request_errors() {
        let s = RelationSpec::new("R", vec![AttrSpec::new("A", 3)], 10);
        assert!(matches!(generate(&s, 1), Err(Error::Generator { .. })));
    }

    #[test]
    fn subset_is_contained() {
        let base = generate(&spec(100), 1).unwrap();
        let sub = generate_subset(&base, "S", 40, 2).unwrap();
        assert_eq!(sub.cardinality(), 40);
        assert!(cs_subset(&sub, &base).unwrap());
    }

    #[test]
    fn subset_too_large_errors() {
        let base = generate(&spec(10), 1).unwrap();
        assert!(generate_subset(&base, "S", 11, 2).is_err());
    }

    #[test]
    fn superset_contains_base() {
        let base = generate(&spec(50), 3).unwrap();
        let sup = generate_superset(&base, "T", 25, &[10_000, 10_000], 4).unwrap();
        assert_eq!(sup.cardinality(), 75);
        assert!(cs_subset(&base, &sup).unwrap());
        assert_eq!(sup.distinct_cardinality(), 75);
    }

    #[test]
    fn containment_chain_realizes_experiment4() {
        // Experiment 4 cardinalities scaled down: 20 ⊆ 30 ⊆ 40 ⊆ 50 ⊆ 60.
        let chain = generate_containment_chain(&spec(0), "S", &[20, 30, 40, 50, 60], 11).unwrap();
        assert_eq!(chain.len(), 5);
        for (i, r) in chain.iter().enumerate() {
            assert_eq!(r.cardinality(), 20 + 10 * i);
        }
        for w in chain.windows(2) {
            assert!(cs_subset(&w[0], &w[1]).unwrap());
        }
        assert_eq!(chain[0].name(), "S1");
        assert_eq!(chain[4].name(), "S5");
    }

    #[test]
    fn containment_chain_rejects_descending() {
        assert!(generate_containment_chain(&spec(0), "S", &[5, 3], 1).is_err());
    }

    #[test]
    fn join_selectivity_tracks_domain() {
        use crate::predicate::{Predicate, PrimitiveClause};
        // Two relations with a key over domain 100 ⇒ expected js ≈ 1/100.
        let a = generate(
            &RelationSpec::new(
                "A",
                vec![AttrSpec::new("K", 100), AttrSpec::new("P", 1_000_000)],
                200,
            ),
            5,
        )
        .unwrap();
        let b = generate(
            &RelationSpec::new(
                "B",
                vec![AttrSpec::new("K", 100), AttrSpec::new("Q", 1_000_000)],
                200,
            ),
            6,
        )
        .unwrap();
        let on = Predicate::single(PrimitiveClause::eq(
            ColumnRef::parse("A.K"),
            ColumnRef::parse("B.K"),
        ));
        let js = crate::stats::measured_join_selectivity(&a, &b, &on).unwrap();
        assert!((js - 0.01).abs() < 0.005, "js = {js}");
    }
}
