//! Named, typed, in-memory relations.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::types::Value;

/// An in-memory relation: a name, a schema and a bag of tuples.
///
/// Tuples are stored in insertion order; [`Relation::distinct`] produces the
/// set semantics the paper uses when comparing view extents ("with duplicates
/// removed first", §5.4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation.
    #[must_use]
    pub fn empty(name: impl Into<String>, schema: Schema) -> Relation {
        Relation {
            name: name.into(),
            schema,
            tuples: Vec::new(),
        }
    }

    /// Creates a relation and inserts all `tuples`, checking arity and types.
    ///
    /// # Errors
    ///
    /// Propagates [`Relation::insert`] failures.
    pub fn with_tuples(
        name: impl Into<String>,
        schema: Schema,
        tuples: Vec<Tuple>,
    ) -> Result<Relation> {
        let mut r = Relation::empty(name, schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// Relation name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the relation.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples — the paper's cardinality `|R|` (§6.1 statistic 1).
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in insertion order.
    #[must_use]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Inserts a tuple after validating arity and column types.
    ///
    /// # Errors
    ///
    /// [`Error::ArityMismatch`] or [`Error::TypeMismatch`].
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        self.validate(&tuple)?;
        self.tuples.push(tuple);
        Ok(())
    }

    /// Deletes (one occurrence of) every tuple in `tuples` that is present.
    /// Returns how many tuples were actually removed.
    pub fn delete(&mut self, tuples: &[Tuple]) -> usize {
        let mut removed = 0;
        for t in tuples {
            if let Some(pos) = self.tuples.iter().position(|x| x == t) {
                self.tuples.remove(pos);
                removed += 1;
            }
        }
        removed
    }

    /// Validates a tuple against the schema without inserting it.
    ///
    /// # Errors
    ///
    /// [`Error::ArityMismatch`] or [`Error::TypeMismatch`].
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        for (v, c) in tuple.values().iter().zip(self.schema.columns()) {
            if v.data_type() != c.ty {
                return Err(Error::TypeMismatch {
                    left: c.ty,
                    right: v.data_type(),
                    context: "tuple insertion",
                });
            }
        }
        Ok(())
    }

    /// Returns a new relation with duplicate tuples removed (set semantics).
    /// The surviving tuples are sorted, giving a canonical order.
    #[must_use]
    pub fn distinct(&self) -> Relation {
        let set: BTreeSet<Tuple> = self.tuples.iter().cloned().collect();
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            tuples: set.into_iter().collect(),
        }
    }

    /// Number of distinct tuples.
    #[must_use]
    pub fn distinct_cardinality(&self) -> usize {
        self.tuples.iter().collect::<BTreeSet<_>>().len()
    }

    /// Whether the relation contains a tuple equal to `t`.
    #[must_use]
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.iter().any(|x| x == t)
    }

    /// Declared tuple width in bytes (schema-based, the paper's `s_R`).
    #[must_use]
    pub fn tuple_byte_size(&self) -> u64 {
        self.schema.tuple_byte_size()
    }

    /// Total declared size of the extent in bytes.
    #[must_use]
    pub fn extent_byte_size(&self) -> u64 {
        self.tuple_byte_size() * self.tuples.len() as u64
    }

    /// Value of column `col_idx` in row `row_idx`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (internal indices only).
    #[must_use]
    pub fn value_at(&self, row_idx: usize, col_idx: usize) -> &Value {
        self.tuples[row_idx].get(col_idx)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}{} [{} tuples]",
            self.name,
            self.schema,
            self.tuples.len()
        )?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::types::DataType;

    fn r() -> Relation {
        Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int), ("B", DataType::Text)]).unwrap(),
            vec![tup![1, "x"], tup![2, "y"], tup![1, "x"]],
        )
        .unwrap()
    }

    #[test]
    fn insert_validates_arity() {
        let mut rel = r();
        let e = rel.insert(tup![1]).unwrap_err();
        assert!(matches!(
            e,
            Error::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn insert_validates_types() {
        let mut rel = r();
        let e = rel.insert(tup!["oops", "x"]).unwrap_err();
        assert!(matches!(e, Error::TypeMismatch { .. }));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let rel = r();
        assert_eq!(rel.cardinality(), 3);
        assert_eq!(rel.distinct().cardinality(), 2);
        assert_eq!(rel.distinct_cardinality(), 2);
    }

    #[test]
    fn delete_removes_one_occurrence_each() {
        let mut rel = r();
        let removed = rel.delete(&[tup![1, "x"], tup![9, "z"]]);
        assert_eq!(removed, 1);
        assert_eq!(rel.cardinality(), 2);
        // The second duplicate survives.
        assert!(rel.contains(&tup![1, "x"]));
    }

    #[test]
    fn contains_checks_membership() {
        let rel = r();
        assert!(rel.contains(&tup![2, "y"]));
        assert!(!rel.contains(&tup![2, "x"]));
    }

    #[test]
    fn byte_sizes() {
        let rel = r();
        assert_eq!(rel.tuple_byte_size(), 28); // INT 8 + TEXT 20
        assert_eq!(rel.extent_byte_size(), 3 * 28);
    }

    #[test]
    fn distinct_is_sorted_canonically() {
        let rel = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![3], tup![1], tup![2], tup![1]],
        )
        .unwrap();
        let d = rel.distinct();
        assert_eq!(d.tuples(), &[tup![1], tup![2], tup![3]]);
    }
}
