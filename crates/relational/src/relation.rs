//! Named, typed, in-memory relations over shared tuple storage.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::column::ColumnarBatch;
use crate::error::{Error, Result};
use crate::index::{IndexKind, IndexSet, IndexStats};
use crate::predicate::CompOp;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::types::Value;

/// Shared physical storage behind a [`Relation`]: the row-ordered tuple
/// vector plus the lazily built columnar image and secondary indexes.
///
/// The caches live *inside* the shared storage so that every zero-copy
/// alias of a relation (clones, rebinds, plan bindings) reuses one
/// columnar batch and one index set. Mutations go through
/// [`Arc::make_mut`]: a detach clones the caches along with the rows and
/// then maintains them incrementally, so a warmed index survives
/// copy-on-write instead of being rebuilt.
#[derive(Debug, Default)]
struct Storage {
    tuples: Vec<Tuple>,
    /// Mutation counter: bumped by `insert`/`delete` on this storage.
    generation: u64,
    /// Column-major image, built on first columnar access.
    columnar: OnceLock<Arc<ColumnarBatch>>,
    /// Secondary indexes, built on first probe.
    indexes: Mutex<IndexSet>,
}

impl Clone for Storage {
    fn clone(&self) -> Storage {
        let cloned = Storage {
            tuples: self.tuples.clone(),
            generation: self.generation,
            columnar: OnceLock::new(),
            indexes: Mutex::new(self.indexes.lock().expect("index lock poisoned").clone()),
        };
        if let Some(batch) = self.columnar.get() {
            let _ = cloned.columnar.set(Arc::clone(batch));
        }
        cloned
    }
}

impl Storage {
    fn new(tuples: Vec<Tuple>) -> Storage {
        Storage {
            tuples,
            ..Storage::default()
        }
    }
}

/// An in-memory relation: a name, a schema and a bag of tuples.
///
/// Tuples are stored in insertion order; [`Relation::distinct`] produces the
/// set semantics the paper uses when comparing view extents ("with duplicates
/// removed first", §5.4.2).
///
/// Tuple storage is `Arc`-shared with copy-on-write semantics: cloning a
/// relation (site scans, warehouse extents, plan-time bindings) shares the
/// underlying storage, and the first mutation through [`Relation::insert`] /
/// [`Relation::delete`] detaches a private copy. This is what lets the
/// physical execution layer ([`crate::plan`] / [`crate::exec`]) pass extents
/// around without ever copying tuple data. The shared storage also carries
/// the columnar image ([`Relation::columnar`]) and lazily built secondary
/// indexes, both maintained incrementally across mutations.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    store: Arc<Storage>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.schema == other.schema
            && self.store.tuples == other.store.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// Creates an empty relation.
    #[must_use]
    pub fn empty(name: impl Into<String>, schema: Schema) -> Relation {
        Relation {
            name: name.into(),
            schema,
            store: Arc::new(Storage::default()),
        }
    }

    /// Creates a relation and inserts all `tuples`, checking arity and types
    /// in a single pass. A failing tuple rejects the whole batch — no
    /// partially populated relation is ever observable.
    ///
    /// # Errors
    ///
    /// [`Error::ArityMismatch`] or [`Error::TypeMismatch`].
    pub fn with_tuples(
        name: impl Into<String>,
        schema: Schema,
        tuples: Vec<Tuple>,
    ) -> Result<Relation> {
        for t in &tuples {
            validate_against(&schema, t)?;
        }
        Ok(Relation {
            name: name.into(),
            schema,
            store: Arc::new(Storage::new(tuples)),
        })
    }

    /// Internal constructor for tuples already known to satisfy `schema`
    /// (outputs of algebra operators and plan execution). Skips per-tuple
    /// validation.
    pub(crate) fn from_validated(
        name: impl Into<String>,
        schema: Schema,
        tuples: Vec<Tuple>,
    ) -> Relation {
        Relation {
            name: name.into(),
            schema,
            store: Arc::new(Storage::new(tuples)),
        }
    }

    /// Zero-copy re-labelling: a new relation over the **same** shared tuple
    /// storage, under a different name and schema. The new schema must be
    /// positionally identical in types and declared sizes (only column
    /// names/qualifiers may change) — this is the cheap path behind view
    /// bindings and column renames.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] when arity, a column type, or a declared
    /// byte size differs.
    pub fn rebind(&self, name: impl Into<String>, schema: Schema) -> Result<Relation> {
        if schema.arity() != self.schema.arity() {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "rebind expects arity {}, got {}",
                    self.schema.arity(),
                    schema.arity()
                ),
            });
        }
        for (old, new) in self.schema.columns().iter().zip(schema.columns()) {
            if old.ty != new.ty || old.byte_size != new.byte_size {
                return Err(Error::SchemaMismatch {
                    detail: format!(
                        "rebind changes column `{}` ({}/{}B) to `{}` ({}/{}B)",
                        old.column, old.ty, old.byte_size, new.column, new.ty, new.byte_size
                    ),
                });
            }
        }
        Ok(Relation {
            name: name.into(),
            schema,
            store: Arc::clone(&self.store),
        })
    }

    /// Whether two relations alias the same shared tuple storage (no data
    /// comparison). Diagnostic hook for the copy-on-write contract.
    #[must_use]
    pub fn shares_tuples_with(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }

    /// Relation name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the relation.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of tuples — the paper's cardinality `|R|` (§6.1 statistic 1).
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.store.tuples.len()
    }

    /// Whether the relation holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.tuples.is_empty()
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples in insertion order.
    #[must_use]
    pub fn tuples(&self) -> &[Tuple] {
        &self.store.tuples
    }

    /// Mutation count of this storage (0 for freshly built relations).
    /// Aliases sharing storage observe the same generation.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.store.generation
    }

    /// The column-major image of the tuples, built on first access and
    /// cached in the shared storage (every alias reuses it).
    #[must_use]
    pub fn columnar(&self) -> Arc<ColumnarBatch> {
        Arc::clone(
            self.store.columnar.get_or_init(|| {
                Arc::new(ColumnarBatch::from_tuples(&self.schema, &self.store.tuples))
            }),
        )
    }

    /// Whether the columnar image has been materialized.
    #[must_use]
    pub fn columnar_built(&self) -> bool {
        self.store.columnar.get().is_some()
    }

    /// Ascending row ids whose `col` value equals `key`, served by the
    /// (lazily built) hash index.
    #[must_use]
    pub fn index_eq_rows(&self, col: usize, key: &Value) -> Vec<u32> {
        self.store
            .indexes
            .lock()
            .expect("index lock poisoned")
            .lookup_eq(col, key, &self.store.tuples)
    }

    /// Ascending row ids whose `col` value satisfies `value θ key`, served
    /// by the (lazily built) sorted index.
    #[must_use]
    pub fn index_range_rows(&self, col: usize, op: CompOp, key: &Value) -> Vec<u32> {
        self.store
            .indexes
            .lock()
            .expect("index lock poisoned")
            .lookup_range(col, op, key, &self.store.tuples)
    }

    /// Builds the index of `kind` on `col` now (instead of on first probe).
    pub fn warm_index(&self, col: usize, kind: IndexKind) {
        self.store
            .indexes
            .lock()
            .expect("index lock poisoned")
            .warm(col, kind, &self.store.tuples);
    }

    /// Whether an index of `kind` exists on `col`.
    #[must_use]
    pub fn has_index(&self, col: usize, kind: IndexKind) -> bool {
        self.store
            .indexes
            .lock()
            .expect("index lock poisoned")
            .has(col, kind)
    }

    /// Index counters for this storage.
    #[must_use]
    pub fn index_stats(&self) -> IndexStats {
        self.store
            .indexes
            .lock()
            .expect("index lock poisoned")
            .stats()
    }

    /// Clears the index hit/build/maintenance counters (not the indexes).
    pub fn reset_index_counters(&self) {
        self.store
            .indexes
            .lock()
            .expect("index lock poisoned")
            .reset_counters();
    }

    /// Inserts a tuple after validating arity and column types. Detaches a
    /// private copy of the tuple storage when it is currently shared, and
    /// incrementally maintains the columnar image and any live indexes.
    ///
    /// # Errors
    ///
    /// [`Error::ArityMismatch`] or [`Error::TypeMismatch`].
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        self.validate(&tuple)?;
        let store = Arc::make_mut(&mut self.store);
        store.generation += 1;
        if let Some(batch) = store.columnar.get_mut() {
            Arc::make_mut(batch).push_row(&tuple);
        }
        store
            .indexes
            .get_mut()
            .expect("index lock poisoned")
            .insert_row(&tuple, &store.tuples);
        store.tuples.push(tuple);
        Ok(())
    }

    /// Deletes (one occurrence of) every tuple in `tuples` that is present.
    /// Returns how many tuples were actually removed.
    ///
    /// Runs in one pass over the relation: the requested deletions are
    /// counted into a map first, then each stored tuple consumes at most one
    /// pending request — for each distinct requested tuple the *earliest*
    /// occurrences are removed, matching the former per-tuple scan exactly.
    /// The columnar image and live indexes are remapped positionally, not
    /// rebuilt.
    pub fn delete(&mut self, tuples: &[Tuple]) -> usize {
        if tuples.is_empty() || self.store.tuples.is_empty() {
            return 0;
        }
        let mut pending: HashMap<&Tuple, usize> = HashMap::with_capacity(tuples.len());
        for t in tuples {
            *pending.entry(t).or_insert(0) += 1;
        }
        let matches: usize = self
            .store
            .tuples
            .iter()
            .map(|t| usize::from(pending.contains_key(t)))
            .sum();
        if matches == 0 {
            return 0; // no copy-on-write detach for a no-op delete
        }
        let store = Arc::make_mut(&mut self.store);
        store.generation += 1;
        let mut removed_rows: Vec<u32> = Vec::new();
        let mut row = 0u32;
        store.tuples.retain(|t| {
            let keep = match pending.get_mut(t) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    removed_rows.push(row);
                    false
                }
                _ => true,
            };
            row += 1;
            keep
        });
        if let Some(batch) = store.columnar.get_mut() {
            Arc::make_mut(batch).remove_rows(&removed_rows);
        }
        store
            .indexes
            .get_mut()
            .expect("index lock poisoned")
            .remove_rows(&removed_rows);
        removed_rows.len()
    }

    /// Validates a tuple against the schema without inserting it.
    ///
    /// # Errors
    ///
    /// [`Error::ArityMismatch`] or [`Error::TypeMismatch`].
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        validate_against(&self.schema, tuple)
    }

    /// Returns a new relation with duplicate tuples removed (set semantics).
    /// The surviving tuples are sorted, giving a canonical order.
    #[must_use]
    pub fn distinct(&self) -> Relation {
        let set: BTreeSet<Tuple> = self.store.tuples.iter().cloned().collect();
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            store: Arc::new(Storage::new(set.into_iter().collect())),
        }
    }

    /// Number of distinct tuples.
    #[must_use]
    pub fn distinct_cardinality(&self) -> usize {
        self.store.tuples.iter().collect::<BTreeSet<_>>().len()
    }

    /// Whether the relation contains a tuple equal to `t`.
    #[must_use]
    pub fn contains(&self, t: &Tuple) -> bool {
        self.store.tuples.iter().any(|x| x == t)
    }

    /// Declared tuple width in bytes (schema-based, the paper's `s_R`).
    #[must_use]
    pub fn tuple_byte_size(&self) -> u64 {
        self.schema.tuple_byte_size()
    }

    /// Total declared size of the extent in bytes.
    #[must_use]
    pub fn extent_byte_size(&self) -> u64 {
        self.tuple_byte_size() * self.store.tuples.len() as u64
    }

    /// Value of column `col_idx` in row `row_idx`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (internal indices only).
    #[must_use]
    pub fn value_at(&self, row_idx: usize, col_idx: usize) -> &Value {
        self.store.tuples[row_idx].get(col_idx)
    }
}

/// Schema validation shared by [`Relation::validate`] and the one-pass
/// [`Relation::with_tuples`] constructor.
fn validate_against(schema: &Schema, tuple: &Tuple) -> Result<()> {
    if tuple.arity() != schema.arity() {
        return Err(Error::ArityMismatch {
            expected: schema.arity(),
            got: tuple.arity(),
        });
    }
    for (v, c) in tuple.values().iter().zip(schema.columns()) {
        if v.data_type() != c.ty {
            return Err(Error::TypeMismatch {
                left: c.ty,
                right: v.data_type(),
                context: "tuple insertion",
            });
        }
    }
    Ok(())
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}{} [{} tuples]",
            self.name,
            self.schema,
            self.store.tuples.len()
        )?;
        for t in self.store.tuples.iter() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::types::DataType;

    fn r() -> Relation {
        Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int), ("B", DataType::Text)]).unwrap(),
            vec![tup![1, "x"], tup![2, "y"], tup![1, "x"]],
        )
        .unwrap()
    }

    #[test]
    fn insert_validates_arity() {
        let mut rel = r();
        let e = rel.insert(tup![1]).unwrap_err();
        assert!(matches!(
            e,
            Error::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn insert_validates_types() {
        let mut rel = r();
        let e = rel.insert(tup!["oops", "x"]).unwrap_err();
        assert!(matches!(e, Error::TypeMismatch { .. }));
    }

    #[test]
    fn with_tuples_rejects_bad_middle_tuple_without_partial_state() {
        let schema = Schema::of(&[("A", DataType::Int)]).unwrap();
        let e = Relation::with_tuples("R", schema.clone(), vec![tup![1], tup!["bad"], tup![3]])
            .unwrap_err();
        assert!(matches!(e, Error::TypeMismatch { .. }));
        // The failed constructor leaves nothing behind; an identically
        // named relation builds cleanly from scratch.
        let rel = Relation::with_tuples("R", schema, vec![tup![1], tup![3]]).unwrap();
        assert_eq!(rel.cardinality(), 2);
        assert_eq!(rel.generation(), 0, "construction is not a mutation");
    }

    #[test]
    fn distinct_removes_duplicates() {
        let rel = r();
        assert_eq!(rel.cardinality(), 3);
        assert_eq!(rel.distinct().cardinality(), 2);
        assert_eq!(rel.distinct_cardinality(), 2);
    }

    #[test]
    fn delete_removes_one_occurrence_each() {
        let mut rel = r();
        let removed = rel.delete(&[tup![1, "x"], tup![9, "z"]]);
        assert_eq!(removed, 1);
        assert_eq!(rel.cardinality(), 2);
        // The second duplicate survives.
        assert!(rel.contains(&tup![1, "x"]));
    }

    #[test]
    fn delete_honors_request_multiplicity() {
        let mut rel = r();
        // Two requests for (1, 'x') remove both occurrences; the extra
        // request for (2, 'y') removes its single occurrence once.
        let removed = rel.delete(&[tup![1, "x"], tup![2, "y"], tup![1, "x"], tup![2, "y"]]);
        assert_eq!(removed, 3);
        assert!(rel.is_empty());
    }

    #[test]
    fn delete_removes_earliest_occurrences_in_order() {
        let mut rel = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![1], tup![2], tup![1], tup![3], tup![1]],
        )
        .unwrap();
        assert_eq!(rel.delete(&[tup![1], tup![1]]), 2);
        assert_eq!(rel.tuples(), &[tup![2], tup![3], tup![1]]);
    }

    #[test]
    fn contains_checks_membership() {
        let rel = r();
        assert!(rel.contains(&tup![2, "y"]));
        assert!(!rel.contains(&tup![2, "x"]));
    }

    #[test]
    fn byte_sizes() {
        let rel = r();
        assert_eq!(rel.tuple_byte_size(), 28); // INT 8 + TEXT 20
        assert_eq!(rel.extent_byte_size(), 3 * 28);
    }

    #[test]
    fn distinct_is_sorted_canonically() {
        let rel = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![3], tup![1], tup![2], tup![1]],
        )
        .unwrap();
        let d = rel.distinct();
        assert_eq!(d.tuples(), &[tup![1], tup![2], tup![3]]);
    }

    #[test]
    fn clone_shares_storage_until_mutation() {
        let original = r();
        let mut copy = original.clone();
        assert!(copy.shares_tuples_with(&original), "clone is zero-copy");

        copy.insert(tup![7, "z"]).unwrap();
        assert!(
            !copy.shares_tuples_with(&original),
            "insert detaches a private copy"
        );
        assert_eq!(original.cardinality(), 3, "original unaffected");
        assert_eq!(copy.cardinality(), 4);
        assert_eq!(copy.generation(), original.generation() + 1);
    }

    #[test]
    fn delete_copy_on_write_semantics() {
        let original = r();
        let mut copy = original.clone();
        // A delete that matches nothing must not detach the storage.
        assert_eq!(copy.delete(&[tup![9, "q"]]), 0);
        assert!(copy.shares_tuples_with(&original));
        // A real delete detaches and leaves the original whole.
        assert_eq!(copy.delete(&[tup![2, "y"]]), 1);
        assert!(!copy.shares_tuples_with(&original));
        assert!(original.contains(&tup![2, "y"]));
        assert!(!copy.contains(&tup![2, "y"]));
    }

    #[test]
    fn rebind_shares_storage_and_checks_types() {
        let rel = r();
        let bound = rel
            .rebind(
                "X",
                Schema::of(&[("A", DataType::Int), ("B", DataType::Text)])
                    .unwrap()
                    .qualify("X"),
            )
            .unwrap();
        assert!(bound.shares_tuples_with(&rel));
        assert_eq!(bound.name(), "X");
        // Arity and type changes are rejected.
        assert!(rel
            .rebind("X", Schema::of(&[("A", DataType::Int)]).unwrap())
            .is_err());
        assert!(rel
            .rebind(
                "X",
                Schema::of(&[("A", DataType::Text), ("B", DataType::Text)]).unwrap()
            )
            .is_err());
    }

    #[test]
    fn columnar_image_is_cached_and_shared() {
        let rel = r();
        assert!(!rel.columnar_built());
        let b1 = rel.columnar();
        assert!(rel.columnar_built());
        let alias = rel.rebind("X", rel.schema().clone().qualify("X")).unwrap();
        let b2 = alias.columnar();
        assert!(Arc::ptr_eq(&b1, &b2), "aliases reuse one batch");
        assert_eq!(b1.rows(), 3);
    }

    #[test]
    fn columnar_image_tracks_mutations() {
        let mut rel = r();
        let _ = rel.columnar();
        rel.insert(tup![7, "q"]).unwrap();
        assert_eq!(rel.columnar().rows(), 4, "insert maintains the batch");
        rel.delete(&[tup![2, "y"]]);
        let batch = rel.columnar();
        assert_eq!(batch.rows(), 3, "delete maintains the batch");
        // Batch contents match the row storage exactly.
        assert_eq!(
            *batch,
            ColumnarBatch::from_tuples(rel.schema(), rel.tuples())
        );
    }

    #[test]
    fn indexes_survive_copy_on_write_detach() {
        let rel = r();
        rel.warm_index(0, IndexKind::Hash);
        let mut copy = rel.clone();
        copy.insert(tup![1, "w"]).unwrap();
        assert!(copy.has_index(0, IndexKind::Hash), "detach keeps indexes");
        assert_eq!(copy.index_eq_rows(0, &Value::Int(1)), vec![0, 2, 3]);
        // The original is untouched.
        assert_eq!(rel.index_eq_rows(0, &Value::Int(1)), vec![0, 2]);
    }

    #[test]
    fn index_lookup_matches_scan_after_mutations() {
        let mut rel = r();
        rel.warm_index(0, IndexKind::Hash);
        rel.warm_index(0, IndexKind::Sorted);
        rel.insert(tup![2, "z"]).unwrap();
        rel.delete(&[tup![1, "x"]]);
        let scan: Vec<u32> = rel
            .tuples()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.get(0) == &Value::Int(2))
            .map(|(i, _)| u32::try_from(i).unwrap())
            .collect();
        assert_eq!(rel.index_eq_rows(0, &Value::Int(2)), scan);
        assert_eq!(rel.index_range_rows(0, CompOp::Ge, &Value::Int(2)), scan);
    }

    #[test]
    fn first_lazy_text_probe_hits_the_rows_the_build_interns() {
        // Regression: the lazy first build is what interns the stored
        // text keys, so computing the (non-inserting) probe key before
        // the build spuriously missed. The key must be unique to this
        // test — any other interning of it would mask the bug.
        let key = "first-lazy-probe-regression-key-§";
        let rel = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int), ("B", DataType::Text)]).unwrap(),
            vec![tup![1, "other"], tup![2, key], tup![3, key]],
        )
        .unwrap();
        assert_eq!(rel.index_eq_rows(1, &Value::from(key)), vec![1, 2]);
    }
}
