//! Named, typed, in-memory relations over shared tuple storage.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::types::Value;

/// An in-memory relation: a name, a schema and a bag of tuples.
///
/// Tuples are stored in insertion order; [`Relation::distinct`] produces the
/// set semantics the paper uses when comparing view extents ("with duplicates
/// removed first", §5.4.2).
///
/// Tuple storage is `Arc`-shared with copy-on-write semantics: cloning a
/// relation (site scans, warehouse extents, plan-time bindings) shares the
/// underlying tuple vector, and the first mutation through
/// [`Relation::insert`] / [`Relation::delete`] detaches a private copy. This
/// is what lets the physical execution layer ([`crate::plan`] /
/// [`crate::exec`]) pass extents around without ever copying tuple data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    schema: Schema,
    tuples: Arc<Vec<Tuple>>,
}

impl Relation {
    /// Creates an empty relation.
    #[must_use]
    pub fn empty(name: impl Into<String>, schema: Schema) -> Relation {
        Relation {
            name: name.into(),
            schema,
            tuples: Arc::new(Vec::new()),
        }
    }

    /// Creates a relation and inserts all `tuples`, checking arity and types.
    ///
    /// # Errors
    ///
    /// Propagates [`Relation::insert`] failures.
    pub fn with_tuples(
        name: impl Into<String>,
        schema: Schema,
        tuples: Vec<Tuple>,
    ) -> Result<Relation> {
        let mut r = Relation::empty(name, schema);
        for t in &tuples {
            r.validate(t)?;
        }
        r.tuples = Arc::new(tuples);
        Ok(r)
    }

    /// Internal constructor for tuples already known to satisfy `schema`
    /// (outputs of algebra operators and plan execution). Skips per-tuple
    /// validation.
    pub(crate) fn from_validated(
        name: impl Into<String>,
        schema: Schema,
        tuples: Vec<Tuple>,
    ) -> Relation {
        Relation {
            name: name.into(),
            schema,
            tuples: Arc::new(tuples),
        }
    }

    /// Zero-copy re-labelling: a new relation over the **same** shared tuple
    /// storage, under a different name and schema. The new schema must be
    /// positionally identical in types and declared sizes (only column
    /// names/qualifiers may change) — this is the cheap path behind view
    /// bindings and column renames.
    ///
    /// # Errors
    ///
    /// [`Error::SchemaMismatch`] when arity, a column type, or a declared
    /// byte size differs.
    pub fn rebind(&self, name: impl Into<String>, schema: Schema) -> Result<Relation> {
        if schema.arity() != self.schema.arity() {
            return Err(Error::SchemaMismatch {
                detail: format!(
                    "rebind expects arity {}, got {}",
                    self.schema.arity(),
                    schema.arity()
                ),
            });
        }
        for (old, new) in self.schema.columns().iter().zip(schema.columns()) {
            if old.ty != new.ty || old.byte_size != new.byte_size {
                return Err(Error::SchemaMismatch {
                    detail: format!(
                        "rebind changes column `{}` ({}/{}B) to `{}` ({}/{}B)",
                        old.column, old.ty, old.byte_size, new.column, new.ty, new.byte_size
                    ),
                });
            }
        }
        Ok(Relation {
            name: name.into(),
            schema,
            tuples: Arc::clone(&self.tuples),
        })
    }

    /// Whether two relations alias the same shared tuple storage (no data
    /// comparison). Diagnostic hook for the copy-on-write contract.
    #[must_use]
    pub fn shares_tuples_with(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.tuples, &other.tuples)
    }

    /// Relation name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the relation.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of tuples — the paper's cardinality `|R|` (§6.1 statistic 1).
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples in insertion order.
    #[must_use]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Inserts a tuple after validating arity and column types. Detaches a
    /// private copy of the tuple storage when it is currently shared.
    ///
    /// # Errors
    ///
    /// [`Error::ArityMismatch`] or [`Error::TypeMismatch`].
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        self.validate(&tuple)?;
        Arc::make_mut(&mut self.tuples).push(tuple);
        Ok(())
    }

    /// Deletes (one occurrence of) every tuple in `tuples` that is present.
    /// Returns how many tuples were actually removed.
    ///
    /// Runs in one pass over the relation: the requested deletions are
    /// counted into a map first, then each stored tuple consumes at most one
    /// pending request — for each distinct requested tuple the *earliest*
    /// occurrences are removed, matching the former per-tuple scan exactly.
    pub fn delete(&mut self, tuples: &[Tuple]) -> usize {
        if tuples.is_empty() || self.tuples.is_empty() {
            return 0;
        }
        let mut pending: HashMap<&Tuple, usize> = HashMap::with_capacity(tuples.len());
        for t in tuples {
            *pending.entry(t).or_insert(0) += 1;
        }
        let matches: usize = self
            .tuples
            .iter()
            .map(|t| usize::from(pending.contains_key(t)))
            .sum();
        if matches == 0 {
            return 0; // no copy-on-write detach for a no-op delete
        }
        let mut removed = 0;
        Arc::make_mut(&mut self.tuples).retain(|t| match pending.get_mut(t) {
            Some(n) if *n > 0 => {
                *n -= 1;
                removed += 1;
                false
            }
            _ => true,
        });
        removed
    }

    /// Validates a tuple against the schema without inserting it.
    ///
    /// # Errors
    ///
    /// [`Error::ArityMismatch`] or [`Error::TypeMismatch`].
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        for (v, c) in tuple.values().iter().zip(self.schema.columns()) {
            if v.data_type() != c.ty {
                return Err(Error::TypeMismatch {
                    left: c.ty,
                    right: v.data_type(),
                    context: "tuple insertion",
                });
            }
        }
        Ok(())
    }

    /// Returns a new relation with duplicate tuples removed (set semantics).
    /// The surviving tuples are sorted, giving a canonical order.
    #[must_use]
    pub fn distinct(&self) -> Relation {
        let set: BTreeSet<Tuple> = self.tuples.iter().cloned().collect();
        Relation {
            name: self.name.clone(),
            schema: self.schema.clone(),
            tuples: Arc::new(set.into_iter().collect()),
        }
    }

    /// Number of distinct tuples.
    #[must_use]
    pub fn distinct_cardinality(&self) -> usize {
        self.tuples.iter().collect::<BTreeSet<_>>().len()
    }

    /// Whether the relation contains a tuple equal to `t`.
    #[must_use]
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.iter().any(|x| x == t)
    }

    /// Declared tuple width in bytes (schema-based, the paper's `s_R`).
    #[must_use]
    pub fn tuple_byte_size(&self) -> u64 {
        self.schema.tuple_byte_size()
    }

    /// Total declared size of the extent in bytes.
    #[must_use]
    pub fn extent_byte_size(&self) -> u64 {
        self.tuple_byte_size() * self.tuples.len() as u64
    }

    /// Value of column `col_idx` in row `row_idx`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds (internal indices only).
    #[must_use]
    pub fn value_at(&self, row_idx: usize, col_idx: usize) -> &Value {
        self.tuples[row_idx].get(col_idx)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}{} [{} tuples]",
            self.name,
            self.schema,
            self.tuples.len()
        )?;
        for t in self.tuples.iter() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use crate::types::DataType;

    fn r() -> Relation {
        Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int), ("B", DataType::Text)]).unwrap(),
            vec![tup![1, "x"], tup![2, "y"], tup![1, "x"]],
        )
        .unwrap()
    }

    #[test]
    fn insert_validates_arity() {
        let mut rel = r();
        let e = rel.insert(tup![1]).unwrap_err();
        assert!(matches!(
            e,
            Error::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn insert_validates_types() {
        let mut rel = r();
        let e = rel.insert(tup!["oops", "x"]).unwrap_err();
        assert!(matches!(e, Error::TypeMismatch { .. }));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let rel = r();
        assert_eq!(rel.cardinality(), 3);
        assert_eq!(rel.distinct().cardinality(), 2);
        assert_eq!(rel.distinct_cardinality(), 2);
    }

    #[test]
    fn delete_removes_one_occurrence_each() {
        let mut rel = r();
        let removed = rel.delete(&[tup![1, "x"], tup![9, "z"]]);
        assert_eq!(removed, 1);
        assert_eq!(rel.cardinality(), 2);
        // The second duplicate survives.
        assert!(rel.contains(&tup![1, "x"]));
    }

    #[test]
    fn delete_honors_request_multiplicity() {
        let mut rel = r();
        // Two requests for (1, 'x') remove both occurrences; the extra
        // request for (2, 'y') removes its single occurrence once.
        let removed = rel.delete(&[tup![1, "x"], tup![2, "y"], tup![1, "x"], tup![2, "y"]]);
        assert_eq!(removed, 3);
        assert!(rel.is_empty());
    }

    #[test]
    fn delete_removes_earliest_occurrences_in_order() {
        let mut rel = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![1], tup![2], tup![1], tup![3], tup![1]],
        )
        .unwrap();
        assert_eq!(rel.delete(&[tup![1], tup![1]]), 2);
        assert_eq!(rel.tuples(), &[tup![2], tup![3], tup![1]]);
    }

    #[test]
    fn contains_checks_membership() {
        let rel = r();
        assert!(rel.contains(&tup![2, "y"]));
        assert!(!rel.contains(&tup![2, "x"]));
    }

    #[test]
    fn byte_sizes() {
        let rel = r();
        assert_eq!(rel.tuple_byte_size(), 28); // INT 8 + TEXT 20
        assert_eq!(rel.extent_byte_size(), 3 * 28);
    }

    #[test]
    fn distinct_is_sorted_canonically() {
        let rel = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![3], tup![1], tup![2], tup![1]],
        )
        .unwrap();
        let d = rel.distinct();
        assert_eq!(d.tuples(), &[tup![1], tup![2], tup![3]]);
    }

    #[test]
    fn clone_shares_storage_until_mutation() {
        let original = r();
        let mut copy = original.clone();
        assert!(copy.shares_tuples_with(&original), "clone is zero-copy");

        copy.insert(tup![7, "z"]).unwrap();
        assert!(
            !copy.shares_tuples_with(&original),
            "insert detaches a private copy"
        );
        assert_eq!(original.cardinality(), 3, "original unaffected");
        assert_eq!(copy.cardinality(), 4);
    }

    #[test]
    fn delete_copy_on_write_semantics() {
        let original = r();
        let mut copy = original.clone();
        // A delete that matches nothing must not detach the storage.
        assert_eq!(copy.delete(&[tup![9, "q"]]), 0);
        assert!(copy.shares_tuples_with(&original));
        // A real delete detaches and leaves the original whole.
        assert_eq!(copy.delete(&[tup![2, "y"]]), 1);
        assert!(!copy.shares_tuples_with(&original));
        assert!(original.contains(&tup![2, "y"]));
        assert!(!copy.contains(&tup![2, "y"]));
    }

    #[test]
    fn rebind_shares_storage_and_checks_types() {
        let rel = r();
        let bound = rel
            .rebind(
                "X",
                Schema::of(&[("A", DataType::Int), ("B", DataType::Text)])
                    .unwrap()
                    .qualify("X"),
            )
            .unwrap();
        assert!(bound.shares_tuples_with(&rel));
        assert_eq!(bound.name(), "X");
        // Arity and type changes are rejected.
        assert!(rel
            .rebind("X", Schema::of(&[("A", DataType::Int)]).unwrap())
            .is_err());
        assert!(rel
            .rebind(
                "X",
                Schema::of(&[("A", DataType::Text), ("B", DataType::Text)]).unwrap()
            )
            .is_err());
    }
}
