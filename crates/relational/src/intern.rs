//! Global string interning pool.
//!
//! Text values dominate the cost of row-oriented join keys: hashing and
//! cloning `String`s per probe. The columnar layer ([`crate::column`])
//! stores text columns as [`Symbol`] ids into this process-wide pool, so
//! equality compares and hashes a `u32` instead.
//!
//! The pool is append-only: a string interned once keeps its id for the
//! lifetime of the process, which is what lets columnar batches built at
//! different times compare symbols directly. [`lookup`] is the
//! non-inserting probe used for literal lookups — an unseen string has no
//! symbol and therefore matches nothing, without growing the pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Interned string id. Equality of symbols ⇔ equality of the underlying
/// strings (the pool never assigns one id to two strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw pool id.
    #[must_use]
    pub fn id(self) -> u32 {
        self.0
    }
}

#[derive(Default)]
struct PoolInner {
    map: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

static POOL: OnceLock<RwLock<PoolInner>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn pool() -> &'static RwLock<PoolInner> {
    POOL.get_or_init(|| RwLock::new(PoolInner::default()))
}

/// Interns `s`, returning its stable [`Symbol`]. Idempotent: the same
/// string always yields the same symbol.
pub fn intern(s: &str) -> Symbol {
    // Fast path: already interned (read lock only).
    if let Some(&id) = pool().read().expect("intern pool poisoned").map.get(s) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Symbol(id);
    }
    let mut inner = pool().write().expect("intern pool poisoned");
    if let Some(&id) = inner.map.get(s) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Symbol(id);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let id = u32::try_from(inner.strings.len()).expect("intern pool exceeds u32 ids");
    let arc: Arc<str> = Arc::from(s);
    inner.strings.push(Arc::clone(&arc));
    inner.map.insert(arc, id);
    Symbol(id)
}

/// Non-inserting probe: the symbol for `s` if it was ever interned. Used
/// for literal/probe-key lookups so query constants never grow the pool.
#[must_use]
pub fn lookup(s: &str) -> Option<Symbol> {
    pool()
        .read()
        .expect("intern pool poisoned")
        .map
        .get(s)
        .map(|&id| Symbol(id))
}

/// Resolves a symbol back to its string.
///
/// # Panics
///
/// Panics on a symbol that was never produced by [`intern`] (impossible
/// through the public API).
#[must_use]
pub fn resolve(sym: Symbol) -> Arc<str> {
    Arc::clone(
        pool()
            .read()
            .expect("intern pool poisoned")
            .strings
            .get(sym.0 as usize)
            .expect("symbol from a foreign pool"),
    )
}

/// Pool counters, for the shell `stats` surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Distinct strings held by the pool.
    pub symbols: u64,
    /// `intern` calls answered by an existing symbol.
    pub hits: u64,
    /// `intern` calls that inserted a new symbol.
    pub misses: u64,
}

/// Snapshot of the pool counters.
#[must_use]
pub fn stats() -> InternStats {
    let symbols = pool().read().expect("intern pool poisoned").strings.len() as u64;
    InternStats {
        symbols,
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = intern("eve-intern-idempotent");
        let b = intern("eve-intern-idempotent");
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_round_trips() {
        let sym = intern("eve-intern-roundtrip");
        assert_eq!(&*resolve(sym), "eve-intern-roundtrip");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("eve-intern-a");
        let b = intern("eve-intern-b");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn lookup_does_not_insert() {
        assert!(lookup("eve-intern-never-interned-s9z").is_none());
        let before = stats().symbols;
        assert!(lookup("eve-intern-never-interned-s9z").is_none());
        assert_eq!(stats().symbols, before, "lookup must not grow the pool");
        let sym = intern("eve-intern-now-interned-s9z");
        assert_eq!(lookup("eve-intern-now-interned-s9z"), Some(sym));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let before = stats();
        intern("eve-intern-stats-fresh-key");
        intern("eve-intern-stats-fresh-key");
        let after = stats();
        assert!(after.misses > before.misses);
        assert!(after.hits > before.hits);
    }
}
