//! Global string interning pool, sharded N ways.
//!
//! Text values dominate the cost of row-oriented join keys: hashing and
//! cloning `String`s per probe. The columnar layer ([`crate::column`])
//! stores text columns as [`Symbol`] ids into this process-wide pool, so
//! equality compares and hashes a `u32` instead.
//!
//! The pool is append-only: a string interned once keeps its id for the
//! lifetime of the process, which is what lets columnar batches built at
//! different times compare symbols directly. [`lookup`] is the
//! non-inserting probe used for literal lookups — an unseen string has no
//! symbol and therefore matches nothing, without growing the pool.
//!
//! # Sharding
//!
//! Morsel-parallel columnar builds intern every text value of a batch
//! concurrently; a single pool lock would serialize exactly the hot path
//! parallelism is meant to spread. The pool is therefore split into
//! [`SHARDS`] independently locked shards, routed by a hash of the string
//! bytes. A symbol encodes its home shard in its low [`SHARD_BITS`] bits
//! (`id = local_index << SHARD_BITS | shard`), so [`resolve`] routes
//! without rehashing the string. Symbol semantics are unchanged: ids are
//! stable for the process lifetime and symbol equality still coincides
//! with string equality, because each string maps to exactly one shard.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use eve_trace::Counter;

/// Number of independently locked pool shards (power of two).
pub const SHARDS: usize = 16;
/// Bits of a symbol id that carry the shard index.
const SHARD_BITS: u32 = SHARDS.trailing_zeros();

/// Interned string id. Equality of symbols ⇔ equality of the underlying
/// strings (the pool never assigns one id to two strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw pool id (shard index in the low bits).
    #[must_use]
    pub fn id(self) -> u32 {
        self.0
    }
}

#[derive(Default)]
struct ShardInner {
    map: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

struct Shard {
    inner: RwLock<ShardInner>,
    /// Registry-backed counters (`intern.shardNN.hits`/`.misses` in the
    /// global registry): the shell's `InternStats` rollup and the
    /// `metrics` surface read the same atomics.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

static POOL: OnceLock<Vec<Shard>> = OnceLock::new();

fn shards() -> &'static [Shard] {
    POOL.get_or_init(|| {
        let registry = eve_trace::global();
        (0..SHARDS)
            .map(|i| Shard {
                inner: RwLock::default(),
                hits: registry.counter(&format!("intern.shard{i:02}.hits")),
                misses: registry.counter(&format!("intern.shard{i:02}.misses")),
            })
            .collect()
    })
}

/// FNV-1a over the string bytes, folded to a shard index. Deliberately a
/// different mix than the join-key hasher so partition skew in one does
/// not imply lock contention in the other.
fn shard_of(s: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 32)) as usize & (SHARDS - 1)
}

/// Interns `s`, returning its stable [`Symbol`]. Idempotent: the same
/// string always yields the same symbol.
pub fn intern(s: &str) -> Symbol {
    let shard_idx = shard_of(s);
    let shard = &shards()[shard_idx];
    // Fast path: already interned (shard read lock only).
    if let Some(&id) = shard
        .inner
        .read()
        .expect("intern shard poisoned")
        .map
        .get(s)
    {
        shard.hits.inc();
        return Symbol(id);
    }
    let mut inner = shard.inner.write().expect("intern shard poisoned");
    if let Some(&id) = inner.map.get(s) {
        shard.hits.inc();
        return Symbol(id);
    }
    shard.misses.inc();
    let local = u32::try_from(inner.strings.len()).expect("intern shard exceeds u32 ids");
    assert!(
        local < (1 << (32 - SHARD_BITS)),
        "intern shard exceeds id space"
    );
    let id = (local << SHARD_BITS) | (shard_idx as u32);
    let arc: Arc<str> = Arc::from(s);
    inner.strings.push(Arc::clone(&arc));
    inner.map.insert(arc, id);
    Symbol(id)
}

/// Non-inserting probe: the symbol for `s` if it was ever interned. Used
/// for literal/probe-key lookups so query constants never grow the pool.
#[must_use]
pub fn lookup(s: &str) -> Option<Symbol> {
    shards()[shard_of(s)]
        .inner
        .read()
        .expect("intern shard poisoned")
        .map
        .get(s)
        .map(|&id| Symbol(id))
}

/// Resolves a symbol back to its string, routing by the shard bits of
/// its id.
///
/// # Panics
///
/// Panics on a symbol that was never produced by [`intern`] (impossible
/// through the public API).
#[must_use]
pub fn resolve(sym: Symbol) -> Arc<str> {
    let shard = &shards()[sym.0 as usize & (SHARDS - 1)];
    Arc::clone(
        shard
            .inner
            .read()
            .expect("intern shard poisoned")
            .strings
            .get((sym.0 >> SHARD_BITS) as usize)
            .expect("symbol from a foreign pool"),
    )
}

/// Pool counters, for the shell `stats` surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Distinct strings held by the pool.
    pub symbols: u64,
    /// `intern` calls answered by an existing symbol.
    pub hits: u64,
    /// `intern` calls that inserted a new symbol.
    pub misses: u64,
}

impl InternStats {
    fn absorb(&mut self, other: InternStats) {
        self.symbols += other.symbols;
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

fn shard_snapshot(shard: &Shard) -> InternStats {
    InternStats {
        symbols: shard
            .inner
            .read()
            .expect("intern shard poisoned")
            .strings
            .len() as u64,
        hits: shard.hits.get(),
        misses: shard.misses.get(),
    }
}

/// Snapshot of the pool counters, rolled up across all shards.
#[must_use]
pub fn stats() -> InternStats {
    let mut total = InternStats::default();
    for shard in shards() {
        total.absorb(shard_snapshot(shard));
    }
    total
}

/// Per-shard counter snapshots, indexed by shard. The rollup of this
/// vector equals [`stats`].
#[must_use]
pub fn shard_stats() -> Vec<InternStats> {
    shards().iter().map(shard_snapshot).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = intern("eve-intern-idempotent");
        let b = intern("eve-intern-idempotent");
        assert_eq!(a, b);
    }

    #[test]
    fn resolve_round_trips() {
        let sym = intern("eve-intern-roundtrip");
        assert_eq!(&*resolve(sym), "eve-intern-roundtrip");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("eve-intern-a");
        let b = intern("eve-intern-b");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn lookup_does_not_insert() {
        assert!(lookup("eve-intern-never-interned-s9z").is_none());
        let before = stats().symbols;
        assert!(lookup("eve-intern-never-interned-s9z").is_none());
        assert_eq!(stats().symbols, before, "lookup must not grow the pool");
        let sym = intern("eve-intern-now-interned-s9z");
        assert_eq!(lookup("eve-intern-now-interned-s9z"), Some(sym));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let before = stats();
        intern("eve-intern-stats-fresh-key");
        intern("eve-intern-stats-fresh-key");
        let after = stats();
        assert!(after.misses > before.misses);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn shard_stats_roll_up_to_totals() {
        intern("eve-intern-shard-rollup-a");
        intern("eve-intern-shard-rollup-b");
        let per_shard = shard_stats();
        assert_eq!(per_shard.len(), SHARDS);
        let mut total = InternStats::default();
        for s in &per_shard {
            total.absorb(*s);
        }
        assert_eq!(total, stats());
    }

    #[test]
    fn symbol_id_routes_back_to_home_shard() {
        let sym = intern("eve-intern-shard-route");
        assert_eq!(
            sym.id() as usize & (SHARDS - 1),
            shard_of("eve-intern-shard-route"),
            "low bits of the id must name the shard that owns the string"
        );
    }

    #[test]
    fn strings_spread_across_multiple_shards() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            seen.insert(shard_of(&format!("eve-intern-spread-{i}")));
        }
        assert!(seen.len() > 4, "64 keys should land in more than 4 shards");
    }
}
