//! Error type shared by all relational operations.

use std::fmt;

use crate::types::DataType;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by relational operations.
///
/// The engine never panics on user input: schema lookups, type checks and
/// arity checks all surface here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A referenced column does not exist in the schema.
    UnknownColumn {
        /// The column reference as written (possibly qualified).
        column: String,
        /// Name of the relation whose schema was searched.
        relation: String,
    },
    /// An unqualified column name matched more than one schema column.
    AmbiguousColumn {
        /// The ambiguous unqualified name.
        column: String,
        /// Name of the relation whose schema was searched.
        relation: String,
    },
    /// Two columns with the same (qualified) name in one schema.
    DuplicateColumn {
        /// The duplicated name.
        column: String,
    },
    /// A comparison or assignment between incompatible data types.
    TypeMismatch {
        /// Type on the left side.
        left: DataType,
        /// Type on the right side.
        right: DataType,
        /// What the engine was doing when the mismatch occurred.
        context: &'static str,
    },
    /// A tuple's arity does not match its schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values in the tuple.
        got: usize,
    },
    /// Set operations require identically-typed schemas.
    SchemaMismatch {
        /// Describes the incompatibility.
        detail: String,
    },
    /// A floating point value that cannot participate in ordering (NaN).
    NotComparable,
    /// The data generator was asked for something unsatisfiable.
    Generator {
        /// Describes the unsatisfiable request.
        detail: String,
    },
    /// A parallel worker panicked mid-morsel. The scheduler cancels the
    /// remaining morsels and joins every worker before surfacing this, so
    /// the caller never sees a hang or a partial extent.
    Parallel {
        /// The worker's panic payload (or a generic marker).
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn { column, relation } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            Error::AmbiguousColumn { column, relation } => {
                write!(f, "ambiguous column `{column}` in relation `{relation}`")
            }
            Error::DuplicateColumn { column } => {
                write!(f, "duplicate column `{column}` in schema")
            }
            Error::TypeMismatch {
                left,
                right,
                context,
            } => {
                write!(f, "type mismatch in {context}: {left} vs {right}")
            }
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            Error::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            Error::NotComparable => write!(f, "values are not comparable (NaN)"),
            Error::Generator { detail } => write!(f, "generator error: {detail}"),
            Error::Parallel { detail } => write!(f, "parallel worker failed: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_column() {
        let e = Error::UnknownColumn {
            column: "R.A".into(),
            relation: "R".into(),
        };
        assert_eq!(e.to_string(), "unknown column `R.A` in relation `R`");
    }

    #[test]
    fn display_type_mismatch() {
        let e = Error::TypeMismatch {
            left: DataType::Int,
            right: DataType::Text,
            context: "comparison",
        };
        assert_eq!(e.to_string(), "type mismatch in comparison: INT vs TEXT");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::NotComparable);
    }
}
