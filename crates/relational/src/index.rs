//! Secondary indexes over relation storage.
//!
//! Two physical index kinds back the planner's [`IndexScan`] operator
//! (`crate::plan`): a [`HashIndex`] answering equality probes over the
//! scalar key encoding of [`crate::column`], and a [`SortedIndex`] — row
//! ids ordered by column value — answering range probes. Both are built
//! lazily the first time a plan asks for them, cached in the relation's
//! shared storage, and **maintained incrementally** across
//! `insert`/`delete` (append + positional remap) rather than rebuilt, the
//! same policy the MKB inverted indexes established for metadata.
//!
//! Every result is returned in ascending row order, so an index-backed
//! scan yields tuples in exactly the order a full scan would — the
//! byte-identity contract the differential suites pin.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

use eve_trace::Counter;

use crate::column::scalar_key;
use crate::intern;
use crate::predicate::CompOp;
use crate::tuple::Tuple;
use crate::types::Value;

/// The two physical index kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IndexKind {
    /// Hash map from scalar key to row ids — equality probes.
    Hash,
    /// Row ids sorted by column value — range probes.
    Sorted,
}

/// Equality index: scalar key → ascending row ids.
#[derive(Debug, Clone, Default, PartialEq)]
struct HashIndex {
    map: HashMap<u64, Vec<u32>>,
}

/// Range index: row ids ordered by `(column value, row id)`.
#[derive(Debug, Clone, Default, PartialEq)]
struct SortedIndex {
    rows: Vec<u32>,
}

/// Process-wide mirrors of the per-relation counters, in the global
/// registry `index.` family. Per-instance [`IndexStats`] stay exact for
/// the engine's per-relation rollup; these aggregate across all
/// relations for the `metrics` surface.
struct IndexCounters {
    builds: Arc<Counter>,
    hits: Arc<Counter>,
    maintenance: Arc<Counter>,
}

fn mirrors() -> &'static IndexCounters {
    static COUNTERS: OnceLock<IndexCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = eve_trace::global();
        IndexCounters {
            builds: registry.counter("index.builds"),
            hits: registry.counter("index.hits"),
            maintenance: registry.counter("index.maintenance_ops"),
        }
    })
}

/// Counters for the shell `stats` surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Hash indexes currently materialized.
    pub hash_indexes: u64,
    /// Sorted indexes currently materialized.
    pub sorted_indexes: u64,
    /// Lazy index constructions.
    pub builds: u64,
    /// Lookups answered from an index.
    pub hits: u64,
    /// Incremental maintenance operations (per index, per mutation).
    pub maintenance_ops: u64,
}

impl IndexStats {
    /// Component-wise sum, for engine-level aggregation.
    #[must_use]
    pub fn merged(self, other: IndexStats) -> IndexStats {
        IndexStats {
            hash_indexes: self.hash_indexes + other.hash_indexes,
            sorted_indexes: self.sorted_indexes + other.sorted_indexes,
            builds: self.builds + other.builds,
            hits: self.hits + other.hits,
            maintenance_ops: self.maintenance_ops + other.maintenance_ops,
        }
    }
}

/// The per-relation index collection, keyed by column position.
#[derive(Debug, Clone, Default)]
pub(crate) struct IndexSet {
    hash: BTreeMap<usize, HashIndex>,
    sorted: BTreeMap<usize, SortedIndex>,
    builds: u64,
    hits: u64,
    maintenance: u64,
}

impl IndexSet {
    /// Whether an index of `kind` exists on `col`.
    pub(crate) fn has(&self, col: usize, kind: IndexKind) -> bool {
        match kind {
            IndexKind::Hash => self.hash.contains_key(&col),
            IndexKind::Sorted => self.sorted.contains_key(&col),
        }
    }

    /// Builds the index of `kind` on `col` if absent.
    pub(crate) fn warm(&mut self, col: usize, kind: IndexKind, tuples: &[Tuple]) {
        match kind {
            IndexKind::Hash => {
                self.ensure_hash(col, tuples);
            }
            IndexKind::Sorted => {
                self.ensure_sorted(col, tuples);
            }
        }
    }

    fn ensure_hash(&mut self, col: usize, tuples: &[Tuple]) -> &HashIndex {
        if !self.hash.contains_key(&col) {
            let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
            for (i, t) in tuples.iter().enumerate() {
                map.entry(scalar_key(t.get(col)))
                    .or_default()
                    .push(u32::try_from(i).expect("row id fits u32"));
            }
            self.builds += 1;
            mirrors().builds.inc();
            self.hash.insert(col, HashIndex { map });
        }
        &self.hash[&col]
    }

    fn ensure_sorted(&mut self, col: usize, tuples: &[Tuple]) -> &SortedIndex {
        if !self.sorted.contains_key(&col) {
            let mut rows: Vec<u32> =
                (0..u32::try_from(tuples.len()).expect("row count fits u32")).collect();
            // Stable by value keeps equal-valued rows in ascending id order.
            rows.sort_by(|&a, &b| tuples[a as usize].get(col).cmp(tuples[b as usize].get(col)));
            self.builds += 1;
            mirrors().builds.inc();
            self.sorted.insert(col, SortedIndex { rows });
        }
        &self.sorted[&col]
    }

    /// Ascending row ids whose `col` value equals `key`, via the hash
    /// index (built on first use). An un-interned text key matches nothing.
    pub(crate) fn lookup_eq(&mut self, col: usize, key: &Value, tuples: &[Tuple]) -> Vec<u32> {
        self.hits += 1;
        mirrors().hits.inc();
        let idx = self.ensure_hash(col, tuples);
        // Probe *after* the build: a lazy first build is what interns the
        // stored text keys, so probing earlier would spuriously miss.
        match probe_key(key) {
            Some(k) => idx.map.get(&k).cloned().unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Ascending row ids whose `col` value satisfies `value-at-row θ key`,
    /// via the sorted index (built on first use).
    pub(crate) fn lookup_range(
        &mut self,
        col: usize,
        op: CompOp,
        key: &Value,
        tuples: &[Tuple],
    ) -> Vec<u32> {
        self.hits += 1;
        mirrors().hits.inc();
        let idx = self.ensure_sorted(col, tuples);
        let rows = &idx.rows;
        let below =
            rows.partition_point(|&r| tuples[r as usize].get(col).cmp(key) == Ordering::Less);
        let through =
            rows.partition_point(|&r| tuples[r as usize].get(col).cmp(key) != Ordering::Greater);
        let mut out: Vec<u32> = match op {
            CompOp::Lt => rows[..below].to_vec(),
            CompOp::Le => rows[..through].to_vec(),
            CompOp::Ge => rows[below..].to_vec(),
            CompOp::Gt => rows[through..].to_vec(),
            CompOp::Eq => rows[below..through].to_vec(),
            CompOp::Ne => {
                let mut v = rows[..below].to_vec();
                v.extend_from_slice(&rows[through..]);
                v
            }
        };
        // Scan-order contract: results ascend by row id.
        out.sort_unstable();
        out
    }

    /// Incremental maintenance for an appended row. `tuples` is the
    /// storage *before* the append; the new row's id is `tuples.len()`.
    pub(crate) fn insert_row(&mut self, t: &Tuple, tuples: &[Tuple]) {
        let row = u32::try_from(tuples.len()).expect("row id fits u32");
        for (&col, idx) in &mut self.hash {
            idx.map.entry(scalar_key(t.get(col))).or_default().push(row);
            self.maintenance += 1;
            mirrors().maintenance.inc();
        }
        for (&col, idx) in &mut self.sorted {
            let v = t.get(col);
            // The new row id is the largest, so inserting after every
            // value-equal row preserves the (value, row) order.
            let pos = idx
                .rows
                .partition_point(|&r| tuples[r as usize].get(col).cmp(v) != Ordering::Greater);
            idx.rows.insert(pos, row);
            self.maintenance += 1;
            mirrors().maintenance.inc();
        }
    }

    /// Incremental maintenance for deleted rows: drops the removed ids and
    /// remaps survivors to their post-delete positions. `removed` ascends.
    pub(crate) fn remove_rows(&mut self, removed: &[u32]) {
        let remap = |row: u32| {
            let shift = removed.partition_point(|&r| r < row);
            row - u32::try_from(shift).expect("shift fits u32")
        };
        for idx in self.hash.values_mut() {
            idx.map.retain(|_, rows| {
                rows.retain_mut(|r| {
                    if removed.binary_search(r).is_ok() {
                        false
                    } else {
                        *r = remap(*r);
                        true
                    }
                });
                !rows.is_empty()
            });
            self.maintenance += 1;
            mirrors().maintenance.inc();
        }
        for idx in self.sorted.values_mut() {
            idx.rows.retain_mut(|r| {
                if removed.binary_search(r).is_ok() {
                    false
                } else {
                    *r = remap(*r);
                    true
                }
            });
            self.maintenance += 1;
            mirrors().maintenance.inc();
        }
    }

    /// Counter snapshot.
    pub(crate) fn stats(&self) -> IndexStats {
        IndexStats {
            hash_indexes: self.hash.len() as u64,
            sorted_indexes: self.sorted.len() as u64,
            builds: self.builds,
            hits: self.hits,
            maintenance_ops: self.maintenance,
        }
    }

    /// Clears the hit/build/maintenance counters (shell `reset`).
    pub(crate) fn reset_counters(&mut self) {
        self.builds = 0;
        self.hits = 0;
        self.maintenance = 0;
    }
}

/// Non-inserting scalar key for a probe value: `None` for a text value
/// that was never interned (and therefore cannot occur in any column).
#[allow(clippy::cast_sign_loss)]
fn probe_key(v: &Value) -> Option<u64> {
    match v {
        Value::Int(x) => Some(*x as u64),
        Value::Float(x) => Some(x.to_bits()),
        Value::Bool(x) => Some(u64::from(*x)),
        Value::Text(x) => intern::lookup(x).map(|s| u64::from(s.id())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    fn rows() -> Vec<Tuple> {
        vec![tup![3, "c"], tup![1, "a"], tup![2, "b"], tup![1, "a"]]
    }

    #[test]
    fn hash_lookup_finds_all_ascending() {
        let tuples = rows();
        let mut set = IndexSet::default();
        assert_eq!(
            set.lookup_eq(0, &Value::Int(1), &tuples),
            vec![1, 3],
            "ascending row ids"
        );
        assert!(set.lookup_eq(0, &Value::Int(9), &tuples).is_empty());
        let s = set.stats();
        assert_eq!(s.builds, 1, "second lookup reuses the index");
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn sorted_range_matches_scan() {
        let tuples = rows();
        let mut set = IndexSet::default();
        assert_eq!(
            set.lookup_range(0, CompOp::Lt, &Value::Int(2), &tuples),
            vec![1, 3]
        );
        assert_eq!(
            set.lookup_range(0, CompOp::Ge, &Value::Int(2), &tuples),
            vec![0, 2]
        );
        assert_eq!(
            set.lookup_range(0, CompOp::Eq, &Value::Int(1), &tuples),
            vec![1, 3]
        );
    }

    #[test]
    fn insert_maintains_both_kinds() {
        let mut tuples = rows();
        let mut set = IndexSet::default();
        set.warm(0, IndexKind::Hash, &tuples);
        set.warm(0, IndexKind::Sorted, &tuples);
        set.insert_row(&tup![1, "z"], &tuples);
        tuples.push(tup![1, "z"]);
        assert_eq!(set.lookup_eq(0, &Value::Int(1), &tuples), vec![1, 3, 4]);
        assert_eq!(
            set.lookup_range(0, CompOp::Le, &Value::Int(1), &tuples),
            vec![1, 3, 4]
        );
        assert!(set.stats().maintenance_ops >= 2);
    }

    #[test]
    fn delete_remaps_survivors() {
        let mut tuples = rows();
        let mut set = IndexSet::default();
        set.warm(0, IndexKind::Hash, &tuples);
        set.warm(0, IndexKind::Sorted, &tuples);
        // Remove rows 0 and 2 (values 3 and 2).
        set.remove_rows(&[0, 2]);
        tuples.remove(2);
        tuples.remove(0);
        assert_eq!(set.lookup_eq(0, &Value::Int(1), &tuples), vec![0, 1]);
        assert!(set.lookup_eq(0, &Value::Int(3), &tuples).is_empty());
        assert_eq!(
            set.lookup_range(0, CompOp::Ge, &Value::Int(1), &tuples),
            vec![0, 1]
        );
    }

    #[test]
    fn uninterned_text_probe_matches_nothing() {
        let tuples = rows();
        let mut set = IndexSet::default();
        assert!(set
            .lookup_eq(1, &Value::from("eve-index-test-never-interned"), &tuples)
            .is_empty());
        assert_eq!(set.lookup_eq(1, &Value::from("a"), &tuples), vec![1, 3]);
    }
}
