//! Execution of [`PhysicalPlan`]s over shared storage.
//!
//! Every operator materializes its output, but *inputs are never copied*:
//! scans hand back `Arc`-shared relations ([`Relation::clone`] is
//! pointer-cheap since the copy-on-write storage change), hash-join keys
//! were resolved to column indices at plan time, and only genuinely new
//! tuples (join concatenations, filtered subsets) allocate.
//!
//! [`join_with_counts`] is the incremental-maintenance flavour of the hash
//! join: it additionally reports how many inner tuples each outer (delta)
//! tuple matched, which is exactly what the Appendix-A probe-I/O accounting
//! (`max(1, ⌈matches/bfr⌉)` capped by a full scan) consumes. The view
//! maintainer routes its delta joins through it so planned and legacy
//! execution charge byte-identical traces.

use std::collections::HashMap;

use crate::error::Result;
use crate::plan::{split_equi_keys, PhysicalPlan, PlanNode};
use crate::predicate::{Predicate, PrimitiveClause};
use crate::relation::Relation;
use crate::tuple::Tuple;

/// Executes a compiled plan, producing the named, projected output relation.
///
/// # Errors
///
/// Propagates predicate evaluation failures (the planner already
/// type-checked every predicate, so these only occur for pathological
/// schema/value drift after planning).
pub fn execute(plan: &PhysicalPlan) -> Result<Relation> {
    let joined = eval(plan, &plan.root)?;
    let mut rows = Vec::with_capacity(joined.cardinality());
    for t in joined.tuples() {
        rows.push(t.project(&plan.projection));
    }
    Ok(Relation::from_validated(
        plan.name.clone(),
        plan.output_schema.clone(),
        rows,
    ))
}

fn eval(plan: &PhysicalPlan, node: &PlanNode) -> Result<Relation> {
    match node {
        PlanNode::Scan { input, pushdown } => {
            let rel = &plan.inputs[*input].relation;
            match pushdown {
                None => Ok(rel.clone()), // zero-copy: shares tuple storage
                Some(pred) => {
                    let mut keep = Vec::new();
                    for t in rel.tuples() {
                        if pred.eval(rel.schema(), t, rel.name())? {
                            keep.push(t.clone());
                        }
                    }
                    Ok(Relation::from_validated(
                        rel.name(),
                        rel.schema().clone(),
                        keep,
                    ))
                }
            }
        }
        PlanNode::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
            schema,
        } => {
            let probe_rel = eval(plan, probe)?;
            let build_rel = eval(plan, build)?;
            let name = format!("{}⋈{}", probe_rel.name(), build_rel.name());
            let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
            for b in build_rel.tuples() {
                table.entry(b.project(build_keys)).or_default().push(b);
            }
            let mut out = Vec::new();
            for p in probe_rel.tuples() {
                if let Some(matches) = table.get(&p.project(probe_keys)) {
                    for b in matches {
                        let t = p.concat(b);
                        if residual.is_true() || residual.eval(schema, &t, &name)? {
                            out.push(t);
                        }
                    }
                }
            }
            Ok(Relation::from_validated(name, schema.clone(), out))
        }
        PlanNode::NestedLoop {
            outer,
            inner,
            condition,
            schema,
        } => {
            let outer_rel = eval(plan, outer)?;
            let inner_rel = eval(plan, inner)?;
            let name = format!("{}⋈{}", outer_rel.name(), inner_rel.name());
            let mut out = Vec::new();
            for o in outer_rel.tuples() {
                for i in inner_rel.tuples() {
                    let t = o.concat(i);
                    if condition.is_true() || condition.eval(schema, &t, &name)? {
                        out.push(t);
                    }
                }
            }
            Ok(Relation::from_validated(name, schema.clone(), out))
        }
    }
}

/// Joins `delta` with `next` under the conjunction `on`, returning the
/// joined relation together with the number of `next`-tuples matched by
/// each delta tuple (for probe-I/O accounting). Equality clauses between
/// the two sides become hash keys; remaining clauses filter the result.
/// Without any key the join degrades to a scan — every delta tuple
/// "matches" the full relation.
///
/// This is Algorithm 1's per-site delta join, physically: identical output
/// order (delta-major, build-table insertion order within a key) and
/// identical match counts to the historical naive implementation.
///
/// # Errors
///
/// Schema concatenation and predicate failures.
pub fn join_with_counts(
    delta: &Relation,
    next: &Relation,
    on: &[PrimitiveClause],
) -> Result<(Relation, Vec<usize>)> {
    let (keys, residual_clauses) =
        split_equi_keys(delta.schema(), delta.name(), next.schema(), next.name(), on);
    let schema = delta.schema().concat(next.schema())?;
    let name = format!("{}⋈{}", delta.name(), next.name());
    let residual = Predicate::new(residual_clauses);
    residual.type_check(&schema, &name)?;

    let mut out = Vec::new();
    let mut counts = Vec::with_capacity(delta.cardinality());
    if keys.is_empty() {
        for d in delta.tuples() {
            counts.push(next.cardinality());
            for n in next.tuples() {
                let t = d.concat(n);
                if residual.eval(&schema, &t, &name)? {
                    out.push(t);
                }
            }
        }
        return Ok((Relation::from_validated(name, schema, out), counts));
    }

    let (delta_idx, next_idx): (Vec<usize>, Vec<usize>) = keys.into_iter().unzip();
    let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    for n in next.tuples() {
        table.entry(n.project(&next_idx)).or_default().push(n);
    }
    for d in delta.tuples() {
        let matches = table
            .get(&d.project(&delta_idx))
            .map_or(&[][..], Vec::as_slice);
        counts.push(matches.len());
        for n in matches {
            let t = d.concat(n);
            if residual.eval(&schema, &t, &name)? {
                out.push(t);
            }
        }
    }
    Ok((Relation::from_validated(name, schema, out), counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan, QueryInput, QuerySpec};
    use crate::predicate::CompOp;
    use crate::schema::{ColumnRef, Schema};
    use crate::tup;
    use crate::types::{DataType, Value};
    use crate::{algebra, Predicate};

    fn rel(name: &str, cols: &[(&str, DataType)], rows: Vec<Tuple>) -> Relation {
        Relation::with_tuples(name, Schema::of(cols).unwrap().qualify(name), rows).unwrap()
    }

    fn chain_spec() -> QuerySpec {
        let a = rel(
            "A",
            &[("K", DataType::Int), ("P", DataType::Int)],
            vec![tup![1, 10], tup![2, 20], tup![3, 30]],
        );
        let b = rel(
            "B",
            &[("K", DataType::Int), ("P", DataType::Int)],
            vec![tup![1, 11], tup![3, 31], tup![4, 41]],
        );
        let c = rel(
            "C",
            &[("K", DataType::Int), ("P", DataType::Int)],
            vec![tup![1, 12], tup![2, 22], tup![3, 32]],
        );
        QuerySpec {
            name: "V".into(),
            inputs: vec![
                QueryInput {
                    binding: "A".into(),
                    relation: a,
                    stats: None,
                },
                QueryInput {
                    binding: "B".into(),
                    relation: b,
                    stats: None,
                },
                QueryInput {
                    binding: "C".into(),
                    relation: c,
                    stats: None,
                },
            ],
            clauses: vec![
                PrimitiveClause::eq(ColumnRef::parse("A.K"), ColumnRef::parse("B.K")),
                PrimitiveClause::eq(ColumnRef::parse("B.K"), ColumnRef::parse("C.K")),
            ],
            projection: vec![
                ColumnRef::parse("A.K"),
                ColumnRef::parse("B.P"),
                ColumnRef::parse("C.P"),
            ],
            output: vec![
                ColumnRef::bare("K"),
                ColumnRef::bare("BP"),
                ColumnRef::bare("CP"),
            ],
        }
    }

    #[test]
    fn chain_join_matches_naive_reference() {
        let spec = chain_spec();
        let p = plan(spec).unwrap();
        let out = p.execute().unwrap();
        let mut got = out.tuples().to_vec();
        got.sort();
        assert_eq!(got, vec![tup![1, 11, 12], tup![3, 31, 32]]);
        assert_eq!(out.name(), "V");
        assert_eq!(out.schema().column(1).column, ColumnRef::bare("BP"));
    }

    #[test]
    fn scan_without_pushdown_shares_storage() {
        let a = rel("A", &[("K", DataType::Int)], vec![tup![1], tup![2]]);
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![QueryInput {
                binding: "A".into(),
                relation: a.clone(),
                stats: None,
            }],
            clauses: vec![],
            projection: vec![ColumnRef::parse("A.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let p = plan(spec).unwrap();
        // The scan itself is zero-copy; only the projection materializes.
        match &p.root {
            PlanNode::Scan { input, pushdown } => {
                assert_eq!(*input, 0);
                assert!(pushdown.is_none());
            }
            other => panic!("expected a bare scan, got {other:?}"),
        }
        let out = p.execute().unwrap();
        assert_eq!(out.tuples(), &[tup![1], tup![2]]);
    }

    #[test]
    fn pushdown_filter_applies_during_scan() {
        let a = rel(
            "A",
            &[("K", DataType::Int)],
            (0..10).map(|k| tup![k]).collect(),
        );
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![QueryInput {
                binding: "A".into(),
                relation: a,
                stats: None,
            }],
            clauses: vec![PrimitiveClause::lit(
                ColumnRef::parse("A.K"),
                CompOp::Lt,
                Value::Int(3),
            )],
            projection: vec![ColumnRef::parse("A.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let out = plan(spec).unwrap().execute().unwrap();
        assert_eq!(out.tuples(), &[tup![0], tup![1], tup![2]]);
    }

    #[test]
    fn join_with_counts_matches_algebra_join() {
        let delta = rel(
            "D",
            &[("K", DataType::Int), ("X", DataType::Int)],
            vec![tup![1, 0], tup![2, 0], tup![9, 0]],
        );
        let next = rel(
            "N",
            &[("K", DataType::Int), ("Y", DataType::Int)],
            vec![tup![1, 5], tup![1, 6], tup![2, 7]],
        );
        let on = vec![PrimitiveClause::eq(
            ColumnRef::parse("D.K"),
            ColumnRef::parse("N.K"),
        )];
        let (joined, counts) = join_with_counts(&delta, &next, &on).unwrap();
        assert_eq!(counts, vec![2, 1, 0]);
        let reference = algebra::join(&delta, &next, &Predicate::new(on)).unwrap();
        assert_eq!(joined.tuples(), reference.tuples());
    }

    #[test]
    fn join_with_counts_keyless_scans_everything() {
        let delta = rel("D", &[("X", DataType::Int)], vec![tup![1], tup![2]]);
        let next = rel(
            "N",
            &[("Y", DataType::Int)],
            vec![tup![1], tup![2], tup![3]],
        );
        let on = vec![PrimitiveClause::cols(
            ColumnRef::parse("D.X"),
            CompOp::Lt,
            ColumnRef::parse("N.Y"),
        )];
        let (joined, counts) = join_with_counts(&delta, &next, &on).unwrap();
        assert_eq!(counts, vec![3, 3], "keyless probe scans the relation");
        assert_eq!(joined.cardinality(), 3); // (1,2),(1,3),(2,3)
    }
}
