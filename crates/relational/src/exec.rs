//! Execution of [`PhysicalPlan`]s over shared storage.
//!
//! Every operator materializes its output, but *inputs are never copied*:
//! scans hand back `Arc`-shared relations ([`Relation::clone`] is
//! pointer-cheap since the copy-on-write storage change), hash-join keys
//! were resolved to column indices at plan time, and only genuinely new
//! tuples (join concatenations, filtered subsets) allocate. A filter that
//! keeps every tuple returns the input's shared storage untouched.
//!
//! Two execution modes share one plan tree ([`ExecMode`]): the default
//! **columnar** mode evaluates pushed-down filters as vectorized passes
//! over the relation's [`crate::column::ColumnarBatch`], serves
//! [`PlanNode::IndexScan`] from the lazily built secondary indexes, and
//! probes hash joins with interned scalar keys (`u64`s instead of cloned
//! key tuples); the **row-oriented** mode is the frozen PR 3 baseline the
//! differential suites compare against byte-for-byte.
//!
//! [`join_with_counts`] is the incremental-maintenance flavour of the hash
//! join: it additionally reports how many inner tuples each outer (delta)
//! tuple matched, which is exactly what the Appendix-A probe-I/O accounting
//! (`max(1, ⌈matches/bfr⌉)` capped by a full scan) consumes. The view
//! maintainer routes its delta joins through it so planned and legacy
//! execution charge byte-identical traces.

use std::collections::HashMap;

use crate::column::{self, scalar_key};
use crate::error::Result;
use crate::plan::{split_equi_keys, PhysicalPlan, PlanNode};
use crate::predicate::{CompOp, Predicate, PrimitiveClause};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Which physical execution strategy to run a plan with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Row-at-a-time operators over `Tuple` storage — the PR 3 baseline,
    /// kept as the differential reference and benchmark counter-arm.
    RowOriented,
    /// Vectorized filters, index scans and interned-key hash joins over
    /// the columnar layer. The default.
    #[default]
    Columnar,
}

/// Executes a compiled plan, producing the named, projected output relation.
/// Uses the default (columnar) mode.
///
/// # Errors
///
/// Propagates predicate evaluation failures (the planner already
/// type-checked every predicate, so these only occur for pathological
/// schema/value drift after planning).
pub fn execute(plan: &PhysicalPlan) -> Result<Relation> {
    execute_with(plan, ExecMode::Columnar)
}

/// Executes a compiled plan under an explicit [`ExecMode`]. Both modes
/// produce byte-identical output (same tuples, same order).
///
/// # Errors
///
/// See [`execute`].
pub fn execute_with(plan: &PhysicalPlan, mode: ExecMode) -> Result<Relation> {
    if mode == ExecMode::Columnar {
        // The columnar image is part of the physical storage: build (or
        // reuse — it is cached in the shared storage) each base input's
        // batch up front so vectorized filters and interned join keys
        // read columns instead of re-deriving scalar keys per tuple.
        for input in &plan.inputs {
            let _ = input.relation.columnar();
        }
    }
    let joined = eval(plan, &plan.root, mode)?;
    let mut rows = Vec::with_capacity(joined.cardinality());
    for t in joined.tuples() {
        rows.push(t.project(&plan.projection));
    }
    Ok(Relation::from_validated(
        plan.name.clone(),
        plan.output_schema.clone(),
        rows,
    ))
}

/// Materializes an ascending selection over `rel` — zero-copy when the
/// selection keeps every row.
fn materialize_selection(rel: &Relation, sel: &[u32]) -> Relation {
    if sel.len() == rel.cardinality() {
        return rel.clone(); // shares tuple storage
    }
    let tuples = rel.tuples();
    Relation::from_validated(
        rel.name(),
        rel.schema().clone(),
        sel.iter().map(|&r| tuples[r as usize].clone()).collect(),
    )
}

/// Row-at-a-time filter: ascending row ids satisfying `pred`.
fn filter_rows(rel: &Relation, pred: &Predicate) -> Result<Vec<u32>> {
    let mut sel = Vec::new();
    for (i, t) in rel.tuples().iter().enumerate() {
        if pred.eval(rel.schema(), t, rel.name())? {
            sel.push(u32::try_from(i).expect("row id fits u32"));
        }
    }
    Ok(sel)
}

fn eval(plan: &PhysicalPlan, node: &PlanNode, mode: ExecMode) -> Result<Relation> {
    match node {
        PlanNode::Scan { input, pushdown } => {
            let rel = &plan.inputs[*input].relation;
            match pushdown {
                None => Ok(rel.clone()), // zero-copy: shares tuple storage
                Some(pred) => {
                    if mode == ExecMode::Columnar {
                        if let Some(compiled) =
                            column::compile_clauses(pred, rel.schema(), rel.name())
                        {
                            let batch = rel.columnar();
                            let sel = column::filter_batch(&batch, rel.tuples(), &compiled);
                            return Ok(materialize_selection(rel, &sel));
                        }
                    }
                    let sel = filter_rows(rel, pred)?;
                    Ok(materialize_selection(rel, &sel))
                }
            }
        }
        PlanNode::IndexScan {
            input,
            col,
            op,
            key,
            residual,
            pushdown,
        } => {
            let rel = &plan.inputs[*input].relation;
            if mode == ExecMode::RowOriented {
                // Baseline semantics: the index clause is just a filter.
                let sel = filter_rows(rel, pushdown)?;
                return Ok(materialize_selection(rel, &sel));
            }
            let rows = if *op == CompOp::Eq {
                rel.index_eq_rows(*col, key)
            } else {
                rel.index_range_rows(*col, *op, key)
            };
            let sel = match residual {
                None => rows,
                Some(pred) => {
                    let tuples = rel.tuples();
                    let mut keep = Vec::with_capacity(rows.len());
                    for r in rows {
                        if pred.eval(rel.schema(), &tuples[r as usize], rel.name())? {
                            keep.push(r);
                        }
                    }
                    keep
                }
            };
            Ok(materialize_selection(rel, &sel))
        }
        PlanNode::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
            schema,
        } => {
            let probe_rel = eval(plan, probe, mode)?;
            let build_rel = eval(plan, build, mode)?;
            if mode == ExecMode::Columnar
                && key_types_match(&probe_rel, probe_keys, &build_rel, build_keys)
            {
                return hash_join_columnar(
                    &probe_rel, &build_rel, probe_keys, build_keys, residual, schema,
                );
            }
            hash_join_rows(
                &probe_rel, &build_rel, probe_keys, build_keys, residual, schema,
            )
        }
        PlanNode::NestedLoop {
            outer,
            inner,
            condition,
            schema,
        } => {
            let outer_rel = eval(plan, outer, mode)?;
            let inner_rel = eval(plan, inner, mode)?;
            let name = format!("{}⋈{}", outer_rel.name(), inner_rel.name());
            let mut out = Vec::new();
            for o in outer_rel.tuples() {
                for i in inner_rel.tuples() {
                    let t = o.concat(i);
                    if condition.is_true() || condition.eval(schema, &t, &name)? {
                        out.push(t);
                    }
                }
            }
            Ok(Relation::from_validated(name, schema.clone(), out))
        }
    }
}

/// Whether every probe/build key column pair compares the same type. A
/// mismatched pair can never match under `Value` equality; the scalar key
/// encoding cannot express that, so such joins take the row path.
fn key_types_match(
    probe: &Relation,
    probe_keys: &[usize],
    build: &Relation,
    build_keys: &[usize],
) -> bool {
    probe_keys
        .iter()
        .zip(build_keys)
        .all(|(&p, &b)| probe.schema().column(p).ty == build.schema().column(b).ty)
}

/// Join key over the scalar `u64` encoding (see [`crate::column`]).
#[derive(PartialEq, Eq, Hash)]
enum JoinKey {
    One(u64),
    Many(Box<[u64]>),
}

/// Multiply-xor hasher for [`JoinKey`]s: interned scalar keys are already
/// uniform `u64`s, and SipHash would cost more per probe than the table
/// lookup itself. Not used for projected-`Tuple` keys (the row baseline),
/// which hash full values.
#[derive(Default)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, x: u64) {
        // Golden-ratio multiply, then fold the high bits down so both the
        // bucket index and the control byte see the mixed entropy.
        self.0 = (self.0 ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }

    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    fn write_u8(&mut self, x: u8) {
        self.write_u64(u64::from(x));
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// Hash table from scalar join keys to ascending build-side row ids.
type KeyTable = HashMap<JoinKey, Vec<u32>, std::hash::BuildHasherDefault<KeyHasher>>;

fn key_table_with_capacity(n: usize) -> KeyTable {
    KeyTable::with_capacity_and_hasher(n, std::hash::BuildHasherDefault::default())
}

/// Per-row scalar join keys for `cols`, read from the cached columnar
/// batch when one exists and computed directly from the tuples otherwise
/// (intermediates never pay a full batch build for one key column).
fn join_key_vector(rel: &Relation, cols: &[usize]) -> Vec<JoinKey> {
    if rel.columnar_built() {
        let batch = rel.columnar();
        if let [col] = cols {
            let c = batch.column(*col);
            return (0..batch.rows())
                .map(|r| JoinKey::One(c.key_at(r)))
                .collect();
        }
        return (0..batch.rows())
            .map(|r| {
                JoinKey::Many(
                    cols.iter()
                        .map(|&col| batch.column(col).key_at(r))
                        .collect(),
                )
            })
            .collect();
    }
    let tuples = rel.tuples();
    if let [col] = cols {
        return tuples
            .iter()
            .map(|t| JoinKey::One(scalar_key(t.get(*col))))
            .collect();
    }
    tuples
        .iter()
        .map(|t| JoinKey::Many(cols.iter().map(|&c| scalar_key(t.get(c))).collect()))
        .collect()
}

/// Hash join over interned scalar keys: hashes `u64`s instead of cloning
/// and hashing projected key tuples. Output order is identical to the row
/// path — probe order outer, build insertion (ascending row) order inner.
fn hash_join_columnar(
    probe_rel: &Relation,
    build_rel: &Relation,
    probe_keys: &[usize],
    build_keys: &[usize],
    residual: &Predicate,
    schema: &Schema,
) -> Result<Relation> {
    let name = format!("{}⋈{}", probe_rel.name(), build_rel.name());
    let build_key_vec = join_key_vector(build_rel, build_keys);
    let mut table = key_table_with_capacity(build_key_vec.len());
    for (i, k) in build_key_vec.into_iter().enumerate() {
        table
            .entry(k)
            .or_default()
            .push(u32::try_from(i).expect("row id fits u32"));
    }
    let probe_key_vec = join_key_vector(probe_rel, probe_keys);
    let build_tuples = build_rel.tuples();
    let mut out = Vec::new();
    for (p, k) in probe_key_vec.into_iter().enumerate() {
        if let Some(matches) = table.get(&k) {
            let pt = &probe_rel.tuples()[p];
            for &b in matches {
                let t = pt.concat(&build_tuples[b as usize]);
                if residual.is_true() || residual.eval(schema, &t, &name)? {
                    out.push(t);
                }
            }
        }
    }
    Ok(Relation::from_validated(name, schema.clone(), out))
}

/// The PR 3 row-oriented hash join: projected-`Tuple` keys.
fn hash_join_rows(
    probe_rel: &Relation,
    build_rel: &Relation,
    probe_keys: &[usize],
    build_keys: &[usize],
    residual: &Predicate,
    schema: &Schema,
) -> Result<Relation> {
    let name = format!("{}⋈{}", probe_rel.name(), build_rel.name());
    let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    for b in build_rel.tuples() {
        table.entry(b.project(build_keys)).or_default().push(b);
    }
    let mut out = Vec::new();
    for p in probe_rel.tuples() {
        if let Some(matches) = table.get(&p.project(probe_keys)) {
            for b in matches {
                let t = p.concat(b);
                if residual.is_true() || residual.eval(schema, &t, &name)? {
                    out.push(t);
                }
            }
        }
    }
    Ok(Relation::from_validated(name, schema.clone(), out))
}

/// Joins `delta` with `next` under the conjunction `on`, returning the
/// joined relation together with the number of `next`-tuples matched by
/// each delta tuple (for probe-I/O accounting). Equality clauses between
/// the two sides become hash keys; remaining clauses filter the result.
/// Without any key the join degrades to a scan — every delta tuple
/// "matches" the full relation.
///
/// This is Algorithm 1's per-site delta join, physically: identical output
/// order (delta-major, build-table insertion order within a key) and
/// identical match counts to the historical naive implementation. The
/// keyed probe runs over interned scalar keys when the column types line
/// up, falling back to projected-tuple keys otherwise.
///
/// # Errors
///
/// Schema concatenation and predicate failures.
pub fn join_with_counts(
    delta: &Relation,
    next: &Relation,
    on: &[PrimitiveClause],
) -> Result<(Relation, Vec<usize>)> {
    let (keys, residual_clauses) =
        split_equi_keys(delta.schema(), delta.name(), next.schema(), next.name(), on);
    let schema = delta.schema().concat(next.schema())?;
    let name = format!("{}⋈{}", delta.name(), next.name());
    let residual = Predicate::new(residual_clauses);
    residual.type_check(&schema, &name)?;

    let mut out = Vec::new();
    let mut counts = Vec::with_capacity(delta.cardinality());
    if keys.is_empty() {
        for d in delta.tuples() {
            counts.push(next.cardinality());
            for n in next.tuples() {
                let t = d.concat(n);
                if residual.eval(&schema, &t, &name)? {
                    out.push(t);
                }
            }
        }
        return Ok((Relation::from_validated(name, schema, out), counts));
    }

    let (delta_idx, next_idx): (Vec<usize>, Vec<usize>) = keys.into_iter().unzip();
    if key_types_match(delta, &delta_idx, next, &next_idx) {
        let next_key_vec = join_key_vector(next, &next_idx);
        let mut table = key_table_with_capacity(next_key_vec.len());
        for (i, k) in next_key_vec.into_iter().enumerate() {
            table
                .entry(k)
                .or_default()
                .push(u32::try_from(i).expect("row id fits u32"));
        }
        let delta_key_vec = join_key_vector(delta, &delta_idx);
        let next_tuples = next.tuples();
        for (di, k) in delta_key_vec.into_iter().enumerate() {
            let matches = table.get(&k).map_or(&[][..], Vec::as_slice);
            counts.push(matches.len());
            let dt = &delta.tuples()[di];
            for &n in matches {
                let t = dt.concat(&next_tuples[n as usize]);
                if residual.eval(&schema, &t, &name)? {
                    out.push(t);
                }
            }
        }
        return Ok((Relation::from_validated(name, schema, out), counts));
    }

    let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    for n in next.tuples() {
        table.entry(n.project(&next_idx)).or_default().push(n);
    }
    for d in delta.tuples() {
        let matches = table
            .get(&d.project(&delta_idx))
            .map_or(&[][..], Vec::as_slice);
        counts.push(matches.len());
        for n in matches {
            let t = d.concat(n);
            if residual.eval(&schema, &t, &name)? {
                out.push(t);
            }
        }
    }
    Ok((Relation::from_validated(name, schema, out), counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan, QueryInput, QuerySpec};
    use crate::predicate::CompOp;
    use crate::schema::{ColumnRef, Schema};
    use crate::tup;
    use crate::types::{DataType, Value};
    use crate::{algebra, Predicate};

    fn rel(name: &str, cols: &[(&str, DataType)], rows: Vec<Tuple>) -> Relation {
        Relation::with_tuples(name, Schema::of(cols).unwrap().qualify(name), rows).unwrap()
    }

    fn chain_spec() -> QuerySpec {
        let a = rel(
            "A",
            &[("K", DataType::Int), ("P", DataType::Int)],
            vec![tup![1, 10], tup![2, 20], tup![3, 30]],
        );
        let b = rel(
            "B",
            &[("K", DataType::Int), ("P", DataType::Int)],
            vec![tup![1, 11], tup![3, 31], tup![4, 41]],
        );
        let c = rel(
            "C",
            &[("K", DataType::Int), ("P", DataType::Int)],
            vec![tup![1, 12], tup![2, 22], tup![3, 32]],
        );
        QuerySpec {
            name: "V".into(),
            inputs: vec![
                QueryInput {
                    binding: "A".into(),
                    relation: a,
                    stats: None,
                },
                QueryInput {
                    binding: "B".into(),
                    relation: b,
                    stats: None,
                },
                QueryInput {
                    binding: "C".into(),
                    relation: c,
                    stats: None,
                },
            ],
            clauses: vec![
                PrimitiveClause::eq(ColumnRef::parse("A.K"), ColumnRef::parse("B.K")),
                PrimitiveClause::eq(ColumnRef::parse("B.K"), ColumnRef::parse("C.K")),
            ],
            projection: vec![
                ColumnRef::parse("A.K"),
                ColumnRef::parse("B.P"),
                ColumnRef::parse("C.P"),
            ],
            output: vec![
                ColumnRef::bare("K"),
                ColumnRef::bare("BP"),
                ColumnRef::bare("CP"),
            ],
        }
    }

    #[test]
    fn chain_join_matches_naive_reference() {
        let spec = chain_spec();
        let p = plan(spec).unwrap();
        let out = p.execute().unwrap();
        let mut got = out.tuples().to_vec();
        got.sort();
        assert_eq!(got, vec![tup![1, 11, 12], tup![3, 31, 32]]);
        assert_eq!(out.name(), "V");
        assert_eq!(out.schema().column(1).column, ColumnRef::bare("BP"));
    }

    #[test]
    fn exec_modes_agree_byte_for_byte() {
        let p = plan(chain_spec()).unwrap();
        let columnar = execute_with(&p, ExecMode::Columnar).unwrap();
        let row = execute_with(&p, ExecMode::RowOriented).unwrap();
        assert_eq!(columnar.tuples(), row.tuples(), "same tuples, same order");
        assert_eq!(columnar, row);
    }

    #[test]
    fn exec_modes_agree_on_text_keys() {
        let l = rel(
            "L",
            &[("K", DataType::Text), ("P", DataType::Int)],
            vec![tup!["a", 1], tup!["b", 2], tup!["a", 3]],
        );
        let r_ = rel(
            "R",
            &[("K", DataType::Text), ("Q", DataType::Int)],
            vec![tup!["a", 10], tup!["c", 30], tup!["a", 40]],
        );
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![
                QueryInput {
                    binding: "L".into(),
                    relation: l,
                    stats: None,
                },
                QueryInput {
                    binding: "R".into(),
                    relation: r_,
                    stats: None,
                },
            ],
            clauses: vec![PrimitiveClause::eq(
                ColumnRef::parse("L.K"),
                ColumnRef::parse("R.K"),
            )],
            projection: vec![ColumnRef::parse("L.P"), ColumnRef::parse("R.Q")],
            output: vec![ColumnRef::bare("P"), ColumnRef::bare("Q")],
        };
        let p = plan(spec).unwrap();
        let columnar = execute_with(&p, ExecMode::Columnar).unwrap();
        let row = execute_with(&p, ExecMode::RowOriented).unwrap();
        assert_eq!(columnar.tuples(), row.tuples());
        assert_eq!(columnar.cardinality(), 4); // 2 'a' × 2 'a'
    }

    #[test]
    fn scan_without_pushdown_shares_storage() {
        let a = rel("A", &[("K", DataType::Int)], vec![tup![1], tup![2]]);
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![QueryInput {
                binding: "A".into(),
                relation: a.clone(),
                stats: None,
            }],
            clauses: vec![],
            projection: vec![ColumnRef::parse("A.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let p = plan(spec).unwrap();
        // The scan itself is zero-copy; only the projection materializes.
        match &p.root {
            PlanNode::Scan { input, pushdown } => {
                assert_eq!(*input, 0);
                assert!(pushdown.is_none());
            }
            other => panic!("expected a bare scan, got {other:?}"),
        }
        let out = p.execute().unwrap();
        assert_eq!(out.tuples(), &[tup![1], tup![2]]);
    }

    #[test]
    fn pushdown_filter_applies_during_scan() {
        let a = rel(
            "A",
            &[("K", DataType::Int)],
            (0..10).map(|k| tup![k]).collect(),
        );
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![QueryInput {
                binding: "A".into(),
                relation: a,
                stats: None,
            }],
            clauses: vec![PrimitiveClause::lit(
                ColumnRef::parse("A.K"),
                CompOp::Lt,
                Value::Int(3),
            )],
            projection: vec![ColumnRef::parse("A.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let out = plan(spec).unwrap().execute().unwrap();
        assert_eq!(out.tuples(), &[tup![0], tup![1], tup![2]]);
    }

    #[test]
    fn filter_keeping_everything_is_zero_copy() {
        let a = rel(
            "A",
            &[("K", DataType::Int)],
            (0..10).map(|k| tup![k]).collect(),
        );
        let pred = Predicate::single(PrimitiveClause::lit(
            ColumnRef::parse("A.K"),
            CompOp::Ge,
            Value::Int(0),
        ));
        // Columnar path.
        let sel = filter_rows(&a, &pred).unwrap();
        let kept = materialize_selection(&a, &sel);
        assert!(
            kept.shares_tuples_with(&a),
            "an all-pass filter must not materialize a copy"
        );
        // And through a full plan: the scan output of an all-pass pushdown
        // shares storage with the base extent.
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![QueryInput {
                binding: "A".into(),
                relation: a.clone(),
                stats: None,
            }],
            clauses: vec![pred.clauses()[0].clone()],
            projection: vec![ColumnRef::parse("A.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let p = plan(spec).unwrap();
        let scanned = eval(&p, &p.root, ExecMode::Columnar).unwrap();
        assert!(scanned.shares_tuples_with(&a));
    }

    #[test]
    fn join_with_counts_matches_algebra_join() {
        let delta = rel(
            "D",
            &[("K", DataType::Int), ("X", DataType::Int)],
            vec![tup![1, 0], tup![2, 0], tup![9, 0]],
        );
        let next = rel(
            "N",
            &[("K", DataType::Int), ("Y", DataType::Int)],
            vec![tup![1, 5], tup![1, 6], tup![2, 7]],
        );
        let on = vec![PrimitiveClause::eq(
            ColumnRef::parse("D.K"),
            ColumnRef::parse("N.K"),
        )];
        let (joined, counts) = join_with_counts(&delta, &next, &on).unwrap();
        assert_eq!(counts, vec![2, 1, 0]);
        let reference = algebra::join(&delta, &next, &Predicate::new(on)).unwrap();
        assert_eq!(joined.tuples(), reference.tuples());
    }

    #[test]
    fn join_with_counts_keyless_scans_everything() {
        let delta = rel("D", &[("X", DataType::Int)], vec![tup![1], tup![2]]);
        let next = rel(
            "N",
            &[("Y", DataType::Int)],
            vec![tup![1], tup![2], tup![3]],
        );
        let on = vec![PrimitiveClause::cols(
            ColumnRef::parse("D.X"),
            CompOp::Lt,
            ColumnRef::parse("N.Y"),
        )];
        let (joined, counts) = join_with_counts(&delta, &next, &on).unwrap();
        assert_eq!(counts, vec![3, 3], "keyless probe scans the relation");
        assert_eq!(joined.cardinality(), 3); // (1,2),(1,3),(2,3)
    }

    #[test]
    fn mismatched_key_types_fall_back_to_row_join() {
        // `D.K = N.K` with K Int on one side and Text on the other: legal
        // to plan (no type check on key extraction), but no tuple can ever
        // match. The scalar-key path must not report false matches.
        let delta = rel("D", &[("K", DataType::Int)], vec![tup![1], tup![2]]);
        let next = rel("N", &[("K", DataType::Text)], vec![tup!["1"], tup!["a"]]);
        let on = vec![PrimitiveClause::eq(
            ColumnRef::parse("D.K"),
            ColumnRef::parse("N.K"),
        )];
        let (joined, counts) = join_with_counts(&delta, &next, &on).unwrap();
        assert!(joined.is_empty());
        assert_eq!(counts, vec![0, 0]);
    }
}
