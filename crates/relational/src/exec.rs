//! Execution of [`PhysicalPlan`]s over shared storage.
//!
//! Every operator materializes its output, but *inputs are never copied*:
//! scans hand back `Arc`-shared relations ([`Relation::clone`] is
//! pointer-cheap since the copy-on-write storage change), hash-join keys
//! were resolved to column indices at plan time, and only genuinely new
//! tuples (join concatenations, filtered subsets) allocate. A filter that
//! keeps every tuple returns the input's shared storage untouched.
//!
//! Two execution modes share one plan tree ([`ExecMode`]): the default
//! **columnar** mode evaluates pushed-down filters as vectorized passes
//! over the relation's [`crate::column::ColumnarBatch`], serves
//! [`PlanNode::IndexScan`] from the lazily built secondary indexes, and
//! probes hash joins with interned scalar keys (`u64`s instead of cloned
//! key tuples); the **row-oriented** mode is the frozen PR 3 baseline the
//! differential suites compare against byte-for-byte.
//!
//! [`join_with_counts`] is the incremental-maintenance flavour of the hash
//! join: it additionally reports how many inner tuples each outer (delta)
//! tuple matched, which is exactly what the Appendix-A probe-I/O accounting
//! (`max(1, ⌈matches/bfr⌉)` capped by a full scan) consumes. The view
//! maintainer routes its delta joins through it so planned and legacy
//! execution charge byte-identical traces.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Mutex;

use crate::column::{self, scalar_key};
use crate::error::Result;
use crate::morsel::{self, ExecOptions};
use crate::plan::{split_equi_keys, PhysicalPlan, PlanNode};
use crate::predicate::{CompOp, Predicate, PrimitiveClause};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// Which physical execution strategy to run a plan with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Row-at-a-time operators over `Tuple` storage — the PR 3 baseline,
    /// kept as the differential reference and benchmark counter-arm.
    RowOriented,
    /// Vectorized filters, index scans and interned-key hash joins over
    /// the columnar layer. The default.
    #[default]
    Columnar,
}

/// Executes a compiled plan, producing the named, projected output relation.
/// Uses the default (columnar) mode.
///
/// # Errors
///
/// Propagates predicate evaluation failures (the planner already
/// type-checked every predicate, so these only occur for pathological
/// schema/value drift after planning).
pub fn execute(plan: &PhysicalPlan) -> Result<Relation> {
    execute_with(plan, ExecMode::Columnar)
}

/// Executes a compiled plan under an explicit [`ExecMode`]. Both modes
/// produce byte-identical output (same tuples, same order). Serial
/// (default [`ExecOptions`]).
///
/// # Errors
///
/// See [`execute`].
pub fn execute_with(plan: &PhysicalPlan, mode: ExecMode) -> Result<Relation> {
    execute_with_options(plan, mode, &ExecOptions::default())
}

// Per-thread scratch for morsel selection vectors: a worker reuses one
// buffer across every morsel it runs instead of allocating per morsel
// (the per-morsel output is an exact-size copy of the surviving ids).
thread_local! {
    static FILTER_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Execution context threaded through the operator tree: the mode, the
/// effective worker count (after the planner's tiny-input veto) and the
/// morsel geometry.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    mode: ExecMode,
    workers: usize,
    opts: &'a ExecOptions,
}

impl Ctx<'_> {
    /// Whether an operator over `rows` input rows should take its
    /// parallel path: more than one worker and more than one morsel.
    fn parallel_over(&self, rows: usize) -> bool {
        self.workers > 1 && self.opts.morsel_count(rows) > 1
    }
}

/// Concatenates per-morsel output chunks in morsel order — the merge step
/// that keeps parallel output byte-identical to serial execution.
fn concat_chunks<T>(chunks: Vec<Vec<T>>) -> Vec<T> {
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for mut chunk in chunks {
        out.append(&mut chunk);
    }
    out
}

/// Clamps a (possibly wild) cardinality estimate into a sane preallocation
/// hint. `0` means "no hint".
fn row_hint(estimated: f64) -> usize {
    if estimated.is_finite() && estimated > 0.0 {
        (estimated as usize).min(1 << 22)
    } else {
        0
    }
}

/// Executes a compiled plan under an explicit mode and [`ExecOptions`].
/// With `parallelism > 1` the columnar operators run morsel-parallel; the
/// output stays byte-identical, order included, to serial execution,
/// because every operator merges per-morsel outputs in morsel order. The
/// planner may veto parallelism for tiny inputs (see
/// [`crate::plan::PlanEstimate::effective_parallelism`]); the row-oriented
/// baseline always runs serial.
///
/// # Errors
///
/// See [`execute`]; additionally surfaces a worker panic as
/// [`crate::error::Error::Parallel`].
pub fn execute_with_options(
    plan: &PhysicalPlan,
    mode: ExecMode,
    opts: &ExecOptions,
) -> Result<Relation> {
    let _query_span = eve_trace::span("exec.query");
    if mode == ExecMode::Columnar {
        // The columnar image is part of the physical storage: build (or
        // reuse — it is cached in the shared storage) each base input's
        // batch up front so vectorized filters and interned join keys
        // read columns instead of re-deriving scalar keys per tuple.
        for input in &plan.inputs {
            let _ = input.relation.columnar();
        }
    }
    let workers = if mode == ExecMode::Columnar && opts.parallelism > 1 {
        if opts.force_parallel {
            opts.parallelism
        } else {
            let effective = plan.estimate().effective_parallelism(opts.parallelism);
            if effective == 1 {
                morsel::note_serial_fallback();
            }
            effective
        }
    } else {
        1
    };
    let ctx = Ctx {
        mode,
        workers,
        opts,
    };
    let joined = eval(plan, &plan.root, ctx, row_hint(plan.estimate().output_rows))?;
    let tuples = joined.tuples();
    let rows = if ctx.parallel_over(tuples.len()) {
        morsel::note_parallel_op();
        let n = ctx.opts.morsel_count(tuples.len());
        concat_chunks(morsel::run_morsels(ctx.workers, n, |i| {
            let (s, e) = ctx.opts.morsel_range(i, tuples.len());
            let mut out = Vec::with_capacity(e - s);
            for t in &tuples[s..e] {
                out.push(t.project(&plan.projection));
            }
            Ok(out)
        })?)
    } else {
        let mut rows = Vec::with_capacity(tuples.len());
        for t in tuples {
            rows.push(t.project(&plan.projection));
        }
        rows
    };
    Ok(Relation::from_validated(
        plan.name.clone(),
        plan.output_schema.clone(),
        rows,
    ))
}

/// Materializes an ascending selection over `rel` — zero-copy when the
/// selection keeps every row.
fn materialize_selection(rel: &Relation, sel: &[u32]) -> Relation {
    if sel.len() == rel.cardinality() {
        return rel.clone(); // shares tuple storage
    }
    let tuples = rel.tuples();
    Relation::from_validated(
        rel.name(),
        rel.schema().clone(),
        sel.iter().map(|&r| tuples[r as usize].clone()).collect(),
    )
}

/// Row-at-a-time filter: ascending row ids satisfying `pred`.
fn filter_rows(rel: &Relation, pred: &Predicate) -> Result<Vec<u32>> {
    let mut sel = Vec::new();
    for (i, t) in rel.tuples().iter().enumerate() {
        if pred.eval(rel.schema(), t, rel.name())? {
            sel.push(u32::try_from(i).expect("row id fits u32"));
        }
    }
    Ok(sel)
}

fn eval(plan: &PhysicalPlan, node: &PlanNode, ctx: Ctx<'_>, out_hint: usize) -> Result<Relation> {
    match node {
        PlanNode::Scan { input, pushdown } => {
            let _span = eve_trace::span("exec.scan");
            let rel = &plan.inputs[*input].relation;
            match pushdown {
                None => Ok(rel.clone()), // zero-copy: shares tuple storage
                Some(pred) => {
                    if ctx.mode == ExecMode::Columnar {
                        if let Some(compiled) =
                            column::compile_clauses(pred, rel.schema(), rel.name())
                        {
                            let batch = rel.columnar();
                            let rows = batch.rows();
                            if ctx.parallel_over(rows) {
                                morsel::note_parallel_op();
                                let tuples = rel.tuples();
                                let n = ctx.opts.morsel_count(rows);
                                let sels = morsel::run_morsels(ctx.workers, n, |i| {
                                    let (s, e) = ctx.opts.morsel_range(i, rows);
                                    FILTER_SCRATCH.with(|buf| {
                                        let mut scratch = buf.borrow_mut();
                                        column::filter_batch_range(
                                            &batch,
                                            tuples,
                                            &compiled,
                                            u32::try_from(s).expect("row id fits u32"),
                                            u32::try_from(e).expect("row id fits u32"),
                                            &mut scratch,
                                        );
                                        Ok(scratch.clone())
                                    })
                                })?;
                                return Ok(materialize_selection(rel, &concat_chunks(sels)));
                            }
                            let sel = column::filter_batch(&batch, rel.tuples(), &compiled);
                            return Ok(materialize_selection(rel, &sel));
                        }
                    }
                    let sel = filter_rows(rel, pred)?;
                    Ok(materialize_selection(rel, &sel))
                }
            }
        }
        PlanNode::IndexScan {
            input,
            col,
            op,
            key,
            residual,
            pushdown,
        } => {
            let _span = eve_trace::span("exec.index_scan");
            let rel = &plan.inputs[*input].relation;
            if ctx.mode == ExecMode::RowOriented {
                // Baseline semantics: the index clause is just a filter.
                let sel = filter_rows(rel, pushdown)?;
                return Ok(materialize_selection(rel, &sel));
            }
            let rows = if *op == CompOp::Eq {
                rel.index_eq_rows(*col, key)
            } else {
                rel.index_range_rows(*col, *op, key)
            };
            let sel = match residual {
                None => rows,
                // The residual probe re-checks every index hit against the
                // remaining predicate — morsel-parallel over the hit list,
                // merged in morsel (= ascending row) order.
                Some(pred) if ctx.parallel_over(rows.len()) => {
                    morsel::note_parallel_op();
                    let tuples = rel.tuples();
                    let rows = &rows;
                    let n = ctx.opts.morsel_count(rows.len());
                    concat_chunks(morsel::run_morsels(ctx.workers, n, |i| {
                        let (s, e) = ctx.opts.morsel_range(i, rows.len());
                        let mut keep = Vec::with_capacity(e - s);
                        for &r in &rows[s..e] {
                            if pred.eval(rel.schema(), &tuples[r as usize], rel.name())? {
                                keep.push(r);
                            }
                        }
                        Ok(keep)
                    })?)
                }
                Some(pred) => {
                    let tuples = rel.tuples();
                    let mut keep = Vec::with_capacity(rows.len());
                    for r in rows {
                        if pred.eval(rel.schema(), &tuples[r as usize], rel.name())? {
                            keep.push(r);
                        }
                    }
                    keep
                }
            };
            Ok(materialize_selection(rel, &sel))
        }
        PlanNode::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
            schema,
        } => {
            let probe_rel = eval(plan, probe, ctx, 0)?;
            let build_rel = eval(plan, build, ctx, 0)?;
            let _span = eve_trace::span("exec.join.hash");
            if ctx.mode == ExecMode::Columnar
                && key_types_match(&probe_rel, probe_keys, &build_rel, build_keys)
            {
                if ctx.parallel_over(probe_rel.cardinality().max(build_rel.cardinality())) {
                    return hash_join_columnar_parallel(
                        &probe_rel, &build_rel, probe_keys, build_keys, residual, schema, ctx,
                        out_hint,
                    );
                }
                return hash_join_columnar(
                    &probe_rel, &build_rel, probe_keys, build_keys, residual, schema, out_hint,
                );
            }
            hash_join_rows(
                &probe_rel, &build_rel, probe_keys, build_keys, residual, schema,
            )
        }
        PlanNode::NestedLoop {
            outer,
            inner,
            condition,
            schema,
        } => {
            let outer_rel = eval(plan, outer, ctx, 0)?;
            let inner_rel = eval(plan, inner, ctx, 0)?;
            let _span = eve_trace::span("exec.join.nested");
            let name = format!("{}⋈{}", outer_rel.name(), inner_rel.name());
            let outer_tuples = outer_rel.tuples();
            let inner_tuples = inner_rel.tuples();
            if ctx.parallel_over(outer_tuples.len()) && !inner_tuples.is_empty() {
                morsel::note_parallel_op();
                let n = ctx.opts.morsel_count(outer_tuples.len());
                let name_ref = &name;
                let chunks = morsel::run_morsels(ctx.workers, n, |mi| {
                    let (s, e) = ctx.opts.morsel_range(mi, outer_tuples.len());
                    let mut out = Vec::new();
                    for o in &outer_tuples[s..e] {
                        for i in inner_tuples {
                            let t = o.concat(i);
                            if condition.is_true() || condition.eval(schema, &t, name_ref)? {
                                out.push(t);
                            }
                        }
                    }
                    Ok(out)
                })?;
                return Ok(Relation::from_validated(
                    name,
                    schema.clone(),
                    concat_chunks(chunks),
                ));
            }
            let mut out = Vec::with_capacity(out_hint);
            for o in outer_tuples {
                for i in inner_tuples {
                    let t = o.concat(i);
                    if condition.is_true() || condition.eval(schema, &t, &name)? {
                        out.push(t);
                    }
                }
            }
            Ok(Relation::from_validated(name, schema.clone(), out))
        }
    }
}

/// Whether every probe/build key column pair compares the same type. A
/// mismatched pair can never match under `Value` equality; the scalar key
/// encoding cannot express that, so such joins take the row path.
fn key_types_match(
    probe: &Relation,
    probe_keys: &[usize],
    build: &Relation,
    build_keys: &[usize],
) -> bool {
    probe_keys
        .iter()
        .zip(build_keys)
        .all(|(&p, &b)| probe.schema().column(p).ty == build.schema().column(b).ty)
}

/// Join key over the scalar `u64` encoding (see [`crate::column`]).
#[derive(Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    One(u64),
    Many(Box<[u64]>),
}

/// Multiply-xor hasher for [`JoinKey`]s: interned scalar keys are already
/// uniform `u64`s, and SipHash would cost more per probe than the table
/// lookup itself. Not used for projected-`Tuple` keys (the row baseline),
/// which hash full values.
#[derive(Default)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, x: u64) {
        // Golden-ratio multiply, then fold the high bits down so both the
        // bucket index and the control byte see the mixed entropy.
        self.0 = (self.0 ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }

    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    fn write_u8(&mut self, x: u8) {
        self.write_u64(u64::from(x));
    }

    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// Hash table from scalar join keys to ascending build-side row ids.
type KeyTable = HashMap<JoinKey, Vec<u32>, std::hash::BuildHasherDefault<KeyHasher>>;

fn key_table_with_capacity(n: usize) -> KeyTable {
    KeyTable::with_capacity_and_hasher(n, std::hash::BuildHasherDefault::default())
}

/// Per-row scalar join keys for `cols`, read from the cached columnar
/// batch when one exists and computed directly from the tuples otherwise
/// (intermediates never pay a full batch build for one key column).
fn join_key_vector(rel: &Relation, cols: &[usize]) -> Vec<JoinKey> {
    join_keys_range(rel, cols, 0, rel.cardinality())
}

/// [`join_key_vector`] restricted to rows `[start, end)` — the morsel-
/// sized unit of parallel key extraction. Text keys intern through the
/// sharded pool, so concurrent morsels mostly touch different shard locks.
fn join_keys_range(rel: &Relation, cols: &[usize], start: usize, end: usize) -> Vec<JoinKey> {
    if rel.columnar_built() {
        let batch = rel.columnar();
        if let [col] = cols {
            let c = batch.column(*col);
            return (start..end).map(|r| JoinKey::One(c.key_at(r))).collect();
        }
        return (start..end)
            .map(|r| {
                JoinKey::Many(
                    cols.iter()
                        .map(|&col| batch.column(col).key_at(r))
                        .collect(),
                )
            })
            .collect();
    }
    let tuples = &rel.tuples()[start..end];
    if let [col] = cols {
        return tuples
            .iter()
            .map(|t| JoinKey::One(scalar_key(t.get(*col))))
            .collect();
    }
    tuples
        .iter()
        .map(|t| JoinKey::Many(cols.iter().map(|&c| scalar_key(t.get(c))).collect()))
        .collect()
}

/// Hash-join partition count for a worker count: enough partitions that
/// build tasks spread even under moderate key skew.
fn partition_count(workers: usize) -> usize {
    (workers * 2).next_power_of_two().min(64)
}

/// Routes a key to its partition using the high bits of the same
/// [`KeyHasher`] mix the tables bucket with low bits — one hash, two
/// independent-enough bit ranges.
fn partition_of(k: &JoinKey, mask: u64) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = KeyHasher::default();
    k.hash(&mut h);
    usize::try_from((h.finish() >> 48) & mask).expect("mask fits usize")
}

/// Hash join over interned scalar keys: hashes `u64`s instead of cloning
/// and hashing projected key tuples. Output order is identical to the row
/// path — probe order outer, build insertion (ascending row) order inner.
fn hash_join_columnar(
    probe_rel: &Relation,
    build_rel: &Relation,
    probe_keys: &[usize],
    build_keys: &[usize],
    residual: &Predicate,
    schema: &Schema,
    out_hint: usize,
) -> Result<Relation> {
    let name = format!("{}⋈{}", probe_rel.name(), build_rel.name());
    let build_key_vec = join_key_vector(build_rel, build_keys);
    let mut table = key_table_with_capacity(build_key_vec.len());
    for (i, k) in build_key_vec.into_iter().enumerate() {
        table
            .entry(k)
            .or_default()
            .push(u32::try_from(i).expect("row id fits u32"));
    }
    let probe_key_vec = join_key_vector(probe_rel, probe_keys);
    let build_tuples = build_rel.tuples();
    let mut out = Vec::with_capacity(out_hint);
    for (p, k) in probe_key_vec.into_iter().enumerate() {
        if let Some(matches) = table.get(&k) {
            let pt = &probe_rel.tuples()[p];
            for &b in matches {
                let t = pt.concat(&build_tuples[b as usize]);
                if residual.is_true() || residual.eval(schema, &t, &name)? {
                    out.push(t);
                }
            }
        }
    }
    Ok(Relation::from_validated(name, schema.clone(), out))
}

/// Morsel-parallel partitioned hash join over interned scalar keys.
///
/// Three phases, each deterministic:
///
/// 1. **Scatter** (parallel over build morsels): extract scalar keys for
///    the morsel's row range and scatter `(key, row)` pairs into
///    per-partition buckets, routed by the high bits of the key hash.
/// 2. **Build** (parallel over partitions): each partition's table is
///    owned by exactly one task — lock-free by partitioning, not by
///    atomics. Buckets are drained in morsel order, so every key's row
///    list comes out ascending, exactly as the serial build inserts it.
/// 3. **Probe** (parallel over probe morsels): read-only lookups against
///    the partition tables; per-morsel outputs merge in morsel order.
///
/// Output is therefore byte-identical, order included, to
/// [`hash_join_columnar`]: probe-order outer, ascending build rows inner.
#[allow(clippy::too_many_arguments)]
fn hash_join_columnar_parallel(
    probe_rel: &Relation,
    build_rel: &Relation,
    probe_keys: &[usize],
    build_keys: &[usize],
    residual: &Predicate,
    schema: &Schema,
    ctx: Ctx<'_>,
    out_hint: usize,
) -> Result<Relation> {
    morsel::note_parallel_op();
    let name = format!("{}⋈{}", probe_rel.name(), build_rel.name());
    let build_rows = build_rel.cardinality();
    let probe_rows = probe_rel.cardinality();
    let parts = partition_count(ctx.workers);
    let mask = (parts - 1) as u64;

    // Phase 1: parallel key extraction + partition scatter.
    let n_build = ctx.opts.morsel_count(build_rows);
    let scattered = morsel::run_morsels(ctx.workers, n_build, |i| {
        let (s, e) = ctx.opts.morsel_range(i, build_rows);
        let keys = join_keys_range(build_rel, build_keys, s, e);
        let mut buckets: Vec<Vec<(JoinKey, u32)>> = (0..parts).map(|_| Vec::new()).collect();
        for (off, k) in keys.into_iter().enumerate() {
            let p = partition_of(&k, mask);
            buckets[p].push((k, u32::try_from(s + off).expect("row id fits u32")));
        }
        Ok(buckets)
    })?;
    // Wrap each bucket so the owning build task can take it without
    // cloning keys (each bucket is read by exactly one partition task).
    type MorselBuckets = Vec<Mutex<Vec<(JoinKey, u32)>>>;
    let scattered: Vec<MorselBuckets> = scattered
        .into_iter()
        .map(|buckets| buckets.into_iter().map(Mutex::new).collect())
        .collect();

    // Phase 2: one task per partition; tables are lock-free because no
    // two tasks share a partition.
    morsel::note_partitions(parts as u64);
    let tables = morsel::run_morsels(ctx.workers, parts, |p| {
        let cap: usize = scattered
            .iter()
            .map(|m| m[p].lock().expect("bucket poisoned").len())
            .sum();
        let mut table = key_table_with_capacity(cap);
        for morsel_buckets in &scattered {
            let bucket = std::mem::take(&mut *morsel_buckets[p].lock().expect("bucket poisoned"));
            for (k, row) in bucket {
                table.entry(k).or_default().push(row);
            }
        }
        Ok(table)
    })?;

    // Phase 3: parallel probe against the read-only partition tables.
    let n_probe = ctx.opts.morsel_count(probe_rows);
    let probe_tuples = probe_rel.tuples();
    let build_tuples = build_rel.tuples();
    let name_ref = &name;
    let chunks = morsel::run_morsels(ctx.workers, n_probe, |i| {
        let (s, e) = ctx.opts.morsel_range(i, probe_rows);
        let cap = if out_hint > 0 {
            out_hint / n_probe.max(1) + 1
        } else {
            e - s
        };
        let mut out = Vec::with_capacity(cap);
        let keys = join_keys_range(probe_rel, probe_keys, s, e);
        for (off, k) in keys.into_iter().enumerate() {
            let p = partition_of(&k, mask);
            if let Some(matches) = tables[p].get(&k) {
                let pt = &probe_tuples[s + off];
                for &b in matches {
                    let t = pt.concat(&build_tuples[b as usize]);
                    if residual.is_true() || residual.eval(schema, &t, name_ref)? {
                        out.push(t);
                    }
                }
            }
        }
        Ok(out)
    })?;
    Ok(Relation::from_validated(
        name,
        schema.clone(),
        concat_chunks(chunks),
    ))
}

/// The PR 3 row-oriented hash join: projected-`Tuple` keys.
fn hash_join_rows(
    probe_rel: &Relation,
    build_rel: &Relation,
    probe_keys: &[usize],
    build_keys: &[usize],
    residual: &Predicate,
    schema: &Schema,
) -> Result<Relation> {
    let name = format!("{}⋈{}", probe_rel.name(), build_rel.name());
    let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    for b in build_rel.tuples() {
        table.entry(b.project(build_keys)).or_default().push(b);
    }
    let mut out = Vec::new();
    for p in probe_rel.tuples() {
        if let Some(matches) = table.get(&p.project(probe_keys)) {
            for b in matches {
                let t = p.concat(b);
                if residual.is_true() || residual.eval(schema, &t, &name)? {
                    out.push(t);
                }
            }
        }
    }
    Ok(Relation::from_validated(name, schema.clone(), out))
}

/// Joins `delta` with `next` under the conjunction `on`, returning the
/// joined relation together with the number of `next`-tuples matched by
/// each delta tuple (for probe-I/O accounting). Equality clauses between
/// the two sides become hash keys; remaining clauses filter the result.
/// Without any key the join degrades to a scan — every delta tuple
/// "matches" the full relation.
///
/// This is Algorithm 1's per-site delta join, physically: identical output
/// order (delta-major, build-table insertion order within a key) and
/// identical match counts to the historical naive implementation. The
/// keyed probe runs over interned scalar keys when the column types line
/// up, falling back to projected-tuple keys otherwise.
///
/// # Errors
///
/// Schema concatenation and predicate failures.
pub fn join_with_counts(
    delta: &Relation,
    next: &Relation,
    on: &[PrimitiveClause],
) -> Result<(Relation, Vec<usize>)> {
    let (keys, residual_clauses) =
        split_equi_keys(delta.schema(), delta.name(), next.schema(), next.name(), on);
    let schema = delta.schema().concat(next.schema())?;
    let name = format!("{}⋈{}", delta.name(), next.name());
    let residual = Predicate::new(residual_clauses);
    residual.type_check(&schema, &name)?;

    let mut out = Vec::new();
    let mut counts = Vec::with_capacity(delta.cardinality());
    if keys.is_empty() {
        for d in delta.tuples() {
            counts.push(next.cardinality());
            for n in next.tuples() {
                let t = d.concat(n);
                if residual.eval(&schema, &t, &name)? {
                    out.push(t);
                }
            }
        }
        return Ok((Relation::from_validated(name, schema, out), counts));
    }

    let (delta_idx, next_idx): (Vec<usize>, Vec<usize>) = keys.into_iter().unzip();
    if key_types_match(delta, &delta_idx, next, &next_idx) {
        let next_key_vec = join_key_vector(next, &next_idx);
        let mut table = key_table_with_capacity(next_key_vec.len());
        for (i, k) in next_key_vec.into_iter().enumerate() {
            table
                .entry(k)
                .or_default()
                .push(u32::try_from(i).expect("row id fits u32"));
        }
        let delta_key_vec = join_key_vector(delta, &delta_idx);
        let next_tuples = next.tuples();
        for (di, k) in delta_key_vec.into_iter().enumerate() {
            let matches = table.get(&k).map_or(&[][..], Vec::as_slice);
            counts.push(matches.len());
            let dt = &delta.tuples()[di];
            for &n in matches {
                let t = dt.concat(&next_tuples[n as usize]);
                if residual.eval(&schema, &t, &name)? {
                    out.push(t);
                }
            }
        }
        return Ok((Relation::from_validated(name, schema, out), counts));
    }

    let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    for n in next.tuples() {
        table.entry(n.project(&next_idx)).or_default().push(n);
    }
    for d in delta.tuples() {
        let matches = table
            .get(&d.project(&delta_idx))
            .map_or(&[][..], Vec::as_slice);
        counts.push(matches.len());
        for n in matches {
            let t = d.concat(n);
            if residual.eval(&schema, &t, &name)? {
                out.push(t);
            }
        }
    }
    Ok((Relation::from_validated(name, schema, out), counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan, QueryInput, QuerySpec};
    use crate::predicate::CompOp;
    use crate::schema::{ColumnRef, Schema};
    use crate::tup;
    use crate::types::{DataType, Value};
    use crate::{algebra, Predicate};

    fn rel(name: &str, cols: &[(&str, DataType)], rows: Vec<Tuple>) -> Relation {
        Relation::with_tuples(name, Schema::of(cols).unwrap().qualify(name), rows).unwrap()
    }

    fn chain_spec() -> QuerySpec {
        let a = rel(
            "A",
            &[("K", DataType::Int), ("P", DataType::Int)],
            vec![tup![1, 10], tup![2, 20], tup![3, 30]],
        );
        let b = rel(
            "B",
            &[("K", DataType::Int), ("P", DataType::Int)],
            vec![tup![1, 11], tup![3, 31], tup![4, 41]],
        );
        let c = rel(
            "C",
            &[("K", DataType::Int), ("P", DataType::Int)],
            vec![tup![1, 12], tup![2, 22], tup![3, 32]],
        );
        QuerySpec {
            name: "V".into(),
            inputs: vec![
                QueryInput {
                    binding: "A".into(),
                    relation: a,
                    stats: None,
                },
                QueryInput {
                    binding: "B".into(),
                    relation: b,
                    stats: None,
                },
                QueryInput {
                    binding: "C".into(),
                    relation: c,
                    stats: None,
                },
            ],
            clauses: vec![
                PrimitiveClause::eq(ColumnRef::parse("A.K"), ColumnRef::parse("B.K")),
                PrimitiveClause::eq(ColumnRef::parse("B.K"), ColumnRef::parse("C.K")),
            ],
            projection: vec![
                ColumnRef::parse("A.K"),
                ColumnRef::parse("B.P"),
                ColumnRef::parse("C.P"),
            ],
            output: vec![
                ColumnRef::bare("K"),
                ColumnRef::bare("BP"),
                ColumnRef::bare("CP"),
            ],
        }
    }

    #[test]
    fn chain_join_matches_naive_reference() {
        let spec = chain_spec();
        let p = plan(spec).unwrap();
        let out = p.execute().unwrap();
        let mut got = out.tuples().to_vec();
        got.sort();
        assert_eq!(got, vec![tup![1, 11, 12], tup![3, 31, 32]]);
        assert_eq!(out.name(), "V");
        assert_eq!(out.schema().column(1).column, ColumnRef::bare("BP"));
    }

    #[test]
    fn exec_modes_agree_byte_for_byte() {
        let p = plan(chain_spec()).unwrap();
        let columnar = execute_with(&p, ExecMode::Columnar).unwrap();
        let row = execute_with(&p, ExecMode::RowOriented).unwrap();
        assert_eq!(columnar.tuples(), row.tuples(), "same tuples, same order");
        assert_eq!(columnar, row);
    }

    #[test]
    fn exec_modes_agree_on_text_keys() {
        let l = rel(
            "L",
            &[("K", DataType::Text), ("P", DataType::Int)],
            vec![tup!["a", 1], tup!["b", 2], tup!["a", 3]],
        );
        let r_ = rel(
            "R",
            &[("K", DataType::Text), ("Q", DataType::Int)],
            vec![tup!["a", 10], tup!["c", 30], tup!["a", 40]],
        );
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![
                QueryInput {
                    binding: "L".into(),
                    relation: l,
                    stats: None,
                },
                QueryInput {
                    binding: "R".into(),
                    relation: r_,
                    stats: None,
                },
            ],
            clauses: vec![PrimitiveClause::eq(
                ColumnRef::parse("L.K"),
                ColumnRef::parse("R.K"),
            )],
            projection: vec![ColumnRef::parse("L.P"), ColumnRef::parse("R.Q")],
            output: vec![ColumnRef::bare("P"), ColumnRef::bare("Q")],
        };
        let p = plan(spec).unwrap();
        let columnar = execute_with(&p, ExecMode::Columnar).unwrap();
        let row = execute_with(&p, ExecMode::RowOriented).unwrap();
        assert_eq!(columnar.tuples(), row.tuples());
        assert_eq!(columnar.cardinality(), 4); // 2 'a' × 2 'a'
    }

    #[test]
    fn scan_without_pushdown_shares_storage() {
        let a = rel("A", &[("K", DataType::Int)], vec![tup![1], tup![2]]);
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![QueryInput {
                binding: "A".into(),
                relation: a.clone(),
                stats: None,
            }],
            clauses: vec![],
            projection: vec![ColumnRef::parse("A.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let p = plan(spec).unwrap();
        // The scan itself is zero-copy; only the projection materializes.
        match &p.root {
            PlanNode::Scan { input, pushdown } => {
                assert_eq!(*input, 0);
                assert!(pushdown.is_none());
            }
            other => panic!("expected a bare scan, got {other:?}"),
        }
        let out = p.execute().unwrap();
        assert_eq!(out.tuples(), &[tup![1], tup![2]]);
    }

    #[test]
    fn pushdown_filter_applies_during_scan() {
        let a = rel(
            "A",
            &[("K", DataType::Int)],
            (0..10).map(|k| tup![k]).collect(),
        );
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![QueryInput {
                binding: "A".into(),
                relation: a,
                stats: None,
            }],
            clauses: vec![PrimitiveClause::lit(
                ColumnRef::parse("A.K"),
                CompOp::Lt,
                Value::Int(3),
            )],
            projection: vec![ColumnRef::parse("A.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let out = plan(spec).unwrap().execute().unwrap();
        assert_eq!(out.tuples(), &[tup![0], tup![1], tup![2]]);
    }

    #[test]
    fn filter_keeping_everything_is_zero_copy() {
        let a = rel(
            "A",
            &[("K", DataType::Int)],
            (0..10).map(|k| tup![k]).collect(),
        );
        let pred = Predicate::single(PrimitiveClause::lit(
            ColumnRef::parse("A.K"),
            CompOp::Ge,
            Value::Int(0),
        ));
        // Columnar path.
        let sel = filter_rows(&a, &pred).unwrap();
        let kept = materialize_selection(&a, &sel);
        assert!(
            kept.shares_tuples_with(&a),
            "an all-pass filter must not materialize a copy"
        );
        // And through a full plan: the scan output of an all-pass pushdown
        // shares storage with the base extent.
        let spec = QuerySpec {
            name: "V".into(),
            inputs: vec![QueryInput {
                binding: "A".into(),
                relation: a.clone(),
                stats: None,
            }],
            clauses: vec![pred.clauses()[0].clone()],
            projection: vec![ColumnRef::parse("A.K")],
            output: vec![ColumnRef::bare("K")],
        };
        let p = plan(spec).unwrap();
        let opts = ExecOptions::default();
        let ctx = Ctx {
            mode: ExecMode::Columnar,
            workers: 1,
            opts: &opts,
        };
        let scanned = eval(&p, &p.root, ctx, 0).unwrap();
        assert!(scanned.shares_tuples_with(&a));
    }

    #[test]
    fn join_with_counts_matches_algebra_join() {
        let delta = rel(
            "D",
            &[("K", DataType::Int), ("X", DataType::Int)],
            vec![tup![1, 0], tup![2, 0], tup![9, 0]],
        );
        let next = rel(
            "N",
            &[("K", DataType::Int), ("Y", DataType::Int)],
            vec![tup![1, 5], tup![1, 6], tup![2, 7]],
        );
        let on = vec![PrimitiveClause::eq(
            ColumnRef::parse("D.K"),
            ColumnRef::parse("N.K"),
        )];
        let (joined, counts) = join_with_counts(&delta, &next, &on).unwrap();
        assert_eq!(counts, vec![2, 1, 0]);
        let reference = algebra::join(&delta, &next, &Predicate::new(on)).unwrap();
        assert_eq!(joined.tuples(), reference.tuples());
    }

    #[test]
    fn join_with_counts_keyless_scans_everything() {
        let delta = rel("D", &[("X", DataType::Int)], vec![tup![1], tup![2]]);
        let next = rel(
            "N",
            &[("Y", DataType::Int)],
            vec![tup![1], tup![2], tup![3]],
        );
        let on = vec![PrimitiveClause::cols(
            ColumnRef::parse("D.X"),
            CompOp::Lt,
            ColumnRef::parse("N.Y"),
        )];
        let (joined, counts) = join_with_counts(&delta, &next, &on).unwrap();
        assert_eq!(counts, vec![3, 3], "keyless probe scans the relation");
        assert_eq!(joined.cardinality(), 3); // (1,2),(1,3),(2,3)
    }

    /// A join big enough that the planner would accept parallelism on its
    /// own, with text keys so the interned scalar-key path is exercised.
    fn wide_spec() -> QuerySpec {
        let f = rel(
            "F",
            &[("T", DataType::Text), ("X", DataType::Int)],
            (0..3000)
                .map(|i| tup![format!("t{}", i % 100), i])
                .collect(),
        );
        let d = rel(
            "D",
            &[("T", DataType::Text), ("Y", DataType::Int)],
            (0..100).map(|i| tup![format!("t{i}"), i * 10]).collect(),
        );
        QuerySpec {
            name: "W".into(),
            inputs: vec![
                QueryInput {
                    binding: "F".into(),
                    relation: f,
                    stats: None,
                },
                QueryInput {
                    binding: "D".into(),
                    relation: d,
                    stats: None,
                },
            ],
            clauses: vec![
                PrimitiveClause::eq(ColumnRef::parse("F.T"), ColumnRef::parse("D.T")),
                PrimitiveClause::lit(ColumnRef::parse("F.X"), CompOp::Lt, Value::Int(2500)),
            ],
            projection: vec![ColumnRef::parse("F.X"), ColumnRef::parse("D.Y")],
            output: vec![ColumnRef::bare("X"), ColumnRef::bare("Y")],
        }
    }

    #[test]
    fn parallel_execution_is_byte_identical_across_knobs() {
        let p = plan(wide_spec()).unwrap();
        let serial = execute_with(&p, ExecMode::Columnar).unwrap();
        let row = execute_with(&p, ExecMode::RowOriented).unwrap();
        assert_eq!(serial.tuples(), row.tuples());
        for parallelism in [2, 4, 8] {
            for morsel_rows in [1, 7, 64, 4096] {
                let opts = ExecOptions {
                    parallelism,
                    morsel_rows,
                    force_parallel: true,
                };
                let out = execute_with_options(&p, ExecMode::Columnar, &opts).unwrap();
                assert_eq!(
                    out.tuples(),
                    serial.tuples(),
                    "parallelism={parallelism} morsel_rows={morsel_rows}"
                );
                assert_eq!(out, serial);
            }
        }
    }

    #[test]
    fn planner_declines_parallelism_for_tiny_inputs() {
        let p = plan(chain_spec()).unwrap();
        assert_eq!(p.estimate().effective_parallelism(8), 1);
        let before = morsel::stats().serial_fallbacks;
        let out = execute_with_options(&p, ExecMode::Columnar, &ExecOptions::with_parallelism(8))
            .unwrap();
        assert!(morsel::stats().serial_fallbacks > before);
        assert_eq!(out, execute_with(&p, ExecMode::Columnar).unwrap());
    }

    #[test]
    fn parallel_execution_moves_the_morsel_counters() {
        let p = plan(wide_spec()).unwrap();
        assert!(
            p.estimate().effective_parallelism(8) > 1,
            "wide spec must be big enough for the planner to accept workers"
        );
        let before = morsel::stats();
        let _ = execute_with_options(
            &p,
            ExecMode::Columnar,
            &ExecOptions {
                parallelism: 4,
                morsel_rows: 64,
                force_parallel: false,
            },
        )
        .unwrap();
        let after = morsel::stats();
        assert!(after.morsels > before.morsels, "morsels dispatched");
        assert!(after.partitions > before.partitions, "partitions built");
        assert!(after.parallel_ops > before.parallel_ops, "parallel ops");
    }

    #[test]
    fn mismatched_key_types_fall_back_to_row_join() {
        // `D.K = N.K` with K Int on one side and Text on the other: legal
        // to plan (no type check on key extraction), but no tuple can ever
        // match. The scalar-key path must not report false matches.
        let delta = rel("D", &[("K", DataType::Int)], vec![tup![1], tup![2]]);
        let next = rel("N", &[("K", DataType::Text)], vec![tup!["1"], tup!["a"]]);
        let on = vec![PrimitiveClause::eq(
            ColumnRef::parse("D.K"),
            ColumnRef::parse("N.K"),
        )];
        let (joined, counts) = join_with_counts(&delta, &next, &on).unwrap();
        assert!(joined.is_empty());
        assert_eq!(counts, vec![0, 0]);
    }
}
