//! Database statistics (paper §6.1).
//!
//! The cost model assumes the following statistics are registered in the MKB
//! for every relation:
//!
//! 1. cardinality `|R|`,
//! 2. attribute sizes `s_{R.A}` (hence tuple size `s_R`),
//! 3. join selectivity `js` (fraction of tuple pairs that join),
//! 4. local selection selectivity `σ`,
//! 5. `|R|` and `js` assumed stable under updates,
//! 6. blocking factor / block size.
//!
//! This module provides both a [`RelationStats`] record (declared statistics)
//! and functions that *measure* selectivities on actual extents, so the
//! declared values used by the analytic model can be validated against data.

use crate::error::Result;
use crate::predicate::Predicate;
use crate::relation::Relation;

/// Declared statistics for one relation, as registered in the MKB.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Cardinality `|R|`.
    pub cardinality: u64,
    /// Tuple size `s_R` in bytes.
    pub tuple_bytes: u64,
    /// Local selection selectivity `σ_R` of the relation's condition in a
    /// view (assumed equality-based and constant, §6.1 assumption 4).
    pub selectivity: f64,
    /// Blocking factor `bfr_R`: tuples per physical block (Appendix A).
    pub blocking_factor: u64,
}

impl RelationStats {
    /// Builds stats with the paper's Table 1 defaults for unspecified fields
    /// (`σ = 0.5`, `bfr = 10`).
    #[must_use]
    pub fn new(cardinality: u64, tuple_bytes: u64) -> RelationStats {
        RelationStats {
            cardinality,
            tuple_bytes,
            selectivity: 0.5,
            blocking_factor: 10,
        }
    }

    /// Number of I/Os to scan the whole relation: `⌈|R| / bfr⌉` (Eq. 32).
    #[must_use]
    pub fn full_scan_ios(&self) -> u64 {
        if self.blocking_factor == 0 {
            return self.cardinality;
        }
        self.cardinality.div_ceil(self.blocking_factor)
    }

    /// Extracts declared-statistics defaults from an actual relation extent.
    #[must_use]
    pub fn from_relation(rel: &Relation) -> RelationStats {
        RelationStats::new(rel.cardinality() as u64, rel.tuple_byte_size())
    }
}

/// Measured join selectivity between two relations under a join condition:
/// `js = |R ⋈ S| / (|R| · |S|)` (§6.1 statistic 3). Returns 0 for empty
/// inputs.
///
/// # Errors
///
/// Propagates join failures.
pub fn measured_join_selectivity(r: &Relation, s: &Relation, on: &Predicate) -> Result<f64> {
    if r.is_empty() || s.is_empty() {
        return Ok(0.0);
    }
    let joined = crate::algebra::join(r, s, on)?;
    #[allow(clippy::cast_precision_loss)]
    Ok(joined.cardinality() as f64 / (r.cardinality() as f64 * s.cardinality() as f64))
}

/// Measured selectivity of a predicate on a relation (fraction of qualifying
/// tuples).
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn measured_selectivity(rel: &Relation, pred: &Predicate) -> Result<f64> {
    pred.selectivity(rel)
}

/// Estimated cardinality of an equijoin chain under the paper's uniform
/// assumptions: `js^{k-1} · |R_1| · … · |R_k|` for `k ≥ 1` relations
/// (generalizing the `J_{IS_i} ≈ js^{n_i} · |R_{i,1}| · … · |R_{i,n_i}|`
/// estimate of §6.3, where the delta relation supplies one extra factor).
#[must_use]
pub fn estimated_join_cardinality(cards: &[u64], js: f64) -> f64 {
    if cards.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let product: f64 = cards.iter().map(|&c| c as f64).product();
    #[allow(clippy::cast_precision_loss)]
    let exponent = (cards.len() - 1) as i32;
    product * js.powi(exponent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PrimitiveClause;
    use crate::schema::{ColumnRef, Schema};
    use crate::tup;
    use crate::types::DataType;

    #[test]
    fn full_scan_ios_rounds_up() {
        let s = RelationStats {
            cardinality: 401,
            tuple_bytes: 100,
            selectivity: 0.5,
            blocking_factor: 10,
        };
        assert_eq!(s.full_scan_ios(), 41);
        let exact = RelationStats::new(400, 100);
        assert_eq!(exact.full_scan_ios(), 40);
    }

    #[test]
    fn zero_blocking_factor_degrades_to_cardinality() {
        let s = RelationStats {
            cardinality: 7,
            tuple_bytes: 10,
            selectivity: 1.0,
            blocking_factor: 0,
        };
        assert_eq!(s.full_scan_ios(), 7);
    }

    #[test]
    fn measured_join_selectivity_uniform_keys() {
        // R and S each have keys 0..10 over a shared domain; equijoin matches
        // each key once: js = 10 / (10*10) = 0.1 = 1/domain.
        let schema_r = Schema::of(&[("K", DataType::Int)]).unwrap().qualify("R");
        let schema_s = Schema::of(&[("K", DataType::Int)]).unwrap().qualify("S");
        let r = Relation::with_tuples("R", schema_r, (0..10).map(|i| tup![i]).collect()).unwrap();
        let s = Relation::with_tuples("S", schema_s, (0..10).map(|i| tup![i]).collect()).unwrap();
        let on = Predicate::single(PrimitiveClause::eq(
            ColumnRef::parse("R.K"),
            ColumnRef::parse("S.K"),
        ));
        let js = measured_join_selectivity(&r, &s, &on).unwrap();
        assert!((js - 0.1).abs() < 1e-12);
    }

    #[test]
    fn estimated_join_cardinality_matches_paper_shape() {
        // Table 1 parameters: |R| = 400, js = 0.005 ⇒ js·|R| = 2 per join.
        let est = estimated_join_cardinality(&[400, 400, 400], 0.005);
        // 0.005^2 · 400^3 = 1600
        assert!((est - 1600.0).abs() < 1e-9);
        assert!((estimated_join_cardinality(&[400], 0.005) - 400.0).abs() < 1e-12);
        assert_eq!(estimated_join_cardinality(&[], 0.005), 0.0);
    }

    #[test]
    fn stats_from_relation() {
        let r = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![1], tup![2]],
        )
        .unwrap();
        let s = RelationStats::from_relation(&r);
        assert_eq!(s.cardinality, 2);
        assert_eq!(s.tuple_bytes, 8);
    }
}
