//! Morsel scheduler: scoped worker pool with work-stealing deques.
//!
//! A *morsel* is a fixed-size row range of a [`crate::column::ColumnarBatch`]
//! (last one ragged). The executor splits an operator's input into morsels,
//! runs one closure per morsel on a scoped thread pool, and merges the
//! per-morsel outputs **in morsel order** — which is how parallel execution
//! stays byte-identical, order included, to the serial path: morsel `i`
//! covers rows `[i·m, (i+1)·m)`, so concatenating outputs by morsel index
//! reproduces exactly the row order a serial scan would emit.
//!
//! Scheduling is work-stealing: each worker owns a deque of morsel indices
//! (seeded with a contiguous block), pops from the front, and when empty
//! steals the back half of the fullest victim deque. Stealing only changes
//! *which thread* runs a morsel, never where its output lands — outputs go
//! to a slot indexed by morsel id.
//!
//! A panic inside a morsel is caught ([`std::panic::catch_unwind`]), turned
//! into a typed [`Error::Parallel`], and cancels the remaining morsels; the
//! scope joins every worker before returning, so a failing query can never
//! hang or hand back a partial extent.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

use eve_trace::Counter;

use crate::error::{Error, Result};

/// Default rows per morsel: large enough to amortize dispatch, small
/// enough that a handful of morsels exist even for modest extents.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Execution knobs threaded from the engine down to every operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for intra-query parallelism. `0` and `1` both mean
    /// serial; the planner may lower an effective value below this for
    /// tiny inputs (see [`crate::plan::PlanEstimate::effective_parallelism`]).
    pub parallelism: usize,
    /// Rows per morsel (clamped to at least 1).
    pub morsel_rows: usize,
    /// Bypass the planner's tiny-input veto and run `parallelism` workers
    /// unconditionally. Off in production; the differential suites use it
    /// to exercise the parallel operators on arbitrarily small inputs.
    pub force_parallel: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            parallelism: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            force_parallel: false,
        }
    }
}

impl ExecOptions {
    /// Serial execution (the default).
    #[must_use]
    pub fn serial() -> Self {
        ExecOptions::default()
    }

    /// `parallelism` workers with the default morsel size.
    #[must_use]
    pub fn with_parallelism(parallelism: usize) -> Self {
        ExecOptions {
            parallelism,
            ..ExecOptions::default()
        }
    }

    /// Rows per morsel, never zero.
    #[must_use]
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows.max(1)
    }

    /// Number of morsels covering `rows` input rows.
    #[must_use]
    pub fn morsel_count(&self, rows: usize) -> usize {
        rows.div_ceil(self.morsel_rows())
    }

    /// Row range `[start, end)` of morsel `i` over `rows` input rows.
    #[must_use]
    pub fn morsel_range(&self, i: usize, rows: usize) -> (usize, usize) {
        let m = self.morsel_rows();
        (i * m, ((i + 1) * m).min(rows))
    }
}

// ---------------------------------------------------------------------
// Process-wide execution counters (shell `stats` surface), stored in the
// `eve-trace` global registry under the `exec.` family so the `metrics`
// command, the wire `Metrics` request and `stats` all read one set of
// atomics.
// ---------------------------------------------------------------------

struct ExecCounters {
    morsels: Arc<Counter>,
    steals: Arc<Counter>,
    partitions: Arc<Counter>,
    parallel_ops: Arc<Counter>,
    serial_fallbacks: Arc<Counter>,
}

fn counters() -> &'static ExecCounters {
    static COUNTERS: OnceLock<ExecCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = eve_trace::global();
        ExecCounters {
            morsels: registry.counter("exec.morsels"),
            steals: registry.counter("exec.steals"),
            partitions: registry.counter("exec.partitions"),
            parallel_ops: registry.counter("exec.parallel_ops"),
            serial_fallbacks: registry.counter("exec.serial_fallbacks"),
        }
    })
}

/// Morsel-scheduler counters, for the shell `stats` surface. Process-wide
/// and monotone, mirroring [`crate::intern::InternStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Morsels dispatched through the parallel scheduler.
    pub morsels: u64,
    /// Morsels obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Hash-join partitions built by parallel builds.
    pub partitions: u64,
    /// Operator invocations that ran on the parallel path.
    pub parallel_ops: u64,
    /// Operator invocations where the planner declined parallelism
    /// (input too small for the dispatch overhead to pay off).
    pub serial_fallbacks: u64,
}

/// Snapshot of the scheduler counters.
#[must_use]
pub fn stats() -> ExecStats {
    let c = counters();
    ExecStats {
        morsels: c.morsels.get(),
        steals: c.steals.get(),
        partitions: c.partitions.get(),
        parallel_ops: c.parallel_ops.get(),
        serial_fallbacks: c.serial_fallbacks.get(),
    }
}

/// Resets all scheduler counters to zero (bench isolation). One registry
/// call covers the whole `exec.` family.
pub fn reset_stats() {
    counters();
    eve_trace::global().reset_prefix("exec.");
}

pub(crate) fn note_partitions(n: u64) {
    counters().partitions.add(n);
}

pub(crate) fn note_parallel_op() {
    counters().parallel_ops.inc();
}

pub(crate) fn note_serial_fallback() {
    counters().serial_fallbacks.inc();
}

// ---------------------------------------------------------------------
// The scheduler.
// ---------------------------------------------------------------------

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_owned()
    }
}

/// Runs `f(0..morsels)` on up to `workers` scoped threads and returns the
/// outputs **in morsel order**. With `workers <= 1` (or a single morsel)
/// the closures run inline on the caller's thread — same results, no pool.
///
/// The first morsel error (or panic, surfaced as [`Error::Parallel`])
/// cancels the remaining morsels and is returned after every worker has
/// joined; the caller never observes a partial output vector.
pub fn run_morsels<T, F>(workers: usize, morsels: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    counters().morsels.add(morsels as u64);
    let _span = eve_trace::span("exec.morsel_run");
    let workers = workers.min(morsels);
    if workers <= 1 {
        // Inline path, same failure contract as the pool: a panic in the
        // closure surfaces as a typed error, not an unwinding caller.
        return (0..morsels)
            .map(|i| match panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(out) => out,
                Err(payload) => Err(Error::Parallel {
                    detail: panic_detail(payload),
                }),
            })
            .collect();
    }

    // Seed each worker's deque with a contiguous block of morsel ids, so
    // with zero steals each worker scans adjacent rows (cache-friendly)
    // and the id → slot mapping keeps the merge deterministic regardless.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..morsels)
                    .filter(|i| i * workers / morsels == w)
                    .collect(),
            )
        })
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..morsels).map(|_| Mutex::new(None)).collect();
    let failed = AtomicBool::new(false);
    let first_error: Mutex<Option<Error>> = Mutex::new(None);

    thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let failed = &failed;
            let first_error = &first_error;
            let f = &f;
            scope.spawn(move || {
                let mut local_steals = 0u64;
                loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    // Own deque first (front), then steal the back half
                    // of the fullest victim.
                    let next = queues[w].lock().expect("morsel deque poisoned").pop_front();
                    let idx = match next {
                        Some(idx) => idx,
                        None => {
                            let victim = (0..queues.len()).filter(|&v| v != w).max_by_key(|&v| {
                                queues[v].lock().expect("morsel deque poisoned").len()
                            });
                            let stolen = victim.and_then(|v| {
                                let mut q = queues[v].lock().expect("morsel deque poisoned");
                                let take = q.len().div_ceil(2);
                                if take == 0 {
                                    return None;
                                }
                                let keep = q.len() - take;
                                let tail: VecDeque<usize> = q.split_off(keep);
                                Some(tail)
                            });
                            match stolen {
                                Some(mut tail) => {
                                    local_steals += tail.len() as u64;
                                    let first = tail.pop_front();
                                    if !tail.is_empty() {
                                        queues[w]
                                            .lock()
                                            .expect("morsel deque poisoned")
                                            .append(&mut tail);
                                    }
                                    match first {
                                        Some(idx) => idx,
                                        None => break,
                                    }
                                }
                                None => break, // all deques drained
                            }
                        }
                    };
                    match panic::catch_unwind(AssertUnwindSafe(|| f(idx))) {
                        Ok(Ok(out)) => {
                            *slots[idx].lock().expect("morsel slot poisoned") = Some(out);
                        }
                        Ok(Err(e)) => {
                            let mut guard = first_error.lock().expect("morsel error slot poisoned");
                            guard.get_or_insert(e);
                            failed.store(true, Ordering::Relaxed);
                            break;
                        }
                        Err(payload) => {
                            let mut guard = first_error.lock().expect("morsel error slot poisoned");
                            guard.get_or_insert(Error::Parallel {
                                detail: panic_detail(payload),
                            });
                            failed.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                if local_steals > 0 {
                    counters().steals.add(local_steals);
                }
            });
        }
    });

    if let Some(e) = first_error
        .into_inner()
        .expect("morsel error slot poisoned")
    {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("morsel slot poisoned")
                .expect("every morsel ran: no error recorded and scope joined")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_arrive_in_morsel_order() {
        for workers in [1, 2, 4, 8] {
            let out = run_morsels(workers, 37, |i| Ok(i * 10)).unwrap();
            assert_eq!(out, (0..37).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_morsels_is_empty() {
        let out: Vec<usize> = run_morsels(4, 0, Ok).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn worker_error_surfaces_as_that_error() {
        let err = run_morsels(4, 64, |i| {
            if i == 17 {
                Err(Error::NotComparable)
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err, Error::NotComparable);
    }

    #[test]
    fn worker_panic_surfaces_as_typed_parallel_error() {
        let err = run_morsels(4, 64, |i| {
            if i == 23 {
                panic!("morsel 23 exploded");
            }
            Ok(i)
        })
        .unwrap_err();
        match err {
            Error::Parallel { detail } => assert!(detail.contains("morsel 23 exploded")),
            other => panic!("expected Error::Parallel, got {other:?}"),
        }
    }

    #[test]
    fn steals_counter_moves_under_skewed_load() {
        // One slow morsel at the front of worker 0's block forces other
        // workers to finish and steal. Not asserted deterministically —
        // only that the counter never goes backwards.
        let before = stats().steals;
        let _ = run_morsels(4, 256, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            Ok(())
        })
        .unwrap();
        assert!(stats().steals >= before);
    }
}
