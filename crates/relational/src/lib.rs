//! # eve-relational
//!
//! In-memory relational engine substrate for the EVE (Evolvable View
//! Environment) reproduction of *"Data Warehouse Evolution: Trade-offs between
//! Quality and Cost of Query Rewritings"* (Lee, Koeller, Nica, Rundensteiner;
//! ICDE 1999).
//!
//! The paper's QC-Model compares *non-equivalent* view rewritings by the
//! information they preserve and the maintenance cost they incur. Both sides
//! need a concrete relational model underneath:
//!
//! * typed [`Value`]s, [`Schema`]s and [`Relation`]s ([`types`], [`schema`],
//!   [`relation`]),
//! * the paper's *primitive clauses* `attr θ attr` / `attr θ value` with
//!   `θ ∈ {<, ≤, =, ≥, >}` ([`predicate`]),
//! * the relational algebra used by view queries and the view-maintenance
//!   algorithm ([`algebra`]),
//! * a cost-ordered physical query layer: statistics-driven planning with
//!   pushed-down selections and greedy join reordering ([`plan`]) and a
//!   zero-copy executor over the `Arc`-shared tuple storage ([`exec`]),
//! * the *common-subset-of-attributes* operators of Fig. 7 (`=~`, `⊆~`, `∩~`,
//!   `\~`) used to compare extents of views with different interfaces
//!   ([`common`]),
//! * measured statistics — selectivity and join selectivity — mirroring the
//!   database statistics the paper assumes are registered in the MKB
//!   ([`stats`]),
//! * a deterministic synthetic data generator able to realize the containment
//!   (PC) and join-selectivity assumptions of the paper's experiments
//!   ([`generator`]).
//!
//! Everything is deterministic: iteration orders are defined and all
//! randomness is seeded.

pub mod algebra;
pub mod column;
pub mod common;
pub mod error;
pub mod exec;
pub mod generator;
pub mod index;
pub mod intern;
pub mod morsel;
pub mod plan;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod types;

pub use column::{Column, ColumnarBatch};
pub use error::{Error, Result};
pub use exec::ExecMode;
pub use index::{IndexKind, IndexStats};
pub use intern::{InternStats, Symbol};
pub use morsel::{ExecOptions, ExecStats};
pub use plan::{PhysicalPlan, PlanEstimate, QueryInput, QuerySpec};
pub use predicate::{CompOp, Operand, Predicate, PrimitiveClause};
pub use relation::Relation;
pub use schema::{ColumnDef, ColumnRef, Schema};
pub use stats::RelationStats;
pub use tuple::Tuple;
pub use types::{DataType, Value};
