//! Relational algebra operators.
//!
//! These implement the operations view queries and the maintenance algorithm
//! need: selection, projection, join (hash-equijoin with a nested-loop
//! fallback for general θ-conditions), cartesian product, and positional set
//! operations.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::predicate::{CompOp, Operand, Predicate};
use crate::relation::Relation;
use crate::schema::{ColumnRef, Schema};
use crate::tuple::Tuple;

/// σ — selection: tuples of `rel` satisfying `pred`.
///
/// # Errors
///
/// Propagates predicate resolution/evaluation failures.
pub fn select(rel: &Relation, pred: &Predicate) -> Result<Relation> {
    pred.type_check(rel.schema(), rel.name())?;
    let mut out = Relation::empty(format!("σ({})", rel.name()), rel.schema().clone());
    for t in rel.tuples() {
        if pred.eval(rel.schema(), t, rel.name())? {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// π — projection onto `columns`, optionally removing duplicates.
///
/// The paper's extent comparisons always use set semantics ("duplicates
/// removed", §5.3), so callers comparing extents should pass `dedup = true`.
///
/// # Errors
///
/// Column resolution failures.
pub fn project(rel: &Relation, columns: &[ColumnRef], dedup: bool) -> Result<Relation> {
    let indices: Vec<usize> = columns
        .iter()
        .map(|c| rel.schema().resolve(c, rel.name()))
        .collect::<Result<_>>()?;
    let out_schema = Schema::new(
        indices
            .iter()
            .map(|&i| rel.schema().column(i).clone())
            .collect(),
    )?;
    let mut out = Relation::empty(format!("π({})", rel.name()), out_schema);
    for t in rel.tuples() {
        out.insert(t.project(&indices))?;
    }
    Ok(if dedup { out.distinct() } else { out })
}

/// ρ — renames the output columns of a relation (keeps types and sizes).
///
/// # Errors
///
/// [`Error::SchemaMismatch`] if the number of names differs from the arity,
/// [`Error::DuplicateColumn`] if the new names collide.
pub fn rename_columns(rel: &Relation, names: &[ColumnRef]) -> Result<Relation> {
    if names.len() != rel.schema().arity() {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "rename expects {} names, got {}",
                rel.schema().arity(),
                names.len()
            ),
        });
    }
    let schema = Schema::new(
        rel.schema()
            .columns()
            .iter()
            .zip(names)
            .map(|(c, n)| crate::schema::ColumnDef::sized(n.clone(), c.ty, c.byte_size))
            .collect(),
    )?;
    // Types and sizes are untouched, so the rename shares tuple storage.
    rel.rebind(rel.name(), schema)
}

/// × — cartesian product.
///
/// # Errors
///
/// Schema concatenation failures (duplicate qualified columns).
pub fn cartesian(left: &Relation, right: &Relation) -> Result<Relation> {
    let schema = left.schema().concat(right.schema())?;
    let mut out = Relation::empty(format!("{}×{}", left.name(), right.name()), schema);
    for l in left.tuples() {
        for r in right.tuples() {
            out.insert(l.concat(r))?;
        }
    }
    Ok(out)
}

/// ⋈ — θ-join of two relations under a conjunctive condition.
///
/// Equality clauses between one column of each side are used as hash-join
/// keys; remaining clauses are applied as a residual filter. With no usable
/// equality clause the join degrades to a filtered nested loop.
///
/// # Errors
///
/// Schema or predicate failures.
pub fn join(left: &Relation, right: &Relation, on: &Predicate) -> Result<Relation> {
    let schema = left.schema().concat(right.schema())?;
    let name = format!("{}⋈{}", left.name(), right.name());

    // Split clauses into hash-join equality keys (left col = right col) and
    // residual clauses evaluated on the concatenated tuple.
    let mut keys: Vec<(usize, usize)> = Vec::new();
    let mut residual: Vec<&crate::predicate::PrimitiveClause> = Vec::new();
    for clause in on.clauses() {
        if clause.op == CompOp::Eq {
            if let Operand::Column(rc) = &clause.right {
                let l_in_left = left.schema().resolve(&clause.left, left.name());
                let r_in_right = right.schema().resolve(rc, right.name());
                if let (Ok(li), Ok(ri)) = (&l_in_left, &r_in_right) {
                    keys.push((*li, *ri));
                    continue;
                }
                // Try the flipped orientation (right col written first).
                let l_in_right = right.schema().resolve(&clause.left, right.name());
                let r_in_left = left.schema().resolve(rc, left.name());
                if let (Ok(ri), Ok(li)) = (&l_in_right, &r_in_left) {
                    keys.push((*li, *ri));
                    continue;
                }
            }
        }
        residual.push(clause);
    }
    let residual_pred = Predicate::new(residual.into_iter().cloned().collect());
    residual_pred.type_check(&schema, &name)?;

    let mut out = Relation::empty(name.clone(), schema);
    if keys.is_empty() {
        for l in left.tuples() {
            for r in right.tuples() {
                let t = l.concat(r);
                if residual_pred.eval(out.schema(), &t, &name)? {
                    out.insert(t)?;
                }
            }
        }
        return Ok(out);
    }

    // Hash join on the collected equality keys.
    let mut table: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
    let right_key_idx: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
    let left_key_idx: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
    for r in right.tuples() {
        table.entry(r.project(&right_key_idx)).or_default().push(r);
    }
    for l in left.tuples() {
        let key = l.project(&left_key_idx);
        if let Some(matches) = table.get(&key) {
            for r in matches {
                let t = l.concat(r);
                if residual_pred.eval(out.schema(), &t, &name)? {
                    out.insert(t)?;
                }
            }
        }
    }
    Ok(out)
}

fn check_compatible(a: &Relation, b: &Relation, op: &str) -> Result<()> {
    if !a.schema().union_compatible(b.schema()) {
        return Err(Error::SchemaMismatch {
            detail: format!(
                "{op} requires union-compatible schemas: {} vs {}",
                a.schema(),
                b.schema()
            ),
        });
    }
    Ok(())
}

/// ∪ — set union (duplicates removed, positional compatibility).
///
/// Deduplicates directly into the (canonically sorted) output: compatibility
/// is checked once on the schemas — `union_compatible` already guarantees
/// positional type equality, so no per-tuple re-validation or intermediate
/// bag materialization happens. This path is hot in the extent comparison
/// operators of [`crate::common`].
///
/// # Errors
///
/// [`Error::SchemaMismatch`] for incompatible schemas.
pub fn union(a: &Relation, b: &Relation) -> Result<Relation> {
    check_compatible(a, b, "union")?;
    let set: std::collections::BTreeSet<Tuple> =
        a.tuples().iter().chain(b.tuples()).cloned().collect();
    Ok(Relation::from_validated(
        format!("{}∪{}", a.name(), b.name()),
        a.schema().clone(),
        set.into_iter().collect(),
    ))
}

/// ∩ — set intersection (canonically sorted output, as
/// [`Relation::distinct`] would produce).
///
/// # Errors
///
/// [`Error::SchemaMismatch`] for incompatible schemas.
pub fn intersect(a: &Relation, b: &Relation) -> Result<Relation> {
    check_compatible(a, b, "intersect")?;
    let b_set: std::collections::BTreeSet<&Tuple> = b.tuples().iter().collect();
    let set: std::collections::BTreeSet<Tuple> = a
        .tuples()
        .iter()
        .filter(|t| b_set.contains(t))
        .cloned()
        .collect();
    Ok(Relation::from_validated(
        format!("{}∩{}", a.name(), b.name()),
        a.schema().clone(),
        set.into_iter().collect(),
    ))
}

/// − (set difference): tuples of `a` not in `b` (canonically sorted output).
///
/// # Errors
///
/// [`Error::SchemaMismatch`] for incompatible schemas.
pub fn difference(a: &Relation, b: &Relation) -> Result<Relation> {
    check_compatible(a, b, "difference")?;
    let b_set: std::collections::BTreeSet<&Tuple> = b.tuples().iter().collect();
    let set: std::collections::BTreeSet<Tuple> = a
        .tuples()
        .iter()
        .filter(|t| !b_set.contains(t))
        .cloned()
        .collect();
    Ok(Relation::from_validated(
        format!("{}−{}", a.name(), b.name()),
        a.schema().clone(),
        set.into_iter().collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PrimitiveClause;
    use crate::tup;
    use crate::types::{DataType, Value};

    fn rel(name: &str, cols: &[(&str, DataType)], rows: Vec<Tuple>) -> Relation {
        Relation::with_tuples(name, Schema::of(cols).unwrap().qualify(name), rows).unwrap()
    }

    fn r() -> Relation {
        rel(
            "R",
            &[("A", DataType::Int), ("B", DataType::Int)],
            vec![tup![1, 10], tup![2, 20], tup![3, 30]],
        )
    }

    fn s() -> Relation {
        rel(
            "S",
            &[("A", DataType::Int), ("C", DataType::Text)],
            vec![tup![1, "x"], tup![2, "y"], tup![4, "z"]],
        )
    }

    #[test]
    fn select_filters() {
        let p = Predicate::single(PrimitiveClause::lit(
            ColumnRef::parse("R.A"),
            CompOp::Gt,
            Value::Int(1),
        ));
        let out = select(&r(), &p).unwrap();
        assert_eq!(out.cardinality(), 2);
    }

    #[test]
    fn select_type_error_surfaces() {
        let p = Predicate::single(PrimitiveClause::lit(
            ColumnRef::parse("R.A"),
            CompOp::Gt,
            Value::from("nope"),
        ));
        assert!(select(&r(), &p).is_err());
    }

    #[test]
    fn project_with_dedup() {
        let dup = rel(
            "D",
            &[("A", DataType::Int), ("B", DataType::Int)],
            vec![tup![1, 10], tup![1, 20]],
        );
        let bag = project(&dup, &[ColumnRef::parse("D.A")], false).unwrap();
        assert_eq!(bag.cardinality(), 2);
        let set = project(&dup, &[ColumnRef::parse("D.A")], true).unwrap();
        assert_eq!(set.cardinality(), 1);
    }

    #[test]
    fn equijoin_matches_hash_and_nested_loop() {
        let on = Predicate::single(PrimitiveClause::eq(
            ColumnRef::parse("R.A"),
            ColumnRef::parse("S.A"),
        ));
        let out = join(&r(), &s(), &on).unwrap();
        assert_eq!(out.cardinality(), 2);
        // Same result via cartesian + select (nested-loop reference).
        let reference = select(&cartesian(&r(), &s()).unwrap(), &on).unwrap();
        assert_eq!(out.distinct().tuples(), reference.distinct().tuples());
    }

    #[test]
    fn equijoin_flipped_orientation() {
        let on = Predicate::single(PrimitiveClause::eq(
            ColumnRef::parse("S.A"),
            ColumnRef::parse("R.A"),
        ));
        let out = join(&r(), &s(), &on).unwrap();
        assert_eq!(out.cardinality(), 2);
    }

    #[test]
    fn theta_join_nested_loop() {
        let on = Predicate::single(PrimitiveClause::cols(
            ColumnRef::parse("R.A"),
            CompOp::Lt,
            ColumnRef::parse("S.A"),
        ));
        let out = join(&r(), &s(), &on).unwrap();
        // Pairs with R.A < S.A: (1,2),(1,4),(2,4),(3,4) = 4
        assert_eq!(out.cardinality(), 4);
    }

    #[test]
    fn join_with_residual_clause() {
        let on = Predicate::new(vec![
            PrimitiveClause::eq(ColumnRef::parse("R.A"), ColumnRef::parse("S.A")),
            PrimitiveClause::lit(ColumnRef::parse("S.C"), CompOp::Eq, Value::from("x")),
        ]);
        let out = join(&r(), &s(), &on).unwrap();
        assert_eq!(out.cardinality(), 1);
    }

    #[test]
    fn cartesian_product_counts() {
        let out = cartesian(&r(), &s()).unwrap();
        assert_eq!(out.cardinality(), 9);
        assert_eq!(out.schema().arity(), 4);
    }

    #[test]
    fn union_intersect_difference() {
        let a = rel(
            "A",
            &[("X", DataType::Int)],
            vec![tup![1], tup![2], tup![2]],
        );
        let b = rel("B", &[("X", DataType::Int)], vec![tup![2], tup![3]]);
        assert_eq!(union(&a, &b).unwrap().cardinality(), 3);
        assert_eq!(intersect(&a, &b).unwrap().cardinality(), 1);
        assert_eq!(difference(&a, &b).unwrap().cardinality(), 1);
        assert_eq!(difference(&b, &a).unwrap().tuples(), &[tup![3]]);
    }

    #[test]
    fn set_ops_reject_incompatible() {
        let a = rel("A", &[("X", DataType::Int)], vec![]);
        let b = rel("B", &[("X", DataType::Text)], vec![]);
        assert!(union(&a, &b).is_err());
        assert!(intersect(&a, &b).is_err());
        assert!(difference(&a, &b).is_err());
    }

    #[test]
    fn rename_columns_keeps_data() {
        let out = rename_columns(&r(), &[ColumnRef::bare("X"), ColumnRef::bare("Y")]).unwrap();
        assert_eq!(out.schema().column(0).column, ColumnRef::bare("X"));
        assert_eq!(out.cardinality(), 3);
        assert!(rename_columns(&r(), &[ColumnRef::bare("X")]).is_err());
    }
}
