//! Property-based tests of the relational algebra laws.

use proptest::prelude::*;

use eve_relational::algebra::{
    cartesian, difference, intersect, join, project, rename_columns, select, union,
};
use eve_relational::common::{cs_equal, cs_intersect, cs_minus, cs_subset};
use eve_relational::{
    ColumnRef, CompOp, DataType, Predicate, PrimitiveClause, Relation, Schema, Tuple, Value,
};

fn small_relation(name: &'static str, cols: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(-5i64..5, cols..=cols), 0..12).prop_map(
        move |rows| {
            let schema = Schema::new(
                (0..cols)
                    .map(|i| {
                        eve_relational::ColumnDef::new(
                            ColumnRef::qualified(name, format!("C{i}")),
                            DataType::Int,
                        )
                    })
                    .collect(),
            )
            .unwrap();
            Relation::with_tuples(
                name,
                schema,
                rows.into_iter()
                    .map(|vals| Tuple::new(vals.into_iter().map(Value::Int).collect()))
                    .collect(),
            )
            .unwrap()
        },
    )
}

fn threshold_pred(name: &'static str, col: usize, v: i64) -> Predicate {
    Predicate::single(PrimitiveClause::lit(
        ColumnRef::qualified(name, format!("C{col}")),
        CompOp::Gt,
        Value::Int(v),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn selection_commutes_and_composes(r in small_relation("R", 2), a in -5i64..5, b in -5i64..5) {
        let pa = threshold_pred("R", 0, a);
        let pb = threshold_pred("R", 1, b);
        let ab = select(&select(&r, &pa).unwrap(), &pb).unwrap();
        let ba = select(&select(&r, &pb).unwrap(), &pa).unwrap();
        let both = select(&r, &pa.and(&pb)).unwrap();
        prop_assert_eq!(ab.tuples(), ba.tuples());
        prop_assert_eq!(ab.tuples(), both.tuples());
    }

    #[test]
    fn selection_is_idempotent_and_shrinking(r in small_relation("R", 2), a in -5i64..5) {
        let p = threshold_pred("R", 0, a);
        let once = select(&r, &p).unwrap();
        let twice = select(&once, &p).unwrap();
        prop_assert_eq!(once.tuples(), twice.tuples());
        prop_assert!(once.cardinality() <= r.cardinality());
    }

    #[test]
    fn projection_is_idempotent(r in small_relation("R", 3)) {
        let cols = [ColumnRef::parse("R.C1"), ColumnRef::parse("R.C0")];
        let once = project(&r, &cols, true).unwrap();
        let again_cols = [ColumnRef::parse("R.C1"), ColumnRef::parse("R.C0")];
        let twice = project(&once, &again_cols, true).unwrap();
        prop_assert_eq!(once.tuples(), twice.tuples());
        prop_assert!(once.cardinality() <= r.cardinality());
    }

    #[test]
    fn join_is_select_of_cartesian(r in small_relation("R", 2), s in small_relation("S", 2)) {
        let on = Predicate::single(PrimitiveClause::eq(
            ColumnRef::parse("R.C0"),
            ColumnRef::parse("S.C0"),
        ));
        let joined = join(&r, &s, &on).unwrap();
        let reference = select(&cartesian(&r, &s).unwrap(), &on).unwrap();
        let mut a = joined.tuples().to_vec();
        let mut b = reference.tuples().to_vec();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // Cardinality bound: |R ⋈ S| ≤ |R|·|S|.
        prop_assert!(joined.cardinality() <= r.cardinality() * s.cardinality());
    }

    #[test]
    fn join_commutes_up_to_column_order(r in small_relation("R", 2), s in small_relation("S", 2)) {
        let on = Predicate::single(PrimitiveClause::eq(
            ColumnRef::parse("R.C0"),
            ColumnRef::parse("S.C0"),
        ));
        let rs = join(&r, &s, &on).unwrap();
        let sr = join(&s, &r, &on).unwrap();
        // Project both onto a canonical column order.
        let cols = [
            ColumnRef::parse("R.C0"),
            ColumnRef::parse("R.C1"),
            ColumnRef::parse("S.C0"),
            ColumnRef::parse("S.C1"),
        ];
        let a = project(&rs, &cols, true).unwrap();
        let b = project(&sr, &cols, true).unwrap();
        prop_assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn set_operations_obey_set_laws(r in small_relation("R", 2), s in small_relation("R", 2)) {
        // Same schema (both named R): union/intersect/difference laws.
        let u = union(&r, &s).unwrap();
        let i = intersect(&r, &s).unwrap();
        let d_rs = difference(&r, &s).unwrap();
        let d_sr = difference(&s, &r).unwrap();
        // |R ∪ S| = |R \ S| + |S \ R| + |R ∩ S| (distinct counts).
        prop_assert_eq!(
            u.cardinality(),
            d_rs.cardinality() + d_sr.cardinality() + i.cardinality()
        );
        // Intersection is contained in both.
        prop_assert!(difference(&i, &r).unwrap().is_empty());
        prop_assert!(difference(&i, &s).unwrap().is_empty());
        // Difference disjoint from the subtrahend.
        prop_assert!(intersect(&d_rs, &s).unwrap().is_empty());
        // Union is commutative.
        let u2 = union(&s, &r).unwrap();
        let (ud, u2d) = (u.distinct(), u2.distinct());
        prop_assert_eq!(ud.tuples(), u2d.tuples());
    }

    #[test]
    fn rename_preserves_extent(r in small_relation("R", 2)) {
        let renamed = rename_columns(
            &r,
            &[ColumnRef::bare("X"), ColumnRef::bare("Y")],
        ).unwrap();
        prop_assert_eq!(renamed.cardinality(), r.cardinality());
        prop_assert_eq!(renamed.tuples(), r.tuples());
    }

    // -------------------------------------------------------------------
    // Common-subset-of-attributes operators (Fig. 7).
    // -------------------------------------------------------------------

    #[test]
    fn cs_operators_are_consistent(r in small_relation("R", 2), s in small_relation("R", 2)) {
        // Both relations share column names C0, C1 (bare after binding).
        let inter = cs_intersect(&r, &s).unwrap();
        let minus_rs = cs_minus(&r, &s).unwrap();
        // |R~| = |R ∩~ S| + |R \~ S| on the projected distinct sets.
        let r_proj = eve_relational::common::project_common(&r, &s).unwrap();
        prop_assert_eq!(
            r_proj.cardinality(),
            inter.cardinality() + minus_rs.cardinality()
        );
        // cs_equal ⇔ both difference directions empty.
        let eq = cs_equal(&r, &s).unwrap();
        let minus_sr = cs_minus(&s, &r).unwrap();
        prop_assert_eq!(eq, minus_rs.is_empty() && minus_sr.is_empty());
        // Subset relation agrees with the difference.
        prop_assert_eq!(cs_subset(&r, &s).unwrap(), minus_rs.is_empty());
        // Reflexivity.
        prop_assert!(cs_equal(&r, &r).unwrap());
    }

    #[test]
    fn measured_sizes_bound_overlap(r in small_relation("R", 2), s in small_relation("R", 2)) {
        let sizes = eve_relational::common::measure_common_sizes(&r, &s).unwrap();
        prop_assert!(sizes.overlap <= sizes.original);
        prop_assert!(sizes.overlap <= sizes.rewriting);
    }

    // -------------------------------------------------------------------
    // Generator invariants.
    // -------------------------------------------------------------------

    #[test]
    fn generated_subsets_are_contained(card in 1usize..40, sub in 1usize..40, seed in 0u64..1000) {
        prop_assume!(sub <= card);
        use eve_relational::generator::{generate, generate_subset, AttrSpec, RelationSpec};
        let spec = RelationSpec::new(
            "G",
            vec![AttrSpec::new("A", 10_000), AttrSpec::new("B", 10_000)],
            card,
        );
        let base = generate(&spec, seed).unwrap();
        let subset = generate_subset(&base, "Sub", sub, seed.wrapping_add(1)).unwrap();
        prop_assert_eq!(subset.cardinality(), sub);
        prop_assert!(cs_subset(&subset, &base).unwrap());
    }

    #[test]
    fn selectivity_matches_definition(r in small_relation("R", 1), v in -5i64..5) {
        let p = threshold_pred("R", 0, v);
        let sel = p.selectivity(&r).unwrap();
        let selected = select(&r, &p).unwrap();
        if r.is_empty() {
            prop_assert_eq!(sel, 1.0);
        } else {
            #[allow(clippy::cast_precision_loss)]
            let expect = selected.cardinality() as f64 / r.cardinality() as f64;
            prop_assert!((sel - expect).abs() < 1e-12);
        }
    }
}
