//! Property suites for morsel-driven parallel execution.
//!
//! Two invariant families:
//!
//! 1. **Parallel ≡ serial differential** — through the whole planner, a
//!    random spec executed with morsel parallelism (any thread count ×
//!    any morsel size, `force_parallel` so the planner's tiny-input veto
//!    cannot make the property vacuous) is byte-identical (order
//!    included) to serial columnar execution, which is itself
//!    byte-identical to the frozen row-at-a-time mode.
//! 2. **Failure containment** — a worker that panics or errors on an
//!    arbitrary morsel surfaces a typed error from `run_morsels`; the
//!    pool never hangs and never returns a partial extent.
//!
//! Case counts honour `PROPTEST_CASES` (CI smoke 64, nightly 256).

use proptest::prelude::*;

use eve_relational::exec::{execute_with_options, ExecMode};
use eve_relational::morsel::run_morsels;
use eve_relational::{
    ColumnDef, ColumnRef, CompOp, DataType, Error, ExecOptions, PrimitiveClause, QueryInput,
    QuerySpec, Relation, Schema, Tuple, Value,
};

const BINDINGS: [&str; 2] = ["A", "B"];

fn arb_string() -> impl Strategy<Value = String> {
    "[a-c]{0,6}"
}

/// A two-input spec over (Int, Text) schemas: equality join on a random
/// column pair of matching type, plus random literal clauses. Mirrors
/// the columnar/row differential generator so the parallel path is
/// exercised on the same spec distribution.
fn mixed_relation(binding: &str, rows: &[(i64, String)]) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new(ColumnRef::qualified(binding, "K"), DataType::Int),
        ColumnDef::new(ColumnRef::qualified(binding, "S"), DataType::Text),
    ])
    .unwrap();
    Relation::with_tuples(
        binding,
        schema,
        rows.iter()
            .map(|(k, s)| Tuple::new(vec![Value::Int(*k), Value::from(s.as_str())]))
            .collect(),
    )
    .unwrap()
}

#[allow(clippy::type_complexity)]
fn arb_spec() -> impl Strategy<Value = QuerySpec> {
    (
        prop::collection::vec((-3i64..4, arb_string()), 0..8),
        prop::collection::vec((-3i64..4, arb_string()), 0..8),
        any::<bool>(), // join on Text (true) or Int (false)
        prop::collection::vec((any::<bool>(), 0usize..2, -3i64..4, arb_string()), 0..3),
    )
        .prop_map(|(rows_a, rows_b, text_join, lit_picks)| {
            let inputs: Vec<QueryInput> = [("A", &rows_a), ("B", &rows_b)]
                .into_iter()
                .map(|(b, rows)| QueryInput {
                    binding: b.to_owned(),
                    relation: mixed_relation(b, rows),
                    stats: None,
                })
                .collect();
            let mut clauses = vec![if text_join {
                PrimitiveClause::eq(
                    ColumnRef::qualified("A", "S"),
                    ColumnRef::qualified("B", "S"),
                )
            } else {
                PrimitiveClause::eq(
                    ColumnRef::qualified("A", "K"),
                    ColumnRef::qualified("B", "K"),
                )
            }];
            for (on_a, col, k, s) in lit_picks {
                let binding = BINDINGS[usize::from(!on_a)];
                clauses.push(if col == 0 {
                    PrimitiveClause::lit(
                        ColumnRef::qualified(binding, "K"),
                        CompOp::Le,
                        Value::Int(k),
                    )
                } else {
                    PrimitiveClause::lit(
                        ColumnRef::qualified(binding, "S"),
                        CompOp::Eq,
                        Value::from(s.as_str()),
                    )
                });
            }
            QuerySpec {
                name: "V".into(),
                inputs,
                clauses,
                projection: vec![
                    ColumnRef::qualified("A", "K"),
                    ColumnRef::qualified("B", "S"),
                ],
                output: vec![ColumnRef::bare("X0"), ColumnRef::bare("X1")],
            }
        })
}

/// The knob grid from the tentpole: thread counts × morsel sizes,
/// including the degenerate one-row-per-morsel extreme.
fn arb_exec_options() -> impl Strategy<Value = ExecOptions> {
    (
        prop::sample::select(vec![1usize, 2, 4, 8]),
        prop::sample::select(vec![1usize, 7, 64, 4096]),
    )
        .prop_map(|(parallelism, morsel_rows)| ExecOptions {
            parallelism,
            morsel_rows,
            force_parallel: true,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // -------------------------------------------------------------------
    // Parallel columnar ≡ serial columnar ≡ row-oriented, byte for byte,
    // through the planner, across the whole knob grid.
    // -------------------------------------------------------------------
    #[test]
    fn parallel_execution_equals_serial_and_row(
        spec in arb_spec(),
        opts in arb_exec_options(),
    ) {
        let plan = eve_relational::plan::plan(spec).unwrap();
        let row = execute_with_options(
            &plan, ExecMode::RowOriented, &ExecOptions::serial()).unwrap();
        let serial = execute_with_options(
            &plan, ExecMode::Columnar, &ExecOptions::serial()).unwrap();
        let parallel = execute_with_options(&plan, ExecMode::Columnar, &opts).unwrap();
        prop_assert_eq!(row.schema(), serial.schema());
        prop_assert_eq!(serial.schema(), parallel.schema());
        prop_assert_eq!(row.tuples(), serial.tuples(), "columnar ≡ row");
        prop_assert_eq!(
            serial.tuples(),
            parallel.tuples(),
            "parallel {}x{} ≡ serial, order included",
            opts.parallelism,
            opts.morsel_rows
        );
    }

    // -------------------------------------------------------------------
    // A worker panicking on an arbitrary morsel surfaces as a typed
    // `Error::Parallel` carrying the payload — never a hang, never a
    // partial result.
    // -------------------------------------------------------------------
    #[test]
    fn worker_panic_is_a_typed_error_never_a_partial_result(
        workers in 2usize..=8,
        morsels in 1usize..48,
        victim_seed in any::<u64>(),
    ) {
        let victim = victim_seed as usize % morsels;
        let out = run_morsels(workers, morsels, |i| {
            if i == victim {
                panic!("boom at morsel {i}");
            }
            Ok(i)
        });
        match out {
            Err(Error::Parallel { detail }) => {
                prop_assert!(
                    detail.contains(&format!("boom at morsel {victim}")),
                    "panic payload survives: {detail}"
                );
            }
            other => prop_assert!(false, "expected Error::Parallel, got {:?}", other),
        }
    }

    // -------------------------------------------------------------------
    // A worker returning Err behaves like the panic case: that error
    // (not a wrapper, not a partial extent) is what the caller sees.
    // -------------------------------------------------------------------
    #[test]
    fn worker_error_propagates_verbatim(
        workers in 1usize..=8,
        morsels in 1usize..48,
        victim_seed in any::<u64>(),
    ) {
        let victim = victim_seed as usize % morsels;
        let out: Result<Vec<usize>, _> = run_morsels(workers, morsels, |i| {
            if i == victim {
                Err(Error::Parallel { detail: format!("sick morsel {i}") })
            } else {
                Ok(i)
            }
        });
        match out {
            Err(Error::Parallel { detail }) => {
                prop_assert_eq!(detail, format!("sick morsel {}", victim));
            }
            other => prop_assert!(false, "expected Error::Parallel, got {:?}", other),
        }
    }

    // -------------------------------------------------------------------
    // When no worker fails, morsel outputs come back in morsel order
    // regardless of thread count and stealing.
    // -------------------------------------------------------------------
    #[test]
    fn morsel_outputs_always_merge_in_morsel_order(
        workers in 1usize..=8,
        morsels in 0usize..64,
    ) {
        let out = run_morsels(workers, morsels, Ok).unwrap();
        prop_assert_eq!(out, (0..morsels).collect::<Vec<_>>());
    }
}
