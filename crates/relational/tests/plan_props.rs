//! Differential property suite for the physical query layer: for random
//! select-project-join specs, planned execution
//! ([`eve_relational::plan::plan`] + [`eve_relational::exec::execute`])
//! must produce exactly the bag the naive algebra pipeline (cartesian
//! product → selection → projection → rename) produces — with or without
//! declared statistics steering the join order.

use proptest::prelude::*;

use eve_relational::algebra::{cartesian, project, rename_columns, select};
use eve_relational::{
    ColumnDef, ColumnRef, CompOp, DataType, Predicate, PrimitiveClause, QueryInput, QuerySpec,
    Relation, RelationStats, Schema, Tuple, Value,
};

const BINDINGS: [&str; 3] = ["A", "B", "C"];
const COLS: usize = 2;

fn relation_for(binding: &str, rows: &[Vec<i64>]) -> Relation {
    let schema = Schema::new(
        (0..COLS)
            .map(|i| {
                ColumnDef::new(
                    ColumnRef::qualified(binding, format!("C{i}")),
                    DataType::Int,
                )
            })
            .collect(),
    )
    .unwrap();
    Relation::with_tuples(
        binding,
        schema,
        rows.iter()
            .map(|vals| Tuple::new(vals.iter().copied().map(Value::Int).collect()))
            .collect(),
    )
    .unwrap()
}

/// `(input count, rows per input, clause picks, projection picks, stats?)`
/// realized into a well-typed spec.
#[allow(clippy::type_complexity)]
fn arbitrary_spec() -> impl Strategy<Value = QuerySpec> {
    (
        2usize..=3,
        prop::collection::vec(prop::collection::vec(-3i64..4, COLS..=COLS), 0..8),
        prop::collection::vec(prop::collection::vec(-3i64..4, COLS..=COLS), 0..8),
        prop::collection::vec(prop::collection::vec(-3i64..4, COLS..=COLS), 0..8),
        prop::collection::vec(
            (0usize..3, 0usize..COLS, 0usize..3, 0usize..COLS, -3i64..4),
            0..4,
        ),
        prop::collection::vec((0usize..3, 0usize..COLS), 1..4),
        any::<bool>(),
    )
        .prop_map(
            |(n, rows_a, rows_b, rows_c, clause_picks, proj_picks, declare)| {
                let all_rows = [rows_a, rows_b, rows_c];
                let inputs: Vec<QueryInput> = (0..n)
                    .map(|i| {
                        let relation = relation_for(BINDINGS[i], &all_rows[i]);
                        let stats = declare.then(|| RelationStats::from_relation(&relation));
                        QueryInput {
                            binding: BINDINGS[i].to_owned(),
                            relation,
                            stats,
                        }
                    })
                    .collect();
                let col = |input: usize, c: usize| {
                    ColumnRef::qualified(BINDINGS[input.min(n - 1)], format!("C{c}"))
                };
                let clauses: Vec<PrimitiveClause> = clause_picks
                    .into_iter()
                    .map(|(i, ci, j, cj, v)| {
                        if i == j {
                            // Literal clause on one input.
                            PrimitiveClause::lit(col(i, ci), CompOp::Gt, Value::Int(v))
                        } else {
                            PrimitiveClause::eq(col(i, ci), col(j, cj))
                        }
                    })
                    .collect();
                // Deduplicate picks: the naive reference projects before
                // renaming, so a duplicated column would fail there (and in
                // E-SQL views the SELECT list is deduplicated upstream).
                let mut seen = std::collections::BTreeSet::new();
                let mut projection: Vec<ColumnRef> = proj_picks
                    .iter()
                    .filter(|&&(i, c)| seen.insert((i.min(n - 1), c)))
                    .map(|&(i, c)| col(i, c))
                    .collect();
                if projection.is_empty() {
                    projection.push(col(0, 0));
                }
                let output: Vec<ColumnRef> = (0..projection.len())
                    .map(|i| ColumnRef::bare(format!("X{i}")))
                    .collect();
                QuerySpec {
                    name: "V".into(),
                    inputs,
                    clauses,
                    projection,
                    output,
                }
            },
        )
}

/// The naive reference: cartesian-fold all inputs, apply the whole
/// conjunction at once, project and rename.
fn naive(spec: &QuerySpec) -> Relation {
    let mut acc = spec.inputs[0].relation.clone();
    for input in &spec.inputs[1..] {
        acc = cartesian(&acc, &input.relation).unwrap();
    }
    let selected = select(&acc, &Predicate::new(spec.clauses.clone())).unwrap();
    let projected = project(&selected, &spec.projection, false).unwrap();
    let mut renamed = rename_columns(&projected, &spec.output).unwrap();
    renamed.set_name(spec.name.clone());
    renamed
}

fn sorted_tuples(rel: &Relation) -> Vec<Tuple> {
    let mut v = rel.tuples().to_vec();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // -------------------------------------------------------------------
    // Differential: planned ≡ naive, as bags, for every generated spec.
    // -------------------------------------------------------------------
    #[test]
    fn planned_execution_equals_naive_reference(spec in arbitrary_spec()) {
        let reference = naive(&spec);
        let plan = eve_relational::plan::plan(spec).unwrap();
        let planned = plan.execute().unwrap();
        prop_assert_eq!(planned.name(), reference.name());
        prop_assert_eq!(planned.schema(), reference.schema());
        prop_assert_eq!(sorted_tuples(&planned), sorted_tuples(&reference));
        // Every input participates exactly once in the join order.
        let mut order = plan.join_order().to_vec();
        order.sort_unstable();
        prop_assert_eq!(order, (0..plan.join_order().len()).collect::<Vec<_>>());
    }

    // -------------------------------------------------------------------
    // Planning and execution are deterministic: two runs over the same
    // spec give byte-identical output (order included) and equal
    // estimates.
    // -------------------------------------------------------------------
    #[test]
    fn planned_execution_is_deterministic(spec in arbitrary_spec()) {
        let p1 = eve_relational::plan::plan(spec.clone()).unwrap();
        let p2 = eve_relational::plan::plan(spec).unwrap();
        prop_assert_eq!(p1.join_order(), p2.join_order());
        let (e1, e2) = (p1.estimate(), p2.estimate());
        prop_assert_eq!(e1, e2);
        let (r1, r2) = (p1.execute().unwrap(), p2.execute().unwrap());
        prop_assert_eq!(r1.tuples(), r2.tuples());
    }

    // -------------------------------------------------------------------
    // Estimates are finite and non-negative on every generated spec.
    // -------------------------------------------------------------------
    #[test]
    fn estimates_are_finite_and_nonnegative(spec in arbitrary_spec()) {
        let est = eve_relational::plan::plan(spec).unwrap().estimate();
        for v in [est.output_rows, est.io_blocks, est.cpu_tuples, est.total] {
            prop_assert!(v.is_finite() && v >= 0.0, "estimate {est:?}");
        }
        prop_assert!((est.total - (est.io_blocks + est.cpu_tuples)).abs() < 1e-9);
    }
}
